"""Keyword-in-context snippets for result display.

STARTS results carry answer fields, but a metasearcher's user interface
wants a *snippet*: the stretch of body text where the query terms
cluster, with the hits highlighted.  This module scores every window of
the document by the number of distinct query terms it covers (ties
break toward more total hits, then earlier position) and renders the
best one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.analysis import Analyzer

__all__ = ["Snippet", "make_snippet"]

_DEFAULT_ANALYZER = Analyzer()


@dataclass(frozen=True)
class Snippet:
    """A rendered snippet.

    Attributes:
        text: the snippet with terms wrapped in ``**``, ellipses at cut
            edges.
        distinct_terms: how many distinct query terms the window holds.
        total_hits: total query-term occurrences in the window.
    """

    text: str
    distinct_terms: int
    total_hits: int

    def __str__(self) -> str:
        return self.text


def make_snippet(
    body: str,
    terms: list[str],
    window: int = 20,
    analyzer: Analyzer | None = None,
    highlight: str = "**",
) -> Snippet:
    """The best ``window``-word snippet of ``body`` for ``terms``.

    Terms are matched after the analyzer's normalization (so a stemmed
    engine's surface variants still highlight).  With no term present,
    the snippet is the document head.
    """
    analyzer = analyzer or _DEFAULT_ANALYZER
    wanted = {analyzer.normalize(term) for term in terms}
    # Tokenize for spans only; display surfaces come from the raw body
    # so the snippet preserves the document's own casing.
    raw_tokens = analyzer.tokenizer.tokenize(body)
    if not raw_tokens:
        return Snippet("", 0, 0)
    surfaces = [body[token.start : token.end] for token in raw_tokens]
    tokens = list(zip(surfaces, (token.text for token in raw_tokens)))

    hits = [
        (index, surface)
        for index, (surface, normalized_text) in enumerate(tokens)
        if analyzer.normalize(normalized_text) in wanted
    ]

    if not hits:
        head = " ".join(surface for surface, _ in tokens[:window])
        suffix = " ..." if len(tokens) > window else ""
        return Snippet(head + suffix, 0, 0)

    best_start, best_key = 0, (-1, -1, 0)
    for start in range(0, max(1, len(tokens) - window + 1)):
        end = start + window
        in_window = [
            (index, surface) for index, surface in hits if start <= index < end
        ]
        if not in_window:
            continue
        distinct = len({
            analyzer.normalize(surface) for _, surface in in_window
        })
        key = (distinct, len(in_window), -start)
        if key > best_key:
            best_key, best_start = key, start

    start = best_start
    end = min(len(tokens), start + window)
    hit_indexes = {index for index, _ in hits}
    words = []
    for index in range(start, end):
        surface = tokens[index][0]
        if index in hit_indexes:
            surface = f"{highlight}{surface}{highlight}"
        words.append(surface)

    text = " ".join(words)
    if start > 0:
        text = "... " + text
    if end < len(tokens):
        text = text + " ..."

    in_best = [(i, s) for i, s in hits if start <= i < end]
    distinct = len({analyzer.normalize(surface) for _, surface in in_best})
    return Snippet(text, distinct, len(in_best))
