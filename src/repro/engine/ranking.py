"""Pluggable ranking algorithms — the "secret vendor formulas".

Section 3.2 of the paper: engines rank with proprietary, mutually
incomparable algorithms; one engine's 0.3 may be better than another's
1,000.  STARTS copes by having sources export ``RankingAlgorithmID``
and ``ScoreRange`` and per-term statistics.  To reproduce that world we
need several genuinely different scoring functions with different score
ranges.  Each algorithm here has a stable id (what the source exports)
and a declared score range.

All algorithms consume the same inputs — tf, df, collection size, doc
length — so they are interchangeable inside :class:`~repro.engine.search.
SearchEngine`, but their outputs are deliberately *not* comparable
across algorithms.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = [
    "RankingAlgorithm",
    "CosineTfIdf",
    "Bm25",
    "InqueryScorer",
    "ScaledCosine",
    "PivotedCosine",
    "RANKING_ALGORITHMS",
]


class RankingAlgorithm:
    """Base class for document scorers.

    Attributes:
        algorithm_id: the opaque identifier exported via the
            ``RankingAlgorithmID`` metadata attribute (e.g. ``Acme-1``).
        score_range: (min, max) exported via ``ScoreRange``.  ``math.inf``
            is allowed, as the paper permits.
    """

    algorithm_id: str = "base"
    score_range: tuple[float, float] = (0.0, 1.0)

    #: Whether the pruned (MaxScore) evaluator may drive this algorithm.
    #: The contract behind ``True``: ``term_weight`` is non-negative and
    #: monotone (non-decreasing in tf, non-increasing in df and doc_len),
    #: ``combine`` is monotone non-decreasing in the weighted sum of its
    #: contributions (with ``raw_score_threshold``/``score_from_raw``
    #: describing that monotone map), and ``finalize`` is the identity.
    #: Algorithms that break any leg of the contract must set this False
    #: and are evaluated exhaustively.
    prunable: bool = True

    #: Whether ``finalize`` returns its input unchanged.  When True,
    #: ``MinDocumentScore`` filtering commutes with ``finalize`` and can
    #: be applied during accumulation instead of post-hoc.
    finalize_is_identity: bool = True

    def term_weight(
        self, tf: int, df: int, n_docs: int, doc_len: int, avg_doc_len: float
    ) -> float:
        """The weight of one query term in one document.

        This is the ``Term-weight`` statistic a STARTS source returns in
        ``TermStats`` — "whatever weighing of terms in documents the
        search engine might use".
        """
        raise NotImplementedError

    def combine(self, contributions: Sequence[tuple[float, float]]) -> float:
        """Combine (query_term_weight, document_term_weight) pairs.

        The default is the weighted sum used for ``list(...)`` ranking
        expressions.
        """
        return sum(q_weight * t_weight for q_weight, t_weight in contributions)

    def finalize(self, scores: dict[int, float]) -> dict[int, float]:
        """Post-process the full result's scores (e.g. rescaling)."""
        return scores

    # -- dynamic-pruning contract (see ``prunable``) -----------------------

    def weight_upper_bound(
        self, max_tf: int, df: int, n_docs: int, min_doc_len: int, avg_doc_len: float
    ) -> float:
        """Upper bound on ``term_weight`` over a group of documents.

        ``max_tf`` is the largest term frequency and ``min_doc_len`` the
        smallest token count among the covered documents; under the
        monotonicity contract, evaluating the weight at those extremes
        bounds every real weight in the group from above.  Algorithms
        whose weight is not monotone this way must override (or set
        ``prunable`` False).
        """
        if max_tf <= 0:
            return 0.0
        return self.term_weight(max_tf, df, n_docs, min_doc_len, avg_doc_len)

    def raw_score_threshold(
        self, threshold: float, query_weights: Sequence[float]
    ) -> float:
        """Raw-sum cut equivalent to a combined-score cut.

        Returns a value ``cut`` such that any contribution sum strictly
        below ``cut`` combines to a score strictly below ``threshold`` —
        the inverse of the monotone map ``combine`` applies to the
        weighted sum, evaluated conservatively (shaded down) so float
        noise can never prune a document that ties the threshold.
        ``query_weights`` are the query-term weights of every child of
        the ``list(...)`` node, in order, because some combiners (the
        INQUERY weighted mean) normalize by them.
        """
        return threshold

    def score_from_raw(self, raw: float, query_weights: Sequence[float]) -> float:
        """The combined score a contribution sum of ``raw`` maps to.

        The forward direction of the same monotone map: used to turn a
        lower bound on the kth-best raw sum into a combined-score
        pruning threshold.  Must evaluate the same float expression
        ``combine`` applies to its summed contributions.
        """
        return raw

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.algorithm_id!r})"


class CosineTfIdf(RankingAlgorithm):
    """Salton-style tf·idf with length dampening, squashed into [0, 1].

    The term weight is ``(1 + ln tf) * ln(1 + N/df)`` divided by a
    square-root length norm; the combined score is squashed by
    ``x / (1 + x)`` so the exported ``ScoreRange`` is a clean ``0.0 1.0``
    like the paper's Source-1.
    """

    algorithm_id = "Acme-1"
    score_range = (0.0, 1.0)

    def term_weight(
        self, tf: int, df: int, n_docs: int, doc_len: int, avg_doc_len: float
    ) -> float:
        if tf <= 0 or df <= 0 or n_docs <= 0:
            return 0.0
        tf_part = 1.0 + math.log(tf)
        idf_part = math.log(1.0 + n_docs / df)
        norm = math.sqrt(max(doc_len, 1))
        return tf_part * idf_part / norm

    def combine(self, contributions: Sequence[tuple[float, float]]) -> float:
        raw = sum(q * t for q, t in contributions)
        return raw / (1.0 + raw)

    def raw_score_threshold(
        self, threshold: float, query_weights: Sequence[float]
    ) -> float:
        # x / (1 + x) < t  ⟺  x < t / (1 - t); scores never reach 1.0,
        # so a threshold at or past 1.0 excludes everything.  The shade
        # keeps the float inverse on the safe (smaller) side.
        if threshold >= 1.0:
            return math.inf
        return (threshold / (1.0 - threshold)) * (1.0 - 1e-9)

    def score_from_raw(self, raw: float, query_weights: Sequence[float]) -> float:
        return raw / (1.0 + raw)


class Bm25(RankingAlgorithm):
    """Okapi BM25 (k1 = 1.2, b = 0.75); unbounded positive scores.

    Exported range is ``0.0 +inf`` — the paper explicitly allows
    infinities in ``ScoreRange``.
    """

    algorithm_id = "Okapi-1"
    score_range = (0.0, math.inf)

    k1 = 1.2
    b = 0.75

    def term_weight(
        self, tf: int, df: int, n_docs: int, doc_len: int, avg_doc_len: float
    ) -> float:
        if tf <= 0 or n_docs <= 0:
            return 0.0
        # Robertson-Sparck-Jones idf, floored at a small positive value
        # so very common terms do not go negative.
        idf = max(1e-3, math.log((n_docs - df + 0.5) / (df + 0.5) + 1.0))
        denom_len = avg_doc_len if avg_doc_len > 0 else 1.0
        tf_part = (
            tf * (self.k1 + 1.0)
            / (tf + self.k1 * (1.0 - self.b + self.b * doc_len / denom_len))
        )
        return idf * tf_part


class InqueryScorer(RankingAlgorithm):
    """INQUERY-style belief scoring: 0.4 + 0.6 · tf-part · idf-part.

    This is the CORI/inference-network family of ref [5]; beliefs live
    in [0.4, 1.0] per term, and the document score is the weighted mean
    of beliefs, so the exported range is ``0.0 1.0``.
    """

    algorithm_id = "Inquery-1"
    score_range = (0.0, 1.0)

    def term_weight(
        self, tf: int, df: int, n_docs: int, doc_len: int, avg_doc_len: float
    ) -> float:
        if tf <= 0 or n_docs <= 0:
            return 0.0
        denom_len = avg_doc_len if avg_doc_len > 0 else 1.0
        tf_part = tf / (tf + 0.5 + 1.5 * doc_len / denom_len)
        idf_part = math.log(n_docs + 0.5) and (
            math.log((n_docs + 0.5) / max(df, 1)) / math.log(n_docs + 1.0)
        )
        return 0.4 + 0.6 * tf_part * max(idf_part, 0.0)

    def combine(self, contributions: Sequence[tuple[float, float]]) -> float:
        total_weight = sum(q for q, _ in contributions)
        if total_weight <= 0:
            return 0.0
        return sum(q * t for q, t in contributions) / total_weight

    def raw_score_threshold(
        self, threshold: float, query_weights: Sequence[float]
    ) -> float:
        # The weighted mean divides by the same float sum ``combine``
        # computes; a zero total means every score is 0.0, so any
        # positive threshold excludes everything.
        total_weight = sum(query_weights)
        if total_weight <= 0:
            return math.inf
        return (threshold * total_weight) * (1.0 - 1e-9)

    def score_from_raw(self, raw: float, query_weights: Sequence[float]) -> float:
        total_weight = sum(query_weights)
        if total_weight <= 0:
            return 0.0
        return raw / total_weight


class ScaledCosine(CosineTfIdf):
    """Cosine scoring rescaled so the top document always scores 1,000.

    The paper singles this behaviour out: "Some search engines are
    designed so that the top document for a query always has a score
    of, say, 1,000."  Rank order matches :class:`CosineTfIdf`; absolute
    scores are incomparable across queries, which is exactly the trap
    rank-merging strategies must survive.
    """

    algorithm_id = "Zeus-1000"
    score_range = (0.0, 1000.0)

    # The rescale couples every score to the query-wide maximum, so
    # neither top-k pruning nor accumulation-time MinDocumentScore
    # filtering is rank-safe here: this algorithm always runs the
    # exhaustive path with post-hoc filtering.
    prunable = False
    finalize_is_identity = False

    def finalize(self, scores: dict[int, float]) -> dict[int, float]:
        if not scores:
            return scores
        top = max(scores.values())
        if top <= 0:
            return scores
        return {doc_id: 1000.0 * score / top for doc_id, score in scores.items()}


class PivotedCosine(RankingAlgorithm):
    """Pivoted length normalization (Singhal/Salton "Lnu.ltu" lineage).

    The tf part is the log-average-normalized ``(1 + ln tf) /
    (1 + ln avg_tf)`` approximated with avg_tf = doc_len-independent 1,
    divided by the pivoted norm ``(1 - s) + s * doc_len / avg_doc_len``
    with slope s = 0.25.  Unbounded above like BM25, but with a very
    different length behaviour — another incomparable vendor formula.
    """

    algorithm_id = "Salton-2"
    score_range = (0.0, math.inf)

    slope = 0.25

    def term_weight(
        self, tf: int, df: int, n_docs: int, doc_len: int, avg_doc_len: float
    ) -> float:
        if tf <= 0 or df <= 0 or n_docs <= 0:
            return 0.0
        tf_part = 1.0 + math.log(1.0 + math.log(tf))
        denom_len = avg_doc_len if avg_doc_len > 0 else 1.0
        pivot = (1.0 - self.slope) + self.slope * doc_len / denom_len
        idf = math.log((n_docs + 1.0) / df)
        return (tf_part / pivot) * idf


#: Registry by algorithm id, mirroring how a metasearcher would resolve
#: the ``RankingAlgorithmID`` metadata attribute.
RANKING_ALGORITHMS: dict[str, type[RankingAlgorithm]] = {
    cls.algorithm_id: cls
    for cls in (CosineTfIdf, Bm25, InqueryScorer, ScaledCosine, PivotedCosine)
}
