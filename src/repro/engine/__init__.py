"""Full-text search-engine substrate.

STARTS federates *search engines*; the paper could rely on commercial
ones (Fulcrum, Infoseek, PLS, Verity, WAIS, Glimpse).  This package is
the from-scratch replacement: a fielded document model, a positional
inverted index, a Boolean evaluator covering the Basic-1 operator set
(``and``, ``or``, ``and-not``, ``prox``), and a family of pluggable
ranking algorithms so that different simulated vendors genuinely rank
differently — the heterogeneity that motivates the protocol.
"""

from repro.engine.documents import Document, DocumentStore
from repro.engine.fields import (
    ANY,
    AUTHOR,
    BODY_OF_TEXT,
    CROSS_REFERENCE_LINKAGE,
    DATE_LAST_MODIFIED,
    DOCUMENT_TEXT,
    FREE_FORM_TEXT,
    LANGUAGES,
    LINKAGE,
    LINKAGE_TYPE,
    TITLE,
    TEXT_FIELDS,
)
from repro.engine.evaluation import (
    DOCUMENT_AT_A_TIME,
    EVALUATION_MODES,
    PRUNED,
    TERM_AT_A_TIME,
    QueryTermContext,
    hit_order_key,
)
from repro.engine.index import InvertedIndex, Posting
from repro.engine.pruning import PrunedContext, supports_pruning
from repro.engine.persistence import (
    PersistenceError,
    load_engine,
    save_engine,
)
from repro.engine.query import (
    EngineQuery,
    TermQuery,
    BooleanQuery,
    ProxQuery,
    ListQuery,
)
from repro.engine.ranking import (
    RankingAlgorithm,
    CosineTfIdf,
    Bm25,
    InqueryScorer,
    PivotedCosine,
    ScaledCosine,
    RANKING_ALGORITHMS,
)
from repro.engine.search import EngineHit, SearchEngine, TermHitStats
from repro.engine.snippets import Snippet, make_snippet

__all__ = [
    "Document",
    "DocumentStore",
    "ANY",
    "AUTHOR",
    "BODY_OF_TEXT",
    "CROSS_REFERENCE_LINKAGE",
    "DATE_LAST_MODIFIED",
    "DOCUMENT_TEXT",
    "FREE_FORM_TEXT",
    "LANGUAGES",
    "LINKAGE",
    "LINKAGE_TYPE",
    "TITLE",
    "TEXT_FIELDS",
    "DOCUMENT_AT_A_TIME",
    "EVALUATION_MODES",
    "PRUNED",
    "TERM_AT_A_TIME",
    "QueryTermContext",
    "hit_order_key",
    "PrunedContext",
    "supports_pruning",
    "InvertedIndex",
    "Posting",
    "PersistenceError",
    "load_engine",
    "save_engine",
    "EngineQuery",
    "TermQuery",
    "BooleanQuery",
    "ProxQuery",
    "ListQuery",
    "RankingAlgorithm",
    "CosineTfIdf",
    "Bm25",
    "InqueryScorer",
    "PivotedCosine",
    "ScaledCosine",
    "RANKING_ALGORITHMS",
    "EngineHit",
    "SearchEngine",
    "TermHitStats",
    "Snippet",
    "make_snippet",
]
