"""Term-at-a-time query evaluation with per-query statistics reuse.

The original evaluator was document-at-a-time: ``evaluate_ranking``
called ``_score_node`` once per candidate document, and every term
score re-expanded the query term and re-walked *all* of its postings —
O(candidates × total postings) — then the ``TermStats`` pass walked
everything again per hit.  :class:`QueryTermContext` inverts the loop:

* each distinct ranking term is expanded **once** per query;
* each posting list is walked **once**, materializing ``doc_id → tf``
  plus the term's document frequency;
* the collection statistics (document count, average document length)
  are read once and the per-(term, document) engine weights are
  precomputed from them;
* ``list(...)`` nodes are scored with accumulator dictionaries and
  fuzzy-Boolean nodes with per-node ``doc → score`` maps;
* the same context answers the STARTS ``TermStats`` for every hit with
  zero re-traversal.

The produced scores, hit order and ``TermStats`` are exactly those of
the document-at-a-time path, which stays available on
``SearchEngine(evaluation="document_at_a_time")`` as a reference
oracle (see ``tests/engine/test_evaluation_equivalence.py``).

One contract is worth stating: a document carrying none of the query's
terms is scored *implicitly* — its node values are the node's
"zero value", the score the node takes when every term weight is 0.0.
All five vendor ranking algorithms map all-zero contributions to 0.0,
so such documents never enter the result unless a Boolean filter put
them there (in which case they are emitted with their zero value, just
as the oracle emits them).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING

from repro.engine.query import (
    AND,
    AND_NOT,
    OR,
    BooleanQuery,
    EngineQuery,
    ListQuery,
    ProxQuery,
    TermQuery,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle with search.py
    from repro.engine.search import SearchEngine

__all__ = [
    "TERM_AT_A_TIME",
    "DOCUMENT_AT_A_TIME",
    "PRUNED",
    "EVALUATION_MODES",
    "TermHitStats",
    "EngineHit",
    "TermPostings",
    "QueryTermContext",
    "hit_order_key",
    "top_k_hits",
]

#: The default evaluation strategy: one pass over each posting list.
TERM_AT_A_TIME = "term_at_a_time"
#: The original strategy, kept as a bit-exact reference oracle.
DOCUMENT_AT_A_TIME = "document_at_a_time"
#: Rank-safe MaxScore/block-max pruning for score-sorted top-k queries;
#: query shapes it cannot prune fall back to the exhaustive path, so
#: results are always bit-identical to the oracles (see
#: :mod:`repro.engine.pruning`).
PRUNED = "pruned"
EVALUATION_MODES = (TERM_AT_A_TIME, DOCUMENT_AT_A_TIME, PRUNED)


@dataclass(frozen=True, slots=True)
class TermHitStats:
    """Per-query-term statistics for one document (STARTS ``TermStats``).

    Attributes:
        field: field the term was evaluated against.
        text: the query term's original text.
        term_frequency: occurrences of the (expanded) term in the doc.
        term_weight: the engine's internal weight for the term.
        document_frequency: documents in the source containing the term.
    """

    field: str
    text: str
    term_frequency: int
    term_weight: float
    document_frequency: int


@dataclass(slots=True)
class EngineHit:
    """One document in an engine result, with merge-grade statistics."""

    doc_id: int
    score: float
    term_stats: list[TermHitStats] = dataclass_field(default_factory=list)


@dataclass(slots=True)
class TermPostings:
    """One ranking term's materialized statistics for one query.

    Attributes:
        doc_tf: document id → term frequency, aggregated over every
            index term the query term expands to (restricted to the
            filter candidates when the query has a filter).
        document_frequency: distinct documents containing any expansion,
            over the *whole* source (never candidate-restricted — the
            STARTS df statistic describes the source, not the result).
        doc_weight: document id → the engine's term weight, precomputed
            from (tf, df, collection size, document length).
    """

    doc_tf: dict[int, int]
    document_frequency: int
    doc_weight: dict[int, float]


def _term_key(term: TermQuery) -> tuple[str, str, str, frozenset[str]]:
    """Statistics identity of a term: everything except its query weight."""
    return (term.field, term.text, term.language, term.modifiers)


class QueryTermContext:
    """Per-query evaluation context for one ranking expression.

    Built once per ``search``/``evaluate_ranking`` call; owns every
    statistic the query needs so no posting list is walked more than
    once and no term is expanded more than once.

    Args:
        engine: the engine to evaluate against (must have a ranking
            algorithm).
        query: the ranking expression.
        candidates: the Boolean filter's document set, or None when the
            query has no filter.
    """

    def __init__(
        self,
        engine: "SearchEngine",
        query: EngineQuery,
        candidates: set[int] | None = None,
    ) -> None:
        if engine.ranking is None:
            raise RuntimeError("this engine does not support ranking expressions")
        self._engine = engine
        self._query = query
        self._candidates = candidates
        self._ranking = engine.ranking
        self._n_docs = engine.document_count
        self._avg_doc_len = engine.store.average_token_count()
        self._by_term: dict[tuple, TermPostings] = {}
        #: Total postings visited while materializing this query's
        #: statistics — the term-at-a-time work metric.
        self.postings_walked = 0
        for term in query.terms():
            key = _term_key(term)
            if key not in self._by_term:
                self._by_term[key] = self._materialize(term)
        self._root_scores: dict[int, float] | None = None
        self._root_zero = 0.0

    # -- statistics materialization ------------------------------------

    def _materialize(self, term: TermQuery) -> TermPostings:
        """One pass over the term's posting lists: tf per doc plus df."""
        engine = self._engine
        candidates = self._candidates
        doc_tf: dict[int, int] = {}
        df_docs: set[int] = set()
        for field_name, index_terms in engine.matcher.expand(term).items():
            for index_term in index_terms:
                postings = engine.index.postings(field_name, index_term)
                self.postings_walked += len(postings)
                for posting in postings:
                    doc_id = posting.doc_id
                    df_docs.add(doc_id)
                    if candidates is None or doc_id in candidates:
                        doc_tf[doc_id] = doc_tf.get(doc_id, 0) + posting.term_frequency
        df = len(df_docs)
        token_count = engine.store.token_count
        term_weight = self._ranking.term_weight
        n_docs, avg = self._n_docs, self._avg_doc_len
        doc_weight = {
            doc_id: term_weight(tf, df, n_docs, token_count(doc_id), avg)
            for doc_id, tf in doc_tf.items()
        }
        return TermPostings(doc_tf, df, doc_weight)

    # -- node scoring ----------------------------------------------------

    def _node_scores(self, node: EngineQuery) -> dict[int, float]:
        """doc → score for one query node.

        Documents absent from the map take the node's zero value (see
        :meth:`_zero_value`); all map/absence combinations reproduce the
        oracle's per-document recursion exactly.
        """
        if isinstance(node, TermQuery):
            stats = self._by_term[_term_key(node)]
            weight = node.weight
            return {
                doc_id: weight * w for doc_id, w in stats.doc_weight.items()
            }
        if isinstance(node, ListQuery):
            children = [
                (
                    child.weight if isinstance(child, TermQuery) else 1.0,
                    self._node_scores(child),
                    self._zero_value(child),
                )
                for child in node.children
            ]
            combine = self._ranking.combine
            scores: dict[int, float] = {}
            for doc_id in self._support(pair[1] for pair in children):
                scores[doc_id] = combine(
                    [(q_weight, m.get(doc_id, zero)) for q_weight, m, zero in children]
                )
            return scores
        if isinstance(node, BooleanQuery):
            children = [
                (self._node_scores(child), self._zero_value(child))
                for child in node.children
            ]
            support = self._support(pair[0] for pair in children)
            if node.operator == AND:
                return {
                    doc_id: min(m.get(doc_id, zero) for m, zero in children)
                    for doc_id in support
                }
            if node.operator == OR:
                return {
                    doc_id: max(m.get(doc_id, zero) for m, zero in children)
                    for doc_id in support
                }
            if node.operator == AND_NOT:
                (pos, pos_zero), (neg, neg_zero) = children
                return {
                    doc_id: max(
                        0.0, pos.get(doc_id, pos_zero) - neg.get(doc_id, neg_zero)
                    )
                    for doc_id in support
                }
        if isinstance(node, ProxQuery):
            prox_docs = self._engine._prox_docs(node)
            if self._candidates is not None:
                prox_docs &= self._candidates
            left = self._node_scores(node.left)
            right = self._node_scores(node.right)
            return {
                doc_id: min(left.get(doc_id, 0.0), right.get(doc_id, 0.0))
                for doc_id in prox_docs
            }
        raise TypeError(f"cannot score node: {type(node).__name__}")

    def _zero_value(self, node: EngineQuery) -> float:
        """The node's score for a document containing none of its terms."""
        if isinstance(node, (TermQuery, ProxQuery)):
            return 0.0
        if isinstance(node, ListQuery):
            return self._ranking.combine(
                [
                    (
                        child.weight if isinstance(child, TermQuery) else 1.0,
                        self._zero_value(child),
                    )
                    for child in node.children
                ]
            )
        if isinstance(node, BooleanQuery):
            zeros = [self._zero_value(child) for child in node.children]
            if node.operator == AND:
                return min(zeros)
            if node.operator == OR:
                return max(zeros)
            return max(0.0, zeros[0] - zeros[1])
        raise TypeError(f"cannot score node: {type(node).__name__}")

    @staticmethod
    def _support(maps) -> set[int]:
        support: set[int] = set()
        for score_map in maps:
            support.update(score_map)
        return support

    # -- results ----------------------------------------------------------

    def scores(self, min_score: float = 0.0) -> dict[int, float]:
        """doc → finalized score, exactly as ``evaluate_ranking`` returns.

        With candidates, every candidate gets an entry (zero-score
        documents included); without, only positive-scoring documents
        appear, drawn from the union of the terms' posting supports.

        ``min_score`` (the answer specification's ``MinDocumentScore``)
        is applied **during** accumulation when the ranking algorithm's
        ``finalize`` is the identity — the filter commutes with
        finalize, so sub-threshold documents never take accumulator
        entries.  Algorithms with a real finalize pass (the top-doc
        rescaler) ignore it here; the caller filters post-hoc.
        """
        if self._root_scores is None:
            self._root_scores = self._node_scores(self._query)
            self._root_zero = self._zero_value(self._query)
        root, zero = self._root_scores, self._root_zero
        floor = (
            min_score
            if min_score > 0.0 and self._ranking.finalize_is_identity
            else None
        )
        if self._candidates is not None:
            if floor is None:
                raw = {doc_id: root.get(doc_id, zero) for doc_id in self._candidates}
            else:
                raw = {}
                for doc_id in self._candidates:
                    value = root.get(doc_id, zero)
                    if value >= floor:
                        raw[doc_id] = value
        else:
            raw = {}
            for doc_id in self._support(
                stats.doc_tf for stats in self._by_term.values()
            ):
                value = root.get(doc_id, zero)
                if value > 0.0 and (floor is None or value >= floor):
                    raw[doc_id] = value
        return self._ranking.finalize(raw)

    @property
    def applied_min_score(self) -> bool:
        """Whether :meth:`scores` honours a ``min_score`` floor itself."""
        return self._ranking.finalize_is_identity

    def hit_term_stats(self, doc_id: int) -> list[TermHitStats]:
        """STARTS ``TermStats`` for one hit, straight from the context."""
        stats: list[TermHitStats] = []
        for term in self._query.terms():
            postings = self._by_term[_term_key(term)]
            tf = postings.doc_tf.get(doc_id, 0)
            weight = postings.doc_weight.get(doc_id, 0.0) if tf else 0.0
            stats.append(
                TermHitStats(
                    term.field, term.text, tf, weight, postings.document_frequency
                )
            )
        return stats


def hit_order_key(item: tuple[int, float]) -> tuple[float, int]:
    """The canonical hit order: descending score, then ascending doc id.

    This key is the engine's tie contract.  Everything that orders or
    truncates hits — :func:`top_k_hits`, the pruned evaluator's
    candidate selection — must sort by exactly this key, so that
    duplicate scores straddling the kth position resolve identically on
    every evaluation path and backend.
    """
    return (-item[1], item[0])


def top_k_hits(
    scores: dict[int, float], top_k: int | None
) -> list[tuple[int, float]]:
    """(doc_id, score) pairs in :func:`hit_order_key` order.

    With ``top_k`` below the result size, a heap selects the top k in
    O(n log k) without sorting — or materializing — the full result.
    ``heapq.nsmallest`` breaks key ties by input position, but the key
    is injective here (doc ids are unique), so the selected prefix is
    identical to ``sorted(...)[:top_k]``.
    """
    if top_k is not None and top_k < len(scores):
        return heapq.nsmallest(top_k, scores.items(), key=hit_order_key)
    return sorted(scores.items(), key=hit_order_key)
