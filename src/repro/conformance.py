"""STARTS-1.0 conformance checking for sources.

A deployment tool: probe a source (directly or over the wire) and
report which protocol obligations it meets.  Checks are derived from
the specification's MUSTs:

* **metadata** — all required MBasic-1 attributes present and
  well-formed; advertised linkages resolve (when probing over a
  network).
* **required fields** — the four required Basic-1 fields are declared.
* **operators** — if filter expressions are supported, all four
  Basic-1 operators execute (§4.1.1: "If a source supports filter
  expressions, it must support all these operators").
* **actual-query reporting** — the source reports the query it
  processed, and ignores (rather than rejects) unsupported parts.
* **answer specification** — MaxNumberDocuments and the default
  score-descending order are honoured; linkage is returned with every
  document.
* **statelessness** — repeating a query yields identical results.
* **summary consistency** — NumDocs is consistent with observed
  results; summary statistics are internally sane (df <= NumDocs,
  postings >= df).

The checker never *requires* optional features; it reports them as
informational findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.source.source import StartsSource
from repro.starts.attributes import BASIC1, canonical_field_name
from repro.starts.metadata import MBASIC1_ATTRIBUTES
from repro.starts.parser import parse_expression
from repro.starts.query import SQuery

__all__ = ["Finding", "ConformanceReport", "check_source"]


@dataclass(frozen=True)
class Finding:
    """One check outcome."""

    check: str
    passed: bool
    detail: str = ""

    def row(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        detail = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.check}{detail}"


@dataclass
class ConformanceReport:
    """All findings for one source."""

    source_id: str
    findings: list[Finding] = dataclass_field(default_factory=list)

    def add(self, check: str, passed: bool, detail: str = "") -> None:
        self.findings.append(Finding(check, passed, detail))

    @property
    def passed(self) -> bool:
        return all(finding.passed for finding in self.findings)

    def failures(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.passed]

    def render(self) -> str:
        lines = [f"STARTS conformance: {self.source_id}"]
        lines.extend(finding.row() for finding in self.findings)
        verdict = "CONFORMANT" if self.passed else "NON-CONFORMANT"
        lines.append(f"=> {verdict} ({len(self.failures())} failure(s))")
        return "\n".join(lines)


_REQUIRED_METADATA = [spec.name for spec in MBASIC1_ATTRIBUTES if spec.required]


def check_source(source: StartsSource) -> ConformanceReport:
    """Run the full conformance battery against ``source``."""
    report = ConformanceReport(source.source_id)
    _check_metadata(source, report)
    _check_required_fields(source, report)
    _check_operators(source, report)
    _check_actual_query_reporting(source, report)
    _check_answer_specification(source, report)
    _check_statelessness(source, report)
    _check_summary_consistency(source, report)
    return report


def _check_metadata(source: StartsSource, report: ConformanceReport) -> None:
    metadata = source.metadata()
    wire = metadata.to_soif()
    wire_names = {name.lower() for name in wire.names()}
    aliases = {
        "linkage": "linkage",
        "contentsummarylinkage": "content-summary-linkage",
    }
    for name in _REQUIRED_METADATA:
        wire_name = aliases.get(name.lower(), name).lower()
        present = wire_name in wire_names
        report.add(f"metadata: {name} exported", present)
    low, high = metadata.score_range
    report.add(
        "metadata: ScoreRange ordered",
        low <= high,
        f"range is {metadata.score_range}",
    )


def _check_required_fields(source: StartsSource, report: ConformanceReport) -> None:
    metadata = source.metadata()
    for name in BASIC1.required_fields():
        report.add(
            f"fields: required {name!r} declared",
            metadata.supports_field(canonical_field_name(name)),
        )


def _check_operators(source: StartsSource, report: ConformanceReport) -> None:
    if not source.capabilities.supports_filter():
        report.add("operators: (skipped — no filter support)", True)
        return
    probes = {
        "and": '((any "alpha") and (any "beta"))',
        "or": '((any "alpha") or (any "beta"))',
        "and-not": '((any "alpha") and-not (any "beta"))',
        "prox": '((any "alpha") prox[1,T] (any "beta"))',
    }
    for operator, text in probes.items():
        query = SQuery(filter_expression=parse_expression(text))
        try:
            source.search(query)
            report.add(f"operators: {operator} accepted", True)
        except Exception as error:  # conformance: must not reject
            report.add(f"operators: {operator} accepted", False, repr(error))


def _check_actual_query_reporting(
    source: StartsSource, report: ConformanceReport
) -> None:
    query = SQuery(
        filter_expression=parse_expression('(title "alpha")'),
        ranking_expression=parse_expression('list((body-of-text "alpha"))'),
    )
    results = source.search(query)
    reported = (
        results.actual_filter_expression is not None
        or results.actual_ranking_expression is not None
    )
    report.add(
        "results: actual query reported",
        reported,
        "a source must reveal what it processed",
    )

    # An unsupported part must be ignored, not rejected.
    exotic = SQuery(
        filter_expression=parse_expression(
            '((title "alpha") and (no-such-field "beta"))'
        )
    )
    try:
        exotic_results = source.search(exotic)
        survived = exotic_results.actual_filter_expression
        detail = f"actual: {survived.serialize() if survived else '(empty)'}"
        report.add("results: unsupported parts ignored silently", True, detail)
    except Exception as error:
        report.add("results: unsupported parts ignored silently", False, repr(error))


def _probe_ranking_query(source: StartsSource) -> SQuery:
    """A ranking query guaranteed to match something, built by scanning
    the source's own vocabulary."""
    scan = source.scan("body-of-text", "", count=3)
    words = [entry.word for entry in scan.entries] or ["alpha"]
    terms = " ".join(f'(body-of-text "{word}")' for word in words)
    return SQuery(ranking_expression=parse_expression(f"list({terms})"))


def _check_answer_specification(
    source: StartsSource, report: ConformanceReport
) -> None:
    if not source.capabilities.supports_ranking() or source.document_count == 0:
        report.add("answer: (skipped — no ranking or empty source)", True)
        return
    from dataclasses import replace

    query = _probe_ranking_query(source)
    results = source.search(query)
    if not results.documents:
        report.add("answer: probe query matched", False, "vocabulary probe empty")
        return

    report.add(
        "answer: linkage on every document",
        all(document.linkage for document in results.documents),
    )
    scores = [document.raw_score for document in results.documents]
    report.add("answer: score-descending default order", scores == sorted(scores, reverse=True))

    capped = source.search(replace(query, max_number_documents=1))
    report.add("answer: MaxNumberDocuments honoured", len(capped.documents) <= 1)

    low, high = source.metadata().score_range
    in_range = all(low <= score <= high for score in scores)
    report.add(
        "answer: scores within declared ScoreRange",
        in_range,
        f"range {source.metadata().score_range}",
    )


def _check_statelessness(source: StartsSource, report: ConformanceReport) -> None:
    query = _probe_ranking_query(source)
    if not source.capabilities.supports_ranking():
        query = SQuery(filter_expression=parse_expression('(any "alpha")'))
    first = source.search(query)
    second = source.search(query)
    report.add("sessionless: repeated query identical", first == second)


def _check_summary_consistency(
    source: StartsSource, report: ConformanceReport
) -> None:
    summary = source.content_summary()
    report.add(
        "summary: NumDocs matches source size",
        summary.num_docs == source.document_count,
        f"NumDocs={summary.num_docs}, source={source.document_count}",
    )
    sane = True
    for section in summary.sections:
        for entry in section.entries:
            if entry.document_frequency > summary.num_docs:
                sane = False
            if 0 <= entry.postings < entry.document_frequency:
                sane = False
    report.add("summary: statistics internally consistent", sane)
