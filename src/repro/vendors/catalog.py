"""The vendor catalog: seven heterogeneous simulated search engines.

These stand in for the companies the paper federates (Fulcrum,
Infoseek, PLS, Verity, WAIS, Glimpse, Excite...).  Each vendor differs
along every axis §3 identifies:

* **ranking algorithm** (secret formulas, incomparable score ranges),
* **tokenizer** (is "Z39.50" one token or two?),
* **stop-word policy** (can it be turned off?),
* **stemming at index time** vs. query time,
* **query-part support** (Boolean-only Glimpse),
* **capability subsets** (missing fields, missing modifiers),
* **native query syntax** (for Free-form-text).

``build_vendor_source`` assembles a :class:`StartsSource` from a
profile; experiments instantiate several vendors over different
collections to recreate the heterogeneous federation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.ranking import (
    Bm25,
    CosineTfIdf,
    InqueryScorer,
    PivotedCosine,
    RankingAlgorithm,
    ScaledCosine,
)
from repro.engine.evaluation import PRUNED
from repro.engine.search import SearchEngine
from repro.source.capabilities import SourceCapabilities
from repro.source.source import StartsSource
from repro.starts.attributes import BASIC1
from repro.text.analysis import Analyzer
from repro.text.stopwords import ENGLISH_STOP_WORDS, SPANISH_STOP_WORDS, StopWordList
from repro.text.tokenize import SimpleTokenizer, UnicodeTokenizer, WhitespaceTokenizer
from repro.vendors.native import (
    InfixSyntax,
    NativeSyntax,
    PlusMinusSyntax,
    SemicolonSyntax,
)

__all__ = ["VendorProfile", "VENDORS", "build_vendor_source", "vendor_names"]


@dataclass(frozen=True)
class VendorProfile:
    """Everything needed to instantiate one vendor's engine."""

    name: str
    description: str
    ranking_factory: object  # () -> RankingAlgorithm | None
    analyzer_factory: object  # () -> Analyzer
    capabilities_factory: object  # () -> SourceCapabilities
    native_syntax: NativeSyntax | None = None

    def build_engine(self) -> SearchEngine:
        # Vendors run the pruned evaluator: STARTS sources push
        # MaxNumberDocuments / MinDocumentScore down to the engine, so
        # truncated score-sorted queries — the federation's bread and
        # butter — skip postings.  Hits are bit-identical to the
        # exhaustive modes, and unprunable shapes fall back on their
        # own, so vendor observable behavior is unchanged.
        ranking: RankingAlgorithm | None = self.ranking_factory()
        return SearchEngine(
            analyzer=self.analyzer_factory(), ranking=ranking, evaluation=PRUNED
        )


def _full_fields() -> dict[str, tuple[str, ...]]:
    return {name: () for name in BASIC1.fields}


def _full_modifiers() -> dict[str, tuple[str, ...]]:
    return {name: () for name in BASIC1.modifiers}


def _acme_capabilities() -> SourceCapabilities:
    fields = _full_fields()
    fields[F.ABSTRACT] = ()
    return SourceCapabilities(
        fields=fields,
        modifiers=_full_modifiers(),
        query_parts="RF",
        supports_prox=True,
        turn_off_stop_words=True,
        supports_free_form=True,
    )


def _okapi_capabilities() -> SourceCapabilities:
    caps = SourceCapabilities(
        fields=_full_fields(),
        modifiers=_full_modifiers(),
        query_parts="RF",
        supports_prox=True,
        turn_off_stop_words=True,
        supports_free_form=True,
    )
    return caps.without_modifiers("thesaurus", "left-truncation")


def _infernet_capabilities() -> SourceCapabilities:
    caps = SourceCapabilities(
        fields=_full_fields(),
        modifiers=_full_modifiers(),
        query_parts="RF",
        supports_prox=True,
        turn_off_stop_words=False,
    )
    return caps.without_modifiers("case-sensitive")


def _zeus_capabilities() -> SourceCapabilities:
    caps = SourceCapabilities(
        fields=_full_fields(),
        modifiers=_full_modifiers(),
        query_parts="RF",
        supports_prox=False,  # the vendor who found prox too complex
        turn_off_stop_words=False,
        result_cap=50,
    )
    return caps.without_modifiers("right-truncation", "left-truncation").without_fields(
        "author"
    )


def _grep_capabilities() -> SourceCapabilities:
    # Glimpse-like: filter expressions only (§3.1: "Glimpse only
    # supports filter expressions").
    caps = SourceCapabilities(
        fields=_full_fields(),
        modifiers=_full_modifiers(),
        query_parts="F",
        supports_prox=True,
        turn_off_stop_words=True,
        supports_free_form=True,
    )
    return caps.without_modifiers("thesaurus", "phonetic")


def _mundo_capabilities() -> SourceCapabilities:
    return SourceCapabilities(
        fields=_full_fields(),
        modifiers=_full_modifiers(),
        query_parts="RF",
        supports_prox=True,
        turn_off_stop_words=True,
    )


def _english_stop_lists() -> dict[str, StopWordList]:
    return {"en": ENGLISH_STOP_WORDS}


def _bilingual_stop_lists() -> dict[str, StopWordList]:
    return {"en": ENGLISH_STOP_WORDS, "es": SPANISH_STOP_WORDS}


VENDORS: dict[str, VendorProfile] = {
    "AcmeSearch": VendorProfile(
        name="AcmeSearch",
        description="Verity-like: cosine tf·idf, punctuation-splitting "
        "tokenizer, full Basic-1, infix native syntax",
        ranking_factory=CosineTfIdf,
        analyzer_factory=lambda: Analyzer(
            tokenizer=SimpleTokenizer(),
            stop_words=_english_stop_lists(),
            index_stop_words=True,
        ),
        capabilities_factory=_acme_capabilities,
        native_syntax=InfixSyntax(),
    ),
    "OkapiWorks": VendorProfile(
        name="OkapiWorks",
        description="Infoseek-like: BM25 with unbounded scores, "
        "whitespace tokenizer, +/- native syntax",
        ranking_factory=Bm25,
        analyzer_factory=lambda: Analyzer(
            tokenizer=WhitespaceTokenizer(),
            stop_words=_english_stop_lists(),
            index_stop_words=True,
        ),
        capabilities_factory=_okapi_capabilities,
        native_syntax=PlusMinusSyntax(),
    ),
    "InferNet": VendorProfile(
        name="InferNet",
        description="PLS/INQUERY-like: belief scoring, stems at index "
        "time, stop words cannot be disabled",
        ranking_factory=InqueryScorer,
        analyzer_factory=lambda: Analyzer(
            tokenizer=UnicodeTokenizer(),
            stop_words=_english_stop_lists(),
            stem=True,
            can_disable_stop_words=False,
        ),
        capabilities_factory=_infernet_capabilities,
        native_syntax=None,
    ),
    "ZeusFind": VendorProfile(
        name="ZeusFind",
        description="Excite-like: top document always scores 1000, no "
        "prox, capped result lists, no author field",
        ranking_factory=ScaledCosine,
        analyzer_factory=lambda: Analyzer(
            tokenizer=SimpleTokenizer(),
            stop_words=_english_stop_lists(),
            can_disable_stop_words=False,
        ),
        capabilities_factory=_zeus_capabilities,
        native_syntax=None,
    ),
    "GrepMaster": VendorProfile(
        name="GrepMaster",
        description="Glimpse-like: Boolean-only, no ranking expressions, "
        "semicolon/comma native syntax",
        ranking_factory=lambda: None,
        analyzer_factory=lambda: Analyzer(
            tokenizer=WhitespaceTokenizer(),
            stop_words=_english_stop_lists(),
            index_stop_words=True,
        ),
        capabilities_factory=_grep_capabilities,
        native_syntax=SemicolonSyntax(),
    ),
    "SaltonSoft": VendorProfile(
        name="SaltonSoft",
        description="SMART-lineage: pivoted length normalization, "
        "unbounded scores, full Basic-1, infix native syntax",
        ranking_factory=PivotedCosine,
        analyzer_factory=lambda: Analyzer(
            tokenizer=UnicodeTokenizer(),
            stop_words=_english_stop_lists(),
            index_stop_words=True,
        ),
        capabilities_factory=_acme_capabilities,
        native_syntax=InfixSyntax(),
    ),
    "MundoDocs": VendorProfile(
        name="MundoDocs",
        description="Bilingual (en/es): Unicode tokenizer, per-language "
        "stemming and stop lists",
        ranking_factory=InqueryScorer,
        analyzer_factory=lambda: Analyzer(
            tokenizer=UnicodeTokenizer(),
            stop_words=_bilingual_stop_lists(),
            index_stop_words=True,
        ),
        capabilities_factory=_mundo_capabilities,
        native_syntax=None,
    ),
}


def vendor_names() -> list[str]:
    return sorted(VENDORS)


def build_vendor_source(
    vendor: str,
    source_id: str,
    documents: list[Document],
    base_url: str | None = None,
    **source_kwargs,
) -> StartsSource:
    """Instantiate a vendor's engine as a STARTS source.

    Raises:
        KeyError: for an unknown vendor name.
    """
    profile = VENDORS[vendor]
    return StartsSource(
        source_id,
        documents=documents,
        engine=profile.build_engine(),
        capabilities=profile.capabilities_factory(),
        base_url=base_url,
        source_name=f"{profile.name} {source_id}",
        native_syntax=profile.native_syntax,
        **source_kwargs,
    )
