"""Simulated heterogeneous search-engine vendors and native syntaxes."""

from repro.vendors.catalog import (
    VENDORS,
    VendorProfile,
    build_vendor_source,
    vendor_names,
)
from repro.vendors.native import (
    NATIVE_SYNTAXES,
    InfixSyntax,
    NativeSyntax,
    PlusMinusSyntax,
    SemicolonSyntax,
)

__all__ = [
    "VENDORS",
    "VendorProfile",
    "build_vendor_source",
    "vendor_names",
    "NATIVE_SYNTAXES",
    "InfixSyntax",
    "NativeSyntax",
    "PlusMinusSyntax",
    "SemicolonSyntax",
]
