"""Native vendor query syntaxes — the §3.1 query-language problem.

"A query asking for documents with the words 'distributed' and
'systems' might be expressed as ``distributed and systems`` in one
source, and as ``+distributed +systems`` in another."  This module
implements three native syntax families found in mid-90s engines, each
with a parser (native text → STARTS AST) and a generator (STARTS AST →
native text):

* :class:`InfixSyntax` — ``distributed AND systems``, ``title:word``,
  parentheses (Verity/Fulcrum style);
* :class:`PlusMinusSyntax` — ``+distributed +systems -legacy``
  (Infoseek/AltaVista style: ``+`` required, ``-`` excluded, bare
  words optional);
* :class:`SemicolonSyntax` — ``distributed;systems`` for AND and
  ``distributed,systems`` for OR (Glimpse style).

They serve two protocol purposes: the ``Free-form-text`` field lets an
informed metasearcher send native queries straight through, and the
query-translation experiments (E3) measure how much meaning survives a
round trip through each syntax.
"""

from __future__ import annotations

import re

from repro.starts.ast import SAnd, SAndNot, SList, SNode, SOr, SProx, STerm
from repro.starts.attributes import FieldRef
from repro.starts.errors import QuerySyntaxError
from repro.starts.lstring import LString

__all__ = [
    "NativeSyntax",
    "InfixSyntax",
    "PlusMinusSyntax",
    "SemicolonSyntax",
    "NATIVE_SYNTAXES",
]


class NativeSyntax:
    """Interface of a native syntax: parse and generate."""

    syntax_id = "base"

    def parse(self, text: str) -> SNode:
        """Native text → STARTS AST.

        Raises:
            QuerySyntaxError: on malformed native input.
        """
        raise NotImplementedError

    def generate(self, node: SNode) -> str:
        """STARTS AST → native text (best effort; modifiers are lost,
        which is precisely the degradation E3 measures)."""
        raise NotImplementedError


_WORD_RE = re.compile(r'"[^"]*"|[^\s():;,]+')


def _term(word: str, field: str | None = None) -> STerm:
    word = word.strip('"')
    field_ref = FieldRef(field) if field else None
    return STerm(LString(word), field_ref)


class InfixSyntax(NativeSyntax):
    """``a AND b OR c``, ``title:word``, parentheses; left-associative."""

    syntax_id = "infix"

    _TOKEN_RE = re.compile(r'\(|\)|"[^"]*"|[^\s()]+')

    def parse(self, text: str) -> SNode:
        tokens = self._TOKEN_RE.findall(text)
        if not tokens:
            raise QuerySyntaxError("empty native query")
        node, rest = self._parse_sequence(tokens, 0)
        if rest != len(tokens):
            raise QuerySyntaxError(f"trailing native input: {tokens[rest:]}")
        return node

    def _parse_sequence(self, tokens: list[str], pos: int) -> tuple[SNode, int]:
        node, pos = self._parse_atom(tokens, pos)
        while pos < len(tokens) and tokens[pos] != ")":
            operator = tokens[pos].lower()
            if operator in ("and", "or", "not"):
                pos += 1
                right, pos = self._parse_atom(tokens, pos)
            else:
                # Implicit AND between adjacent atoms.
                operator = "and"
                right, pos = self._parse_atom(tokens, pos)
            if operator == "and":
                node = SAnd((node, right)) if not isinstance(node, SAnd) else SAnd(
                    node.children + (right,)
                )
            elif operator == "or":
                node = SOr((node, right)) if not isinstance(node, SOr) else SOr(
                    node.children + (right,)
                )
            else:
                node = SAndNot(node, right)
        return node, pos

    def _parse_atom(self, tokens: list[str], pos: int) -> tuple[SNode, int]:
        if pos >= len(tokens):
            raise QuerySyntaxError("native query ended unexpectedly")
        token = tokens[pos]
        if token == "(":
            node, pos = self._parse_sequence(tokens, pos + 1)
            if pos >= len(tokens) or tokens[pos] != ")":
                raise QuerySyntaxError("unbalanced parentheses in native query")
            return node, pos + 1
        if token == ")":
            raise QuerySyntaxError("unexpected ')' in native query")
        pos += 1
        if ":" in token and not token.startswith('"'):
            field, _, word = token.partition(":")
            return _term(word, field), pos
        return _term(token), pos

    def generate(self, node: SNode) -> str:
        return self._generate(node)

    def _generate(self, node: SNode) -> str:
        if isinstance(node, STerm):
            word = node.lstring.text
            if " " in word:
                word = f'"{word}"'
            if node.field is not None and node.field.name != "any":
                return f"{node.field.name}:{word}"
            return word
        if isinstance(node, SAnd):
            return "(" + " AND ".join(self._generate(c) for c in node.children) + ")"
        if isinstance(node, SOr):
            return "(" + " OR ".join(self._generate(c) for c in node.children) + ")"
        if isinstance(node, SAndNot):
            return f"({self._generate(node.positive)} NOT {self._generate(node.negative)})"
        if isinstance(node, SProx):
            # No native prox: degrade to AND.
            return f"({self._generate(node.left)} AND {self._generate(node.right)})"
        if isinstance(node, SList):
            return "(" + " OR ".join(self._generate(c) for c in node.children) + ")"
        raise TypeError(f"cannot generate native query for {type(node).__name__}")


class PlusMinusSyntax(NativeSyntax):
    """``+required bare -excluded`` — flat, no nesting.

    Parse result: AND of ``+`` terms, OR-extended with bare terms,
    AND-NOT for ``-`` terms.  With only bare terms the result is an OR.
    """

    syntax_id = "plusminus"

    def parse(self, text: str) -> SNode:
        required: list[STerm] = []
        optional: list[STerm] = []
        excluded: list[STerm] = []
        for raw in _WORD_RE.findall(text):
            if raw.startswith("+"):
                required.append(_term(raw[1:]))
            elif raw.startswith("-"):
                excluded.append(_term(raw[1:]))
            else:
                optional.append(_term(raw))
        if not (required or optional):
            raise QuerySyntaxError("native query has no positive component")

        positive: SNode
        if required:
            positive = required[0] if len(required) == 1 else SAnd(tuple(required))
            if optional:
                # Optional words broaden the result: positive OR optional.
                extras = optional[0] if len(optional) == 1 else SOr(tuple(optional))
                positive = SOr((positive, extras))
        else:
            positive = optional[0] if len(optional) == 1 else SOr(tuple(optional))

        if not excluded:
            return positive
        negative = excluded[0] if len(excluded) == 1 else SOr(tuple(excluded))
        return SAndNot(positive, negative)

    def generate(self, node: SNode) -> str:
        required: list[str] = []
        excluded: list[str] = []
        self._collect(node, required, excluded, negated=False)
        parts = [f"+{word}" for word in required]
        parts.extend(f"-{word}" for word in excluded)
        return " ".join(parts)

    def _collect(
        self, node: SNode, required: list[str], excluded: list[str], negated: bool
    ) -> None:
        target = excluded if negated else required
        if isinstance(node, STerm):
            target.append(node.lstring.text)
        elif isinstance(node, (SAnd, SOr, SList)):
            for child in node.children:
                self._collect(child, required, excluded, negated)
        elif isinstance(node, SAndNot):
            self._collect(node.positive, required, excluded, negated)
            self._collect(node.negative, required, excluded, not negated)
        elif isinstance(node, SProx):
            self._collect(node.left, required, excluded, negated)
            self._collect(node.right, required, excluded, negated)
        else:
            raise TypeError(f"cannot flatten {type(node).__name__}")


class SemicolonSyntax(NativeSyntax):
    """Glimpse-style: ``a;b`` means AND, ``a,b`` means OR; no nesting.

    Semicolons bind looser than commas: ``a,b;c`` is ``(a OR b) AND c``.
    """

    syntax_id = "semicolon"

    def parse(self, text: str) -> SNode:
        text = text.strip()
        if not text:
            raise QuerySyntaxError("empty native query")
        and_groups = [piece.strip() for piece in text.split(";") if piece.strip()]
        if not and_groups:
            raise QuerySyntaxError("empty native query")
        parsed_groups: list[SNode] = []
        for group in and_groups:
            words = [piece.strip() for piece in group.split(",") if piece.strip()]
            terms = [_term(word) for word in words]
            if not terms:
                raise QuerySyntaxError(f"empty OR group in {text!r}")
            parsed_groups.append(terms[0] if len(terms) == 1 else SOr(tuple(terms)))
        if len(parsed_groups) == 1:
            return parsed_groups[0]
        return SAnd(tuple(parsed_groups))

    def generate(self, node: SNode) -> str:
        if isinstance(node, STerm):
            return node.lstring.text
        if isinstance(node, SAnd):
            return ";".join(self.generate(child) for child in node.children)
        if isinstance(node, (SOr, SList)):
            return ",".join(self.generate(child) for child in node.children)
        if isinstance(node, SAndNot):
            # Glimpse has no negation: the positive side survives.
            return self.generate(node.positive)
        if isinstance(node, SProx):
            return f"{self.generate(node.left)};{self.generate(node.right)}"
        raise TypeError(f"cannot generate native query for {type(node).__name__}")


NATIVE_SYNTAXES: dict[str, NativeSyntax] = {
    syntax.syntax_id: syntax
    for syntax in (InfixSyntax(), PlusMinusSyntax(), SemicolonSyntax())
}
