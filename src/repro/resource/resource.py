"""The resource abstraction (§3, §4.3.3 and Figure 1 of the paper).

A resource (think Knight-Ridder's Dialog) contains one or more sources.
A client queries *one* source of the resource and may name other local
sources in the query's ``Sources`` attribute; the resource evaluates
the query at all of them and — because it sees every local result —
eliminates duplicate documents, "which would be difficult for the
metasearcher to do if it queried all of the sources independently."

Duplicates are detected by linkage (URL).  A merged document keeps the
highest raw score among its copies — scores within one resource share
a scale only if the sources share an engine, so the resource also
records every originating source in the document's ``Sources`` list,
letting the metasearcher decide for itself.
"""

from __future__ import annotations

from repro.starts.errors import UnknownSourceError
from repro.starts.metadata import SResource
from repro.starts.query import SQuery
from repro.starts.results import SQRDocument, SQResults
from repro.source.source import StartsSource

__all__ = ["Resource"]


class Resource:
    """A named group of sources with resource-side result merging."""

    def __init__(self, name: str, sources: list[StartsSource] | None = None) -> None:
        self.name = name
        self._sources: dict[str, StartsSource] = {}
        for source in sources or []:
            self.add_source(source)

    def add_source(self, source: StartsSource) -> None:
        if source.source_id in self._sources:
            raise ValueError(f"duplicate source id: {source.source_id!r}")
        self._sources[source.source_id] = source

    def source(self, source_id: str) -> StartsSource:
        try:
            return self._sources[source_id]
        except KeyError:
            raise UnknownSourceError(
                f"resource {self.name!r} has no source {source_id!r}"
            ) from None

    def source_ids(self) -> list[str]:
        return sorted(self._sources)

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, source_id: str) -> bool:
        return source_id in self._sources

    # -- querying (Figure 1) -----------------------------------------------

    def search(self, source_id: str, query: SQuery) -> SQResults:
        """Evaluate ``query`` at ``source_id`` plus ``query.sources``.

        The query's ``Sources`` attribute names *additional* local
        sources.  Results are merged with duplicate elimination; the
        actual expressions reported are those of the entry source
        (per-source actual queries can be obtained by querying each
        source individually).

        Raises:
            UnknownSourceError: if any named source is absent.
        """
        entry = self.source(source_id)
        extra = [self.source(name) for name in query.sources if name != source_id]

        entry_result = entry.search(query)
        if not extra:
            return entry_result

        merged: dict[str, SQRDocument] = {}
        order: list[str] = []
        all_sources: list[str] = []
        for result in [entry_result, *(source.search(query) for source in extra)]:
            for name in result.sources:
                if name not in all_sources:
                    all_sources.append(name)
            for document in result.documents:
                existing = merged.get(document.linkage)
                if existing is None:
                    merged[document.linkage] = document
                    order.append(document.linkage)
                else:
                    merged[document.linkage] = _merge_duplicate(existing, document)

        documents = sorted(
            (merged[linkage] for linkage in order),
            key=lambda doc: -doc.raw_score,
        )
        documents = documents[: query.max_number_documents]
        return SQResults(
            sources=tuple(all_sources),
            actual_filter_expression=entry_result.actual_filter_expression,
            actual_ranking_expression=entry_result.actual_ranking_expression,
            documents=tuple(documents),
        )

    # -- metadata (Example 12) ------------------------------------------------

    def describe(self) -> SResource:
        """The SResource object: source list with metadata URLs."""
        return SResource(
            source_list=tuple(
                (source_id, f"{self._sources[source_id].base_url}/meta")
                for source_id in self.source_ids()
            )
        )

    def __repr__(self) -> str:
        return f"Resource({self.name!r}, sources={self.source_ids()})"


def _merge_duplicate(first: SQRDocument, second: SQRDocument) -> SQRDocument:
    """Collapse two copies of the same document into one entry.

    Keeps the richer field set and the higher raw score, and unions the
    ``Sources`` lists — exactly what lets a metasearcher see that a
    document appeared in several local sources.
    """
    better, other = (first, second) if first.raw_score >= second.raw_score else (second, first)
    sources = better.sources + tuple(
        name for name in other.sources if name not in better.sources
    )
    fields = dict(other.fields)
    fields.update(better.fields)
    return SQRDocument(
        linkage=better.linkage,
        raw_score=better.raw_score,
        sources=sources,
        fields=fields,
        term_stats=better.term_stats or other.term_stats,
        doc_size=better.doc_size,
        doc_count=better.doc_count,
    )
