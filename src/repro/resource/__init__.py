"""Resources: groups of sources behind one query entry point (Figure 1)."""

from repro.resource.resource import Resource

__all__ = ["Resource"]
