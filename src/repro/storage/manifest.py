"""The manifest: the one mutable word in an immutable store.

A segment store's directory holds immutable segment subdirectories
plus a single ``MANIFEST.json`` naming the live ones.  Readers only
ever trust what the manifest lists, so the commit protocol is the
classic crash-safe two-step:

1. write the new manifest to ``MANIFEST.json.tmp`` **in the same
   directory** and flush it to stable storage;
2. ``os.replace`` it over ``MANIFEST.json`` — atomic on POSIX and
   NTFS alike.

A crash before step 2 leaves the old manifest (and the old segment
set) fully intact; a crash after leaves the new one.  Orphan segment
directories a crash may strand are swept by the next successful
commit.  Every commit bumps a **generation counter**, which doubles as
the checkpoint cursor: a replica that warmed from generation *g* needs
only the work committed after *g*.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field as dataclass_field

from repro.storage.format import FORMAT_VERSION, SUPPORTED_VERSIONS, StorageError

__all__ = ["SegmentMeta", "Manifest", "MANIFEST_NAME", "read_manifest",
           "commit_manifest", "atomic_write_bytes", "atomic_write_text"]

MANIFEST_NAME = "MANIFEST.json"


def atomic_write_bytes(path: str | pathlib.Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via same-directory tmp + rename.

    The temp file is fsynced before the rename so a crash can never
    publish a name pointing at partially written blocks.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_text(path: str | pathlib.Path, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


@dataclass(frozen=True)
class SegmentMeta:
    """One live segment as the manifest records it."""

    name: str
    doc_base: int
    doc_count: int
    size_bytes: int

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "doc_base": self.doc_base,
            "doc_count": self.doc_count,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SegmentMeta":
        return cls(
            name=payload["name"],
            doc_base=payload["doc_base"],
            doc_count=payload["doc_count"],
            size_bytes=payload["size_bytes"],
        )


@dataclass
class Manifest:
    """The store's committed state: segments, tombstones, configuration.

    Attributes:
        generation: bumped by every commit; the replication/checkpoint
            cursor.
        next_segment_id: monotone counter naming new segments, never
            reused even across merges (so a stale reader can never
            confuse an old segment with a new one of the same name).
        segments: live segments, ascending by ``doc_base``.
        tombstones: sorted global doc ids deleted but not yet merged
            away.
        analyzer: the signature of the analyzer the index was built
            with (checked on open, as JSON persistence always did).
        ranking: the configured ranking ``algorithm_id`` (or None).
    """

    generation: int = 0
    next_segment_id: int = 0
    segments: list[SegmentMeta] = dataclass_field(default_factory=list)
    tombstones: list[int] = dataclass_field(default_factory=list)
    analyzer: dict | None = None
    ranking: str | None = None

    @property
    def document_ceiling(self) -> int:
        """One past the highest doc id any live segment covers."""
        ceiling = 0
        for segment in self.segments:
            ceiling = max(ceiling, segment.doc_base + segment.doc_count)
        return ceiling

    def total_bytes(self) -> int:
        return sum(segment.size_bytes for segment in self.segments)

    def to_json(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "generation": self.generation,
            "next_segment_id": self.next_segment_id,
            "segments": [segment.to_json() for segment in self.segments],
            "tombstones": list(self.tombstones),
            "analyzer": self.analyzer,
            "ranking": self.ranking,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Manifest":
        version = payload.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise StorageError(f"unsupported storage format version: {version}")
        return cls(
            generation=payload["generation"],
            next_segment_id=payload["next_segment_id"],
            segments=[SegmentMeta.from_json(s) for s in payload["segments"]],
            tombstones=list(payload.get("tombstones", ())),
            analyzer=payload.get("analyzer"),
            ranking=payload.get("ranking"),
        )


def read_manifest(directory: str | pathlib.Path) -> Manifest | None:
    """The committed manifest of ``directory``, or None if never committed."""
    path = pathlib.Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise StorageError(f"unreadable manifest at {path}: {error}") from error
    return Manifest.from_json(payload)


def commit_manifest(directory: str | pathlib.Path, manifest: Manifest) -> None:
    """Atomically publish ``manifest`` as the store's committed state."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        directory / MANIFEST_NAME, json.dumps(manifest.to_json(), indent=1)
    )
