"""Immutable segment storage for engines, summaries, and caches.

The on-disk counterpart of the in-memory engine: write-once segments
of packed columns (delta-encoded postings, term dictionaries, stored
fields) published under an atomically swapped manifest, read back
zero-copy through ``mmap``, and folded together by tiered background
merges.  :class:`SegmentedIndex` / :class:`SegmentedDocumentStore`
serve the exact in-memory contracts over (segments + mutable tail),
so a ``SearchEngine`` runs unchanged — and bit-identically — on
either backend.
"""

from repro.storage.format import (
    FORMAT_VERSION,
    StorageError,
    decode_posting_list,
    decode_string,
    decode_varint,
    encode_posting_list,
    encode_string,
    encode_varint,
)
from repro.storage.manifest import (
    MANIFEST_NAME,
    Manifest,
    SegmentMeta,
    atomic_write_bytes,
    atomic_write_text,
    commit_manifest,
    read_manifest,
)
from repro.storage.merge import TieredMergePolicy
from repro.storage.segment import SegmentReader, SegmentWriter
from repro.storage.segmented import SegmentedDocumentStore, SegmentedIndex
from repro.storage.store import SegmentStore

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "Manifest",
    "SegmentMeta",
    "SegmentReader",
    "SegmentStore",
    "SegmentWriter",
    "SegmentedDocumentStore",
    "SegmentedIndex",
    "StorageError",
    "TieredMergePolicy",
    "atomic_write_bytes",
    "atomic_write_text",
    "commit_manifest",
    "decode_posting_list",
    "decode_string",
    "decode_varint",
    "encode_posting_list",
    "encode_string",
    "encode_varint",
    "read_manifest",
]
