"""Segment-backed views satisfying the in-memory engine contracts.

:class:`SegmentedIndex` subclasses :class:`InvertedIndex` and keeps
the inherited dict-of-postings structures as its **mutable tail**:
``add_field_tokens`` lands there unchanged, while every read composes
(committed segments, in doc-base order) + (tail).  Because segments
cover disjoint ascending doc-id ranges and the tail sits above them
all, concatenating per-segment posting lists reproduces exactly the
doc-id-ordered lists the in-memory index serves — term-at-a-time
evaluation, the term matcher, prox merging and summary export all run
bit-identically on either backend (``storage="memory"`` stays the
oracle).

:class:`SegmentedDocumentStore` is the same composition for stored
fields: token counts and linkages are loaded eagerly (two small
columns), documents decode lazily from the docs mmap with a bounded
memo, so a warmed engine answers its first query without ever reading
the bulk of the store.

Reads memoize against two counters: the index's own mutation
generation (the tail moved) and the store's commit ``epoch`` (the
segment layout moved).  Flushes and merges change the layout but not
the content, so only layout-keyed memos (decoded postings,
vocabularies) refresh; tombstone commits bump the *content* epoch,
which feeds the inherited ``generation`` so term-matcher expansion
memos invalidate exactly as they do for in-memory mutation.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right

from repro.engine.documents import Document, DocumentStore
from repro.engine.index import (
    IndexSnapshot,
    InvertedIndex,
    Posting,
    SummaryEntry,
)
from repro.storage.format import StorageError
from repro.storage.store import SegmentStore
from repro.text.soundex import soundex as soundex_code

__all__ = ["SegmentedIndex", "SegmentedDocumentStore"]


class _SegmentedTermAccessor:
    """Pruned-evaluation access to one term across segments + tail.

    The pruned driver's contract (df / max tf / min length metadata,
    point probes, per-document block bounds) routed by doc-id range:
    committed ids resolve through each segment's
    :class:`~repro.storage.segment.TermHandle` (block-max column, no
    full decode), tail ids bisect the mutable posting list.  ``tf_map``
    intentionally reuses the index's merged-and-memoized decode — an
    essential pass walks everything anyway, and sharing the memo keeps
    repeated queries cheap.
    """

    __slots__ = (
        "_index", "_field", "_term", "_handles", "_bases", "_tail",
        "_tail_ids", "_tail_floor", "_live", "df", "max_tf", "min_len",
        "doc_weight", "has_blocks",
    )

    def __init__(self, index: "SegmentedIndex", field: str, term: str) -> None:
        self._index = index
        self._field = field
        self._term = term
        store = index._segment_store
        live = store.live if store.tombstones else None
        self._live = live
        handles: list[tuple[int, int, object]] = []
        for reader in store.readers:
            handle = reader.term_handle(field, term)
            if handle is not None:
                handles.append((reader.doc_base, reader.doc_ceiling, handle))
        self._handles = handles
        self._bases = [base for base, _, _ in handles]
        tail = list(index._postings.get(field, {}).get(term, ()))
        self._tail = tail
        self._tail_ids: list[int] | None = None
        self._tail_floor = tail[0].doc_id if tail else None
        self.doc_weight = None
        df = len(tail)
        max_tf = InvertedIndex.max_term_frequency(index, field, term)
        handle_mins: list[int] = []
        blind = False
        for _, _, handle in handles:
            df += handle.document_count(live)
            tf = handle.max_term_frequency()
            if tf > max_tf:
                max_tf = tf
            handle_min = handle.min_doc_length()
            if handle_min is None:
                # version-1 segment: no block column, no length bound.
                blind = True
            else:
                handle_mins.append(handle_min)
        self.df = df
        self.max_tf = max_tf
        # The term-level length bound is the min over every source of
        # the term's documents.  A non-empty tail has no cheap per-doc
        # length column (nor does a v1 segment), so its presence drops
        # the bound to None — the driver then falls back to the
        # store-wide minimum, which is looser but still valid.
        if tail or blind or not handle_mins:
            self.min_len = None
        else:
            self.min_len = min(handle_mins)
        self.has_blocks = any(
            handle.blocks is not None for _, _, handle in handles
        )

    def tf_map(self) -> dict[int, int]:
        return {
            posting.doc_id: posting.term_frequency
            for posting in self._index.postings(self._field, self._term)
        }

    def _route(self, doc_id: int):
        """The (ceiling, handle) covering ``doc_id``, or None."""
        position = bisect_right(self._bases, doc_id) - 1
        if position >= 0:
            _, ceiling, handle = self._handles[position]
            if doc_id < ceiling:
                return handle
        return None

    def probe(self, doc_id: int) -> int:
        live = self._live
        if live is not None and not live(doc_id):
            return 0
        handle = self._route(doc_id)
        if handle is not None:
            return handle.probe(doc_id)
        tail_ids = self._tail_ids
        if tail_ids is None:
            tail_ids = self._tail_ids = [p.doc_id for p in self._tail]
        slot = bisect_left(tail_ids, doc_id)
        if slot < len(tail_ids) and tail_ids[slot] == doc_id:
            return self._tail[slot].term_frequency
        return 0

    def block_bound(self, doc_id: int) -> tuple[int, int] | None:
        if self._tail_floor is not None and doc_id >= self._tail_floor:
            return None
        handle = self._route(doc_id)
        if handle is not None:
            return handle.block_bound(doc_id)
        # No segment of this term covers the id and it is below the
        # tail: the term cannot match it, which (0, 0) encodes exactly.
        return (0, 0)

#: Decoded-document memo bound (entries, not bytes); cleared wholesale
#: when full, like the term-matcher's expansion memo.
_DOC_MEMO_LIMIT = 4096


class SegmentedIndex(InvertedIndex):
    """segments + mutable tail, behind the ``InvertedIndex`` surface."""

    def __init__(self, store: SegmentStore) -> None:
        super().__init__()
        self._segment_store = store
        # doc ids continue above everything already committed.
        self._doc_count = store.document_ceiling
        # (field, term) -> merged postings; keyed by (generation, epoch).
        self._merged_postings: dict[tuple[str, str], list[Posting]] = {}
        self._merged_key: tuple[int, int] | None = None
        self._vocab_memo: dict[str, list[str]] = {}
        self._vocab_key: tuple[int, int] | None = None
        self._suffix_memo: dict[str, list[str]] = {}
        self._soundex_memo: dict[str, dict[str, set[str]]] = {}
        self._summary_memo: (
            tuple[tuple[int, int], list[tuple[str, str, dict[str, SummaryEntry]]]]
            | None
        ) = None

    # -- generations -------------------------------------------------------

    @property
    def generation(self) -> int:
        """Mutation counter covering the tail *and* committed content."""
        return self._generation + self._segment_store.content_epoch

    def _layout_key(self) -> tuple[int, int]:
        return (self.generation, self._segment_store.epoch)

    # -- tail flushing -----------------------------------------------------

    def tail_snapshot(self) -> IndexSnapshot:
        """The mutable tail alone, in snapshot form (for the writer)."""
        return InvertedIndex.snapshot(self)

    def absorb_flush(self) -> None:
        """Drop the tail after the store committed it as a segment.

        The committed segment now serves exactly what the tail held,
        so observable content is unchanged; only layout memos refresh
        (via the store epoch bumped by the commit).
        """
        self._postings.clear()
        self._max_tf.clear()
        self._summary.clear()
        self._summary_last_doc.clear()
        self._sorted_vocab.clear()
        self._sorted_vocab_dirty.clear()
        self._reversed_vocab.clear()
        self._reversed_vocab_dirty.clear()
        self._soundex.clear()
        self._soundex_dirty.clear()

    # -- reads: postings ---------------------------------------------------

    def _memo_postings(self) -> dict[tuple[str, str], list[Posting]]:
        key = self._layout_key()
        if self._merged_key != key:
            self._merged_postings = {}
            self._merged_key = key
        return self._merged_postings

    def postings(self, field: str, term: str) -> list[Posting]:
        memo = self._memo_postings()
        cache_key = (field, term)
        merged = memo.get(cache_key)
        if merged is None:
            store = self._segment_store
            live = store.live if store.tombstones else None
            merged = []
            for reader in store.readers:
                merged.extend(reader.postings(field, term, live))
            merged.extend(self._postings.get(field, {}).get(term, ()))
            if len(memo) >= 65536:
                memo.clear()
            memo[cache_key] = merged
        return merged

    def max_term_frequency(self, field: str, term: str) -> int:
        """Max per-document tf across committed segments and the tail.

        Tombstones may leave this stale-high (the maximal document was
        deleted); that direction only loosens upper bounds, never
        invalidates them.
        """
        best = super().max_term_frequency(field, term)
        for reader in self._segment_store.readers:
            handle = reader.term_handle(field, term)
            if handle is not None:
                tf = handle.max_term_frequency()
                if tf > best:
                    best = tf
        return best

    def pruned_postings(self, field: str, term: str) -> _SegmentedTermAccessor:
        """Block-aware probe access for the pruned evaluation driver."""
        return _SegmentedTermAccessor(self, field, term)

    # -- reads: vocabulary and fields --------------------------------------

    def fields(self) -> list[str]:
        names: set[str] = set(self._postings)
        for reader in self._segment_store.readers:
            names.update(reader.fields())
        return sorted(names)

    def vocabulary(self, field: str) -> list[str]:
        key = self._layout_key()
        if self._vocab_key != key:
            self._vocab_memo = {}
            self._suffix_memo = {}
            self._soundex_memo = {}
            self._vocab_key = key
        vocab = self._vocab_memo.get(field)
        if vocab is None:
            tail = sorted(self._postings.get(field, {}))
            lists = [
                reader.vocabulary(field) for reader in self._segment_store.readers
            ]
            lists.append(tail)
            vocab = []
            previous = None
            for term in heapq.merge(*lists):
                if term != previous:
                    vocab.append(term)
                    previous = term
            self._vocab_memo[field] = vocab
        return vocab

    def terms_with_suffix(self, field: str, suffix: str) -> list[str]:
        reversed_vocab = self._suffix_memo.get(field)
        if reversed_vocab is None or self._vocab_key != self._layout_key():
            reversed_vocab = sorted(term[::-1] for term in self.vocabulary(field))
            self._suffix_memo[field] = reversed_vocab
        target = suffix[::-1]
        matches: list[str] = []
        start = bisect_left(reversed_vocab, target)
        for reversed_term in reversed_vocab[start:]:
            if not reversed_term.startswith(target):
                break
            matches.append(reversed_term[::-1])
        matches.sort()
        return matches

    def terms_with_soundex(self, field: str, word: str) -> list[str]:
        codes = self._soundex_memo.get(field)
        if codes is None or self._vocab_key != self._layout_key():
            codes = {}
            for term in self.vocabulary(field):
                codes.setdefault(soundex_code(term), set()).add(term)
            self._soundex_memo[field] = codes
        return sorted(codes.get(soundex_code(word), ()))

    # -- reads: counts and summaries ---------------------------------------

    @property
    def document_count(self) -> int:
        return max(self._doc_count, self._segment_store.document_ceiling)

    def summary_sections(self) -> list[tuple[str, str, dict[str, SummaryEntry]]]:
        key = self._layout_key()
        memo = self._summary_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        merged: dict[tuple[str, str], dict[str, SummaryEntry]] = {}
        for reader in self._segment_store.readers:
            for field, language, words in reader.summary_sections():
                bucket = merged.setdefault((field, language), {})
                for word, entry in words.items():
                    aggregate = bucket.setdefault(word, SummaryEntry())
                    aggregate.postings += entry.postings
                    aggregate.document_frequency += entry.document_frequency
        for (field, language), words in self._summary.items():
            bucket = merged.setdefault((field, language), {})
            for word, entry in words.items():
                aggregate = bucket.setdefault(word, SummaryEntry())
                aggregate.postings += entry.postings
                aggregate.document_frequency += entry.document_frequency
        sections = [
            (field, language, words)
            for (field, language), words in sorted(merged.items())
        ]
        self._summary_memo = (key, sections)
        return sections

    def summary_vocabulary_size(self) -> int:
        return sum(len(words) for _, _, words in self.summary_sections())

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> IndexSnapshot:
        """The *merged* view (segments + tail), materialized."""
        postings: dict[str, dict[str, list[Posting]]] = {}
        for field in self.fields():
            terms: dict[str, list[Posting]] = {}
            for term in self.vocabulary(field):
                plist = self.postings(field, term)
                if plist:
                    terms[term] = list(plist)
            if terms:
                postings[field] = terms
        return IndexSnapshot(
            postings=postings,
            summary=[
                (
                    field,
                    language,
                    {
                        word: SummaryEntry(entry.postings, entry.document_frequency)
                        for word, entry in words.items()
                    },
                )
                for field, language, words in self.summary_sections()
            ],
            document_count=self.document_count,
        )

    def restore(self, snapshot: IndexSnapshot) -> None:
        if self._segment_store.readers:
            raise StorageError(
                "restore() into a segmented index requires an empty store"
            )
        super().restore(snapshot)


class SegmentedDocumentStore(DocumentStore):
    """segments + mutable tail, behind the ``DocumentStore`` surface."""

    def __init__(self, store: SegmentStore) -> None:
        super().__init__()
        self._segment_store = store
        self._tail_base = store.document_ceiling
        self._doc_memo: dict[int, Document] = {}
        # Eager small columns: linkage -> id and token counts across
        # every segment.  Token counts sit on the ranking hot path (one
        # lookup per scored posting), so they must not pay a per-call
        # segment bisect.
        self._segment_counts: dict[int, int] = {}
        total = 0
        for reader in store.readers:
            for slot, (doc_id, linkage) in enumerate(
                zip(reader.doc_ids(), reader.linkages())
            ):
                if store.live(doc_id):
                    self._by_linkage.setdefault(linkage, doc_id)
                    count = reader.token_count_at(slot)
                    self._segment_counts[doc_id] = count
                    total += count
        self._segment_token_total = total

    # -- tail flushing -----------------------------------------------------

    def tail_rows(self) -> list[tuple[int, Document, int]]:
        """(global id, document, token count) rows awaiting a flush."""
        return [
            (self._tail_base + offset, document, self._token_counts[offset])
            for offset, document in enumerate(self._documents)
        ]

    def absorb_flush(self) -> None:
        """Drop the tail after the store committed it as a segment."""
        for offset, count in enumerate(self._token_counts):
            self._segment_counts[self._tail_base + offset] = count
        self._segment_token_total += self._token_total
        self._token_total = 0
        self._tail_base += len(self._documents)
        self._documents.clear()
        self._token_counts.clear()

    # -- writes ------------------------------------------------------------

    def add(self, document: Document, token_count: int = 0) -> int:
        doc_id = self._tail_base + len(self._documents)
        self._documents.append(document)
        self._token_counts.append(token_count)
        self._token_total += token_count
        self._by_linkage.setdefault(document.linkage, doc_id)
        self._min_token_memo = None
        return doc_id

    def set_token_count(self, doc_id: int, token_count: int) -> None:
        offset = doc_id - self._tail_base
        if offset < 0:
            raise StorageError("cannot reset the token count of a committed document")
        self._token_total += token_count - self._token_counts[offset]
        self._token_counts[offset] = token_count
        self._min_token_memo = None

    def note_tombstones(self, doc_ids) -> None:
        """Adjust linkage/statistics for freshly tombstoned doc ids."""
        self._min_token_memo = None
        for doc_id in doc_ids:
            reader, slot = self._locate(doc_id)
            if reader is None:
                continue
            self._segment_token_total -= reader.token_count_at(slot)
            self._segment_counts.pop(doc_id, None)
            document = self._doc_memo.get(doc_id)
            if document is None:
                document = reader.document_at(slot)
            if self._by_linkage.get(document.linkage) == doc_id:
                del self._by_linkage[document.linkage]
            self._doc_memo.pop(doc_id, None)

    # -- reads -------------------------------------------------------------

    def _locate(self, doc_id: int):
        readers = self._segment_store.readers
        bases = [reader.doc_base for reader in readers]
        position = bisect_right(bases, doc_id) - 1
        if position < 0:
            return None, None
        reader = readers[position]
        slot = reader.slot_of(doc_id)
        if slot is None:
            return None, None
        return reader, slot

    def __len__(self) -> int:
        return self._segment_store.live_doc_count() + len(self._documents)

    def __getitem__(self, doc_id: int) -> Document:
        offset = doc_id - self._tail_base
        if offset >= 0:
            return self._documents[offset]
        memo = self._doc_memo
        document = memo.get(doc_id)
        if document is None:
            reader, slot = self._locate(doc_id)
            if reader is None or not self._segment_store.live(doc_id):
                raise IndexError(f"no live document with id {doc_id}")
            document = reader.document_at(slot)
            if len(memo) >= _DOC_MEMO_LIMIT:
                memo.clear()
            memo[doc_id] = document
        return document

    def __iter__(self):
        for doc_id in self.ids():
            yield self[doc_id]

    def ids(self) -> list[int]:  # type: ignore[override]
        store = self._segment_store
        live: list[int] = []
        for reader in store.readers:
            if store.tombstones:
                live.extend(
                    doc_id for doc_id in reader.doc_ids() if store.live(doc_id)
                )
            else:
                live.extend(reader.doc_ids())
        live.extend(range(self._tail_base, self._tail_base + len(self._documents)))
        return live

    def token_count(self, doc_id: int) -> int:
        offset = doc_id - self._tail_base
        if offset >= 0:
            return self._token_counts[offset]
        count = self._segment_counts.get(doc_id)
        if count is not None:
            return count
        # not in the eager column: tombstoned, or not covered at all
        reader, slot = self._locate(doc_id)
        if reader is None:
            raise IndexError(f"no live document with id {doc_id}")
        return reader.token_count_at(slot)

    def by_linkage(self, linkage: str) -> int | None:
        return self._by_linkage.get(linkage)

    def linkages(self):
        return self._by_linkage.keys()

    def average_token_count(self) -> float:
        live = len(self)
        if not live:
            return 0.0
        return (self._segment_token_total + self._token_total) / live

    def min_token_count(self) -> int:
        """Smallest live token count across segments and the tail.

        Memoized like the in-memory store's; writes and tombstone
        commits invalidate.  Used only as a conservative length floor
        for pruning upper bounds.
        """
        if self._min_token_memo is None:
            candidates = [
                minimum
                for minimum in (
                    min(self._segment_counts.values(), default=None),
                    min(self._token_counts, default=None),
                )
                if minimum is not None
            ]
            self._min_token_memo = min(candidates) if candidates else 0
        return self._min_token_memo
