"""One immutable segment: write-once files, mmap-backed reads.

A segment is a directory of flat files covering a contiguous batch of
documents:

==================  ======================================================
``postings.bin``    delta-encoded posting blocks, one per (field, term)
``lexicon.bin``     per field: sorted terms with block offsets
``summary.bin``     (field, language) → word → (postings, df) columns
``docs.bin``        stored documents (linkage, language, fields)
``linkages.bin``    the linkage column alone (fast by-linkage warming)
``docs.idx``        ``array('q')`` offsets into ``docs.bin``
``ids.bin``         ``array('q')`` global doc ids, ascending
``counts.bin``      ``array('q')`` per-document token counts
``segment.json``    header: name, doc span, format version, file sizes
==================  ======================================================

:class:`SegmentWriter` writes a segment exactly once.
:class:`SegmentReader` maps ``postings.bin`` and ``docs.bin`` into the
address space and decodes on demand: opening a reader touches only the
header and the three small integer columns, so a store with gigabytes
of postings is "open" in milliseconds and pays for a posting list or a
stored document only when a query first asks for it.
"""

from __future__ import annotations

import json
import mmap
import pathlib
from array import array
from bisect import bisect_left

from repro.engine.documents import Document
from repro.engine.index import Posting, SummaryEntry
from repro.storage.format import (
    FORMAT_VERSION,
    StorageError,
    decode_posting_list,
    decode_string,
    decode_varint,
    encode_posting_list,
    encode_string,
    encode_varint,
)
from repro.storage.manifest import SegmentMeta, atomic_write_text

__all__ = ["SegmentWriter", "SegmentReader"]

_FILES = (
    "postings.bin",
    "lexicon.bin",
    "summary.bin",
    "docs.bin",
    "linkages.bin",
    "docs.idx",
    "ids.bin",
    "counts.bin",
)


class SegmentWriter:
    """Writes one immutable segment directory.

    Args:
        directory: the segment directory to create (parent must exist;
            the directory itself must not — segments are write-once).
        name: the manifest name of the segment (``seg-000042``).
    """

    def __init__(self, directory: str | pathlib.Path, name: str) -> None:
        self.directory = pathlib.Path(directory)
        self.name = name
        if self.directory.exists():
            raise StorageError(f"segment directory already exists: {self.directory}")

    def write(
        self,
        documents: list[tuple[int, Document, int]],
        postings: dict[str, dict[str, list[Posting]]],
        summary: list[tuple[str, str, dict[str, SummaryEntry]]],
    ) -> SegmentMeta:
        """Write the segment; returns its manifest entry.

        Args:
            documents: ``(global doc id, document, token count)`` rows,
                ascending by id.
            postings: ``field → term → postings`` with global doc ids
                (each list doc-id ascending).
            summary: ``(field, language, word → stats)`` sections.
        """
        if not documents:
            raise StorageError("refusing to write an empty segment")
        self.directory.mkdir()

        ids = array("q", (doc_id for doc_id, _, _ in documents))
        if any(ids[i] >= ids[i + 1] for i in range(len(ids) - 1)):
            raise StorageError("segment documents must ascend by doc id")
        counts = array("q", (count for _, _, count in documents))

        docs_blob = bytearray()
        linkages_blob = bytearray()
        offsets = array("q")
        for _, document, _ in documents:
            offsets.append(len(docs_blob))
            encode_string(docs_blob, document.linkage)
            encode_string(docs_blob, document.language)
            fields = dict(document.fields)
            encode_varint(docs_blob, len(fields))
            for field_name, value in fields.items():
                encode_string(docs_blob, field_name)
                encode_string(docs_blob, value)
            encode_string(linkages_blob, document.linkage)

        postings_blob = bytearray()
        lexicon_blob = bytearray()
        encode_varint(lexicon_blob, len(postings))
        for field_name in sorted(postings):
            terms = postings[field_name]
            encode_string(lexicon_blob, field_name)
            encode_varint(lexicon_blob, len(terms))
            for term in sorted(terms):
                encode_string(lexicon_blob, term)
                encode_varint(lexicon_blob, len(postings_blob))
                encode_posting_list(postings_blob, terms[term])

        summary_blob = bytearray()
        encode_varint(summary_blob, len(summary))
        for field_name, language, words in sorted(
            summary, key=lambda section: (section[0], section[1])
        ):
            encode_string(summary_blob, field_name)
            encode_string(summary_blob, language)
            encode_varint(summary_blob, len(words))
            for word in sorted(words):
                entry = words[word]
                encode_string(summary_blob, word)
                encode_varint(summary_blob, entry.postings)
                encode_varint(summary_blob, entry.document_frequency)

        payloads = {
            "postings.bin": bytes(postings_blob),
            "lexicon.bin": bytes(lexicon_blob),
            "summary.bin": bytes(summary_blob),
            "docs.bin": bytes(docs_blob),
            "linkages.bin": bytes(linkages_blob),
            "docs.idx": offsets.tobytes(),
            "ids.bin": ids.tobytes(),
            "counts.bin": counts.tobytes(),
        }
        for file_name, payload in payloads.items():
            (self.directory / file_name).write_bytes(payload)

        size_bytes = sum(len(payload) for payload in payloads.values())
        header = {
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "doc_base": ids[0],
            "doc_count": len(ids),
            "size_bytes": size_bytes,
            "files": {name: len(payload) for name, payload in payloads.items()},
        }
        atomic_write_text(self.directory / "segment.json", json.dumps(header, indent=1))
        return SegmentMeta(
            name=self.name,
            doc_base=ids[0],
            doc_count=len(ids),
            size_bytes=size_bytes,
        )


class SegmentReader:
    """Zero-copy reads over one committed segment.

    ``postings.bin`` and ``docs.bin`` are memory-mapped; the lexicon
    and summary columns are parsed lazily on first use.  Readers are
    safe to share between threads for reads (all state after lazy
    initialization is immutable) and hold their mmaps until
    :meth:`close`.
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        header_path = self.directory / "segment.json"
        try:
            header = json.loads(header_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(
                f"unreadable segment header at {header_path}: {error}"
            ) from error
        if header.get("format_version") != FORMAT_VERSION:
            raise StorageError(
                f"unsupported segment format version in {header_path}"
            )
        self.name: str = header["name"]
        self.doc_base: int = header["doc_base"]
        self.doc_count: int = header["doc_count"]
        self.size_bytes: int = header["size_bytes"]
        for file_name in _FILES:
            if not (self.directory / file_name).exists():
                raise StorageError(f"segment {self.name} is missing {file_name}")

        self._postings_map = self._map("postings.bin")
        self._docs_map = self._map("docs.bin")
        self._ids = array("q")
        self._ids.frombytes((self.directory / "ids.bin").read_bytes())
        self._counts = array("q")
        self._counts.frombytes((self.directory / "counts.bin").read_bytes())
        self._offsets = array("q")
        self._offsets.frombytes((self.directory / "docs.idx").read_bytes())
        if not (len(self._ids) == len(self._counts) == len(self._offsets)):
            raise StorageError(f"segment {self.name} has torn document columns")

        # Lazily parsed: field → {term → postings offset} and the
        # sorted vocabulary per field; summary sections.
        self._lexicon: dict[str, dict[str, int]] | None = None
        self._vocab: dict[str, list[str]] | None = None
        self._summary: list[tuple[str, str, dict[str, SummaryEntry]]] | None = None

    def _map(self, file_name: str):
        path = self.directory / file_name
        with open(path, "rb") as handle:
            if path.stat().st_size == 0:
                return b""
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)

    def close(self) -> None:
        for buf in (self._postings_map, self._docs_map):
            if isinstance(buf, mmap.mmap):
                buf.close()

    # -- lexicon and postings ---------------------------------------------

    def _load_lexicon(self) -> dict[str, dict[str, int]]:
        if self._lexicon is None:
            buf = (self.directory / "lexicon.bin").read_bytes()
            lexicon: dict[str, dict[str, int]] = {}
            vocab: dict[str, list[str]] = {}
            pos = 0
            n_fields, pos = decode_varint(buf, pos)
            for _ in range(n_fields):
                field_name, pos = decode_string(buf, pos)
                n_terms, pos = decode_varint(buf, pos)
                offsets: dict[str, int] = {}
                terms: list[str] = []
                for _ in range(n_terms):
                    term, pos = decode_string(buf, pos)
                    offset, pos = decode_varint(buf, pos)
                    offsets[term] = offset
                    terms.append(term)
                lexicon[field_name] = offsets
                vocab[field_name] = terms  # written sorted
            self._lexicon = lexicon
            self._vocab = vocab
        return self._lexicon

    def fields(self) -> list[str]:
        return sorted(self._load_lexicon())

    def vocabulary(self, field: str) -> list[str]:
        self._load_lexicon()
        assert self._vocab is not None
        return self._vocab.get(field, [])

    def postings(self, field: str, term: str, live=None) -> list[Posting]:
        """Decode one term's postings; empty when absent.

        ``live`` filters tombstoned doc ids during the decode, so a
        deleted document never surfaces even before a merge rewrites
        the segment.
        """
        offset = self._load_lexicon().get(field, {}).get(term)
        if offset is None:
            return []
        return decode_posting_list(self._postings_map, offset, live)

    # -- summary columns ----------------------------------------------------

    def summary_sections(self) -> list[tuple[str, str, dict[str, SummaryEntry]]]:
        if self._summary is None:
            buf = (self.directory / "summary.bin").read_bytes()
            sections: list[tuple[str, str, dict[str, SummaryEntry]]] = []
            pos = 0
            n_sections, pos = decode_varint(buf, pos)
            for _ in range(n_sections):
                field_name, pos = decode_string(buf, pos)
                language, pos = decode_string(buf, pos)
                n_words, pos = decode_varint(buf, pos)
                words: dict[str, SummaryEntry] = {}
                for _ in range(n_words):
                    word, pos = decode_string(buf, pos)
                    postings, pos = decode_varint(buf, pos)
                    document_frequency, pos = decode_varint(buf, pos)
                    words[word] = SummaryEntry(postings, document_frequency)
                sections.append((field_name, language, words))
            self._summary = sections
        return self._summary

    # -- documents ----------------------------------------------------------

    @property
    def doc_ceiling(self) -> int:
        """One past the highest global doc id this segment covers."""
        return self._ids[-1] + 1 if len(self._ids) else self.doc_base

    def doc_ids(self) -> array:
        return self._ids

    def slot_of(self, doc_id: int) -> int | None:
        """The local slot of a global doc id, or None if not covered."""
        slot = bisect_left(self._ids, doc_id)
        if slot < len(self._ids) and self._ids[slot] == doc_id:
            return slot
        return None

    def token_count_at(self, slot: int) -> int:
        return self._counts[slot]

    def document_at(self, slot: int) -> Document:
        buf = self._docs_map
        pos = self._offsets[slot]
        linkage, pos = decode_string(buf, pos)
        language, pos = decode_string(buf, pos)
        n_fields, pos = decode_varint(buf, pos)
        fields: dict[str, str] = {}
        for _ in range(n_fields):
            name, pos = decode_string(buf, pos)
            value, pos = decode_string(buf, pos)
            fields[name] = value
        return Document(linkage, fields, language)

    def linkages(self) -> list[str]:
        """The linkage column, decoded without touching stored fields."""
        buf = (self.directory / "linkages.bin").read_bytes()
        pos = 0
        linkages: list[str] = []
        for _ in range(len(self._ids)):
            linkage, pos = decode_string(buf, pos)
            linkages.append(linkage)
        return linkages
