"""One immutable segment: write-once files, mmap-backed reads.

A segment is a directory of flat files covering a contiguous batch of
documents:

==================  ======================================================
``postings.bin``    delta-encoded posting blocks, one per (field, term)
``lexicon.bin``     per field: sorted terms with block offsets
``blockmax.bin``    per term: per-block (last doc id, offset, doc count,
                    max tf, min doc length) for block-skipping (v2+)
``summary.bin``     (field, language) → word → (postings, df) columns
``docs.bin``        stored documents (linkage, language, fields)
``linkages.bin``    the linkage column alone (fast by-linkage warming)
``docs.idx``        ``array('q')`` offsets into ``docs.bin``
``ids.bin``         ``array('q')`` global doc ids, ascending
``counts.bin``      ``array('q')`` per-document token counts
``segment.json``    header: name, doc span, format version, file sizes
==================  ======================================================

:class:`SegmentWriter` writes a segment exactly once.
:class:`SegmentReader` maps ``postings.bin`` and ``docs.bin`` into the
address space and decodes on demand: opening a reader touches only the
header and the three small integer columns, so a store with gigabytes
of postings is "open" in milliseconds and pays for a posting list or a
stored document only when a query first asks for it.
"""

from __future__ import annotations

import json
import mmap
import pathlib
from array import array
from bisect import bisect_left

from repro.engine.documents import Document
from repro.engine.index import Posting, SummaryEntry
from repro.storage.format import (
    FORMAT_VERSION,
    POSTINGS_BLOCK_SIZE,
    SUPPORTED_VERSIONS,
    StorageError,
    count_posting_list,
    decode_posting_list,
    decode_string,
    decode_varint,
    encode_posting_list,
    encode_string,
    encode_varint,
    scan_posting_block,
)
from repro.storage.manifest import SegmentMeta, atomic_write_text

__all__ = ["SegmentWriter", "SegmentReader", "TermBlocks", "TermHandle"]

_FILES = (
    "postings.bin",
    "lexicon.bin",
    "summary.bin",
    "docs.bin",
    "linkages.bin",
    "docs.idx",
    "ids.bin",
    "counts.bin",
)

#: Files added by format version 2; their absence marks an old segment.
_V2_FILES = ("blockmax.bin",)


class SegmentWriter:
    """Writes one immutable segment directory.

    Args:
        directory: the segment directory to create (parent must exist;
            the directory itself must not — segments are write-once).
        name: the manifest name of the segment (``seg-000042``).
    """

    def __init__(self, directory: str | pathlib.Path, name: str) -> None:
        self.directory = pathlib.Path(directory)
        self.name = name
        if self.directory.exists():
            raise StorageError(f"segment directory already exists: {self.directory}")

    def write(
        self,
        documents: list[tuple[int, Document, int]],
        postings: dict[str, dict[str, list[Posting]]],
        summary: list[tuple[str, str, dict[str, SummaryEntry]]],
    ) -> SegmentMeta:
        """Write the segment; returns its manifest entry.

        Args:
            documents: ``(global doc id, document, token count)`` rows,
                ascending by id.
            postings: ``field → term → postings`` with global doc ids
                (each list doc-id ascending).
            summary: ``(field, language, word → stats)`` sections.
        """
        if not documents:
            raise StorageError("refusing to write an empty segment")
        self.directory.mkdir()

        ids = array("q", (doc_id for doc_id, _, _ in documents))
        if any(ids[i] >= ids[i + 1] for i in range(len(ids) - 1)):
            raise StorageError("segment documents must ascend by doc id")
        counts = array("q", (count for _, _, count in documents))

        docs_blob = bytearray()
        linkages_blob = bytearray()
        offsets = array("q")
        for _, document, _ in documents:
            offsets.append(len(docs_blob))
            encode_string(docs_blob, document.linkage)
            encode_string(docs_blob, document.language)
            fields = dict(document.fields)
            encode_varint(docs_blob, len(fields))
            for field_name, value in fields.items():
                encode_string(docs_blob, field_name)
                encode_string(docs_blob, value)
            encode_string(linkages_blob, document.linkage)

        # The block-max column rides along with the postings encode:
        # per term, per POSTINGS_BLOCK_SIZE-doc block, the block's last
        # doc id, byte offset (relative to the term's posting list),
        # document count, max term frequency and min document length —
        # everything a reader needs to bound a block's best possible
        # score and to decode just that block.  All five sequences are
        # encoded as varints (ids and offsets delta'd, both ascending).
        count_of = dict(zip(ids, counts))
        postings_blob = bytearray()
        lexicon_blob = bytearray()
        blockmax_blob = bytearray()
        encode_varint(lexicon_blob, len(postings))
        encode_varint(blockmax_blob, len(postings))
        for field_name in sorted(postings):
            terms = postings[field_name]
            encode_string(lexicon_blob, field_name)
            encode_varint(lexicon_blob, len(terms))
            encode_string(blockmax_blob, field_name)
            encode_varint(blockmax_blob, len(terms))
            for term in sorted(terms):
                plist = terms[term]
                encode_string(lexicon_blob, term)
                encode_varint(lexicon_blob, len(postings_blob))
                blocks: list[tuple[int, int, int]] = []
                encode_posting_list(postings_blob, plist, blocks)
                encode_varint(blockmax_blob, len(blocks))
                previous_last = 0
                previous_start = 0
                for number, (last_doc, start, n_in_block) in enumerate(blocks):
                    chunk = plist[
                        number * POSTINGS_BLOCK_SIZE : number * POSTINGS_BLOCK_SIZE
                        + n_in_block
                    ]
                    encode_varint(blockmax_blob, last_doc - previous_last)
                    encode_varint(blockmax_blob, start - previous_start)
                    encode_varint(blockmax_blob, n_in_block)
                    encode_varint(
                        blockmax_blob,
                        max(posting.term_frequency for posting in chunk),
                    )
                    encode_varint(
                        blockmax_blob,
                        min(count_of[posting.doc_id] for posting in chunk),
                    )
                    previous_last = last_doc
                    previous_start = start

        summary_blob = bytearray()
        encode_varint(summary_blob, len(summary))
        for field_name, language, words in sorted(
            summary, key=lambda section: (section[0], section[1])
        ):
            encode_string(summary_blob, field_name)
            encode_string(summary_blob, language)
            encode_varint(summary_blob, len(words))
            for word in sorted(words):
                entry = words[word]
                encode_string(summary_blob, word)
                encode_varint(summary_blob, entry.postings)
                encode_varint(summary_blob, entry.document_frequency)

        payloads = {
            "postings.bin": bytes(postings_blob),
            "lexicon.bin": bytes(lexicon_blob),
            "blockmax.bin": bytes(blockmax_blob),
            "summary.bin": bytes(summary_blob),
            "docs.bin": bytes(docs_blob),
            "linkages.bin": bytes(linkages_blob),
            "docs.idx": offsets.tobytes(),
            "ids.bin": ids.tobytes(),
            "counts.bin": counts.tobytes(),
        }
        for file_name, payload in payloads.items():
            (self.directory / file_name).write_bytes(payload)

        size_bytes = sum(len(payload) for payload in payloads.values())
        header = {
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "doc_base": ids[0],
            "doc_count": len(ids),
            "size_bytes": size_bytes,
            "files": {name: len(payload) for name, payload in payloads.items()},
        }
        atomic_write_text(self.directory / "segment.json", json.dumps(header, indent=1))
        return SegmentMeta(
            name=self.name,
            doc_base=ids[0],
            doc_count=len(ids),
            size_bytes=size_bytes,
        )


class TermBlocks:
    """One term's block-max metadata: five parallel ascending columns."""

    __slots__ = ("last_ids", "starts", "counts", "max_tfs", "min_lens")

    def __init__(self) -> None:
        self.last_ids: list[int] = []
        self.starts: list[int] = []
        self.counts: list[int] = []
        self.max_tfs: list[int] = []
        self.min_lens: list[int] = []

    def __len__(self) -> int:
        return len(self.last_ids)


class TermHandle:
    """Block-level access to one term's postings in one segment.

    Built per query by the segmented pruned-postings accessor; holds the
    term's posting-list offset and (for v2 segments) its block-max
    column, and decodes **single blocks** on demand — skipping position
    deltas — so probing one document touches at most one block's bytes.
    Old (v1) segments fall back to scanning the whole list once and
    answering probes from that memo: correct, just without the skip.
    """

    __slots__ = ("_buf", "_offset", "blocks", "_block_memo", "_full_memo")

    def __init__(self, buf, offset: int, blocks: TermBlocks | None) -> None:
        self._buf = buf
        self._offset = offset
        self.blocks = blocks
        # block number -> (doc ids, tfs); lives as long as the handle
        # (one query), so tombstone churn can never make it stale.
        self._block_memo: dict[int, tuple[list[int], list[int]]] = {}
        self._full_memo: tuple[list[int], list[int]] | None = None

    def _full_scan(self) -> tuple[list[int], list[int]]:
        if self._full_memo is None:
            n_docs, pos = decode_varint(self._buf, self._offset)
            self._full_memo = scan_posting_block(self._buf, pos, n_docs, 0)
        return self._full_memo

    def document_count(self, live=None) -> int:
        """Exact df contribution of this segment (live-filtered)."""
        if live is None and self.blocks is not None:
            return sum(self.blocks.counts)
        return count_posting_list(self._buf, self._offset, live)

    def max_term_frequency(self) -> int:
        blocks = self.blocks
        if blocks is not None:
            return max(blocks.max_tfs, default=0)
        _, tfs = self._full_scan()
        return max(tfs, default=0)

    def min_doc_length(self) -> int | None:
        """Smallest doc length among this term's postings, if recorded."""
        blocks = self.blocks
        if blocks is not None and len(blocks):
            return min(blocks.min_lens)
        return None

    def block_bound(self, doc_id: int) -> tuple[int, int] | None:
        """(max tf, min doc length) of the block covering ``doc_id``.

        Returns ``(0, 0)`` when no block can contain the document (the
        term has no postings at or above it) and None when the segment
        predates the block-max column.
        """
        blocks = self.blocks
        if blocks is None:
            return None
        number = bisect_left(blocks.last_ids, doc_id)
        if number >= len(blocks.last_ids):
            return (0, 0)
        return (blocks.max_tfs[number], blocks.min_lens[number])

    def probe(self, doc_id: int) -> int:
        """Term frequency of ``doc_id`` (0 if absent), one block decoded."""
        blocks = self.blocks
        if blocks is None:
            doc_ids, tfs = self._full_scan()
        else:
            number = bisect_left(blocks.last_ids, doc_id)
            if number >= len(blocks.last_ids):
                return 0
            entry = self._block_memo.get(number)
            if entry is None:
                entry = scan_posting_block(
                    self._buf,
                    self._offset + blocks.starts[number],
                    blocks.counts[number],
                    blocks.last_ids[number - 1] if number else 0,
                )
                self._block_memo[number] = entry
            doc_ids, tfs = entry
        slot = bisect_left(doc_ids, doc_id)
        if slot < len(doc_ids) and doc_ids[slot] == doc_id:
            return tfs[slot]
        return 0


class SegmentReader:
    """Zero-copy reads over one committed segment.

    ``postings.bin`` and ``docs.bin`` are memory-mapped; the lexicon
    and summary columns are parsed lazily on first use.  Readers are
    safe to share between threads for reads (all state after lazy
    initialization is immutable) and hold their mmaps until
    :meth:`close`.
    """

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        header_path = self.directory / "segment.json"
        try:
            header = json.loads(header_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(
                f"unreadable segment header at {header_path}: {error}"
            ) from error
        if header.get("format_version") not in SUPPORTED_VERSIONS:
            raise StorageError(
                f"unsupported segment format version in {header_path}"
            )
        self.format_version: int = header["format_version"]
        self.name: str = header["name"]
        self.doc_base: int = header["doc_base"]
        self.doc_count: int = header["doc_count"]
        self.size_bytes: int = header["size_bytes"]
        required = _FILES + (_V2_FILES if self.format_version >= 2 else ())
        for file_name in required:
            if not (self.directory / file_name).exists():
                raise StorageError(f"segment {self.name} is missing {file_name}")

        self._postings_map = self._map("postings.bin")
        self._docs_map = self._map("docs.bin")
        self._ids = array("q")
        self._ids.frombytes((self.directory / "ids.bin").read_bytes())
        self._counts = array("q")
        self._counts.frombytes((self.directory / "counts.bin").read_bytes())
        self._offsets = array("q")
        self._offsets.frombytes((self.directory / "docs.idx").read_bytes())
        if not (len(self._ids) == len(self._counts) == len(self._offsets)):
            raise StorageError(f"segment {self.name} has torn document columns")

        # Lazily parsed: field → {term → postings offset} and the
        # sorted vocabulary per field; summary sections; the block-max
        # column (v2 segments only).
        self._lexicon: dict[str, dict[str, int]] | None = None
        self._vocab: dict[str, list[str]] | None = None
        self._summary: list[tuple[str, str, dict[str, SummaryEntry]]] | None = None
        self._blockmax: dict[str, dict[str, "TermBlocks"]] | None = None

    def _map(self, file_name: str):
        path = self.directory / file_name
        with open(path, "rb") as handle:
            if path.stat().st_size == 0:
                return b""
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)

    def close(self) -> None:
        for buf in (self._postings_map, self._docs_map):
            if isinstance(buf, mmap.mmap):
                buf.close()

    # -- lexicon and postings ---------------------------------------------

    def _load_lexicon(self) -> dict[str, dict[str, int]]:
        if self._lexicon is None:
            buf = (self.directory / "lexicon.bin").read_bytes()
            lexicon: dict[str, dict[str, int]] = {}
            vocab: dict[str, list[str]] = {}
            pos = 0
            n_fields, pos = decode_varint(buf, pos)
            for _ in range(n_fields):
                field_name, pos = decode_string(buf, pos)
                n_terms, pos = decode_varint(buf, pos)
                offsets: dict[str, int] = {}
                terms: list[str] = []
                for _ in range(n_terms):
                    term, pos = decode_string(buf, pos)
                    offset, pos = decode_varint(buf, pos)
                    offsets[term] = offset
                    terms.append(term)
                lexicon[field_name] = offsets
                vocab[field_name] = terms  # written sorted
            self._lexicon = lexicon
            self._vocab = vocab
        return self._lexicon

    def fields(self) -> list[str]:
        return sorted(self._load_lexicon())

    def vocabulary(self, field: str) -> list[str]:
        self._load_lexicon()
        assert self._vocab is not None
        return self._vocab.get(field, [])

    def postings(self, field: str, term: str, live=None) -> list[Posting]:
        """Decode one term's postings; empty when absent.

        ``live`` filters tombstoned doc ids during the decode, so a
        deleted document never surfaces even before a merge rewrites
        the segment.
        """
        offset = self._load_lexicon().get(field, {}).get(term)
        if offset is None:
            return []
        return decode_posting_list(self._postings_map, offset, live)

    def _load_blockmax(self) -> dict[str, dict[str, TermBlocks]]:
        """Parse ``blockmax.bin`` (v2 segments; empty mapping for v1).

        Terms are not repeated in the column — entries align with the
        lexicon's sorted term order per field, so the parse walks both
        in lockstep.
        """
        if self._blockmax is None:
            if self.format_version < 2:
                self._blockmax = {}
                return self._blockmax
            self._load_lexicon()
            assert self._vocab is not None
            buf = (self.directory / "blockmax.bin").read_bytes()
            parsed: dict[str, dict[str, TermBlocks]] = {}
            pos = 0
            n_fields, pos = decode_varint(buf, pos)
            for _ in range(n_fields):
                field_name, pos = decode_string(buf, pos)
                n_terms, pos = decode_varint(buf, pos)
                terms = self._vocab.get(field_name, [])
                if len(terms) != n_terms:
                    raise StorageError(
                        f"segment {self.name}: blockmax/lexicon term count "
                        f"mismatch in field {field_name!r}"
                    )
                by_term: dict[str, TermBlocks] = {}
                for term in terms:
                    blocks = TermBlocks()
                    n_blocks, pos = decode_varint(buf, pos)
                    last_id = 0
                    start = 0
                    for _ in range(n_blocks):
                        delta, pos = decode_varint(buf, pos)
                        last_id += delta
                        step, pos = decode_varint(buf, pos)
                        start += step
                        count, pos = decode_varint(buf, pos)
                        max_tf, pos = decode_varint(buf, pos)
                        min_len, pos = decode_varint(buf, pos)
                        blocks.last_ids.append(last_id)
                        blocks.starts.append(start)
                        blocks.counts.append(count)
                        blocks.max_tfs.append(max_tf)
                        blocks.min_lens.append(min_len)
                    by_term[term] = blocks
                parsed[field_name] = by_term
            self._blockmax = parsed
        return self._blockmax

    def term_handle(self, field: str, term: str) -> TermHandle | None:
        """Block-level access to one term, or None when absent."""
        offset = self._load_lexicon().get(field, {}).get(term)
        if offset is None:
            return None
        blocks = self._load_blockmax().get(field, {}).get(term)
        return TermHandle(self._postings_map, offset, blocks)

    # -- summary columns ----------------------------------------------------

    def summary_sections(self) -> list[tuple[str, str, dict[str, SummaryEntry]]]:
        if self._summary is None:
            buf = (self.directory / "summary.bin").read_bytes()
            sections: list[tuple[str, str, dict[str, SummaryEntry]]] = []
            pos = 0
            n_sections, pos = decode_varint(buf, pos)
            for _ in range(n_sections):
                field_name, pos = decode_string(buf, pos)
                language, pos = decode_string(buf, pos)
                n_words, pos = decode_varint(buf, pos)
                words: dict[str, SummaryEntry] = {}
                for _ in range(n_words):
                    word, pos = decode_string(buf, pos)
                    postings, pos = decode_varint(buf, pos)
                    document_frequency, pos = decode_varint(buf, pos)
                    words[word] = SummaryEntry(postings, document_frequency)
                sections.append((field_name, language, words))
            self._summary = sections
        return self._summary

    # -- documents ----------------------------------------------------------

    @property
    def doc_ceiling(self) -> int:
        """One past the highest global doc id this segment covers."""
        return self._ids[-1] + 1 if len(self._ids) else self.doc_base

    def doc_ids(self) -> array:
        return self._ids

    def slot_of(self, doc_id: int) -> int | None:
        """The local slot of a global doc id, or None if not covered."""
        slot = bisect_left(self._ids, doc_id)
        if slot < len(self._ids) and self._ids[slot] == doc_id:
            return slot
        return None

    def token_count_at(self, slot: int) -> int:
        return self._counts[slot]

    def document_at(self, slot: int) -> Document:
        buf = self._docs_map
        pos = self._offsets[slot]
        linkage, pos = decode_string(buf, pos)
        language, pos = decode_string(buf, pos)
        n_fields, pos = decode_varint(buf, pos)
        fields: dict[str, str] = {}
        for _ in range(n_fields):
            name, pos = decode_string(buf, pos)
            value, pos = decode_string(buf, pos)
            fields[name] = value
        return Document(linkage, fields, language)

    def linkages(self) -> list[str]:
        """The linkage column, decoded without touching stored fields."""
        buf = (self.directory / "linkages.bin").read_bytes()
        pos = 0
        linkages: list[str] = []
        for _ in range(len(self._ids)):
            linkage, pos = decode_string(buf, pos)
            linkages.append(linkage)
        return linkages
