"""Byte-level codecs for the immutable segment format.

Everything a segment persists — posting lists, term dictionaries,
summary columns, stored documents — is built from three primitives:

* **varints** — LEB128 unsigned integers, the universal length and
  delta encoding;
* **delta-encoded monotone sequences** — document ids within a posting
  list and positions within a posting are strictly/weakly increasing,
  so consecutive differences stay small and varint-friendly;
* **length-prefixed UTF-8 strings** — terms, field names, linkages,
  stored field values.

Encoders append into a caller-supplied ``bytearray`` (one allocation
per file, not per value); decoders read from any buffer supporting
``__getitem__`` — including an ``mmap.mmap``, which is how segment
readers decode straight from the page cache without copying the file
into the heap first.
"""

from __future__ import annotations

from repro.engine.index import Posting

__all__ = [
    "FORMAT_VERSION",
    "StorageError",
    "encode_varint",
    "decode_varint",
    "encode_string",
    "decode_string",
    "encode_posting_list",
    "decode_posting_list",
    "count_posting_list",
]

#: Version stamped into every segment header and manifest.
FORMAT_VERSION = 1


class StorageError(Exception):
    """Raised on corrupt, incompatible, or misused on-disk state."""


# -- varints ---------------------------------------------------------------


def encode_varint(out: bytearray, value: int) -> None:
    """Append ``value`` (>= 0) to ``out`` as a LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(buf, pos: int) -> tuple[int, int]:
    """Decode one varint at ``pos``; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# -- strings ---------------------------------------------------------------


def encode_string(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    encode_varint(out, len(raw))
    out += raw


def decode_string(buf, pos: int) -> tuple[str, int]:
    length, pos = decode_varint(buf, pos)
    raw = bytes(buf[pos : pos + length])
    return raw.decode("utf-8"), pos + length


# -- posting lists ---------------------------------------------------------
#
# One term's postings in one segment:
#
#   varint n_docs
#   n_docs × [ varint doc_delta, varint n_positions,
#              varint pos_0, varint pos_delta... ]
#
# ``doc_delta`` is the gap to the previous document id (the first is
# absolute); positions are weakly increasing so their deltas are >= 0.


def encode_posting_list(out: bytearray, postings: list[Posting]) -> None:
    """Append one term's postings (doc-id ascending) to ``out``."""
    encode_varint(out, len(postings))
    previous_doc = 0
    first = True
    for posting in postings:
        doc_id = posting.doc_id
        encode_varint(out, doc_id if first else doc_id - previous_doc)
        first = False
        previous_doc = doc_id
        positions = posting.positions
        encode_varint(out, len(positions))
        previous_pos = 0
        for position in positions:
            encode_varint(out, position - previous_pos)
            previous_pos = position


def decode_posting_list(buf, pos: int, live=None) -> list[Posting]:
    """Decode one posting block starting at ``pos``.

    Args:
        buf: any byte buffer (typically the segment's postings mmap).
        pos: offset of the block's ``n_docs`` varint.
        live: optional ``doc_id -> bool`` predicate; postings of
            documents it rejects (tombstoned ids) are skipped.
    """
    n_docs, pos = decode_varint(buf, pos)
    postings: list[Posting] = []
    doc_id = 0
    for _ in range(n_docs):
        delta, pos = decode_varint(buf, pos)
        doc_id += delta
        n_positions, pos = decode_varint(buf, pos)
        position = 0
        positions: list[int] = []
        for _ in range(n_positions):
            step, pos = decode_varint(buf, pos)
            position += step
            positions.append(position)
        if live is None or live(doc_id):
            postings.append(Posting(doc_id, tuple(positions)))
    return postings


def count_posting_list(buf, pos: int, live=None) -> int:
    """Document count of a posting block without materializing it."""
    n_docs, pos = decode_varint(buf, pos)
    if live is None:
        return n_docs
    count = 0
    doc_id = 0
    for _ in range(n_docs):
        delta, pos = decode_varint(buf, pos)
        doc_id += delta
        n_positions, pos = decode_varint(buf, pos)
        for _ in range(n_positions):
            _, pos = decode_varint(buf, pos)
        if live(doc_id):
            count += 1
    return count
