"""Byte-level codecs for the immutable segment format.

Everything a segment persists — posting lists, term dictionaries,
summary columns, stored documents — is built from three primitives:

* **varints** — LEB128 unsigned integers, the universal length and
  delta encoding;
* **delta-encoded monotone sequences** — document ids within a posting
  list and positions within a posting are strictly/weakly increasing,
  so consecutive differences stay small and varint-friendly;
* **length-prefixed UTF-8 strings** — terms, field names, linkages,
  stored field values.

Encoders append into a caller-supplied ``bytearray`` (one allocation
per file, not per value); decoders read from any buffer supporting
``__getitem__`` — including an ``mmap.mmap``, which is how segment
readers decode straight from the page cache without copying the file
into the heap first.
"""

from __future__ import annotations

from repro.engine.index import Posting

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "POSTINGS_BLOCK_SIZE",
    "StorageError",
    "encode_varint",
    "decode_varint",
    "encode_string",
    "decode_string",
    "encode_posting_list",
    "decode_posting_list",
    "count_posting_list",
    "scan_posting_block",
]

#: Version stamped into every segment header and manifest.  Version 2
#: added the ``blockmax.bin`` sidecar column; ``postings.bin`` itself is
#: byte-identical across both versions.
FORMAT_VERSION = 2

#: Versions a reader accepts: version-1 directories (no block-max
#: column) still open, they just cannot skip postings blocks.
SUPPORTED_VERSIONS = (1, 2)

#: Documents per posting block in the block-max column.  Small enough
#: that skipping a block saves real decode work, large enough that the
#: sidecar stays a sliver of the postings file.
POSTINGS_BLOCK_SIZE = 128


class StorageError(Exception):
    """Raised on corrupt, incompatible, or misused on-disk state."""


# -- varints ---------------------------------------------------------------


def encode_varint(out: bytearray, value: int) -> None:
    """Append ``value`` (>= 0) to ``out`` as a LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(buf, pos: int) -> tuple[int, int]:
    """Decode one varint at ``pos``; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# -- strings ---------------------------------------------------------------


def encode_string(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    encode_varint(out, len(raw))
    out += raw


def decode_string(buf, pos: int) -> tuple[str, int]:
    length, pos = decode_varint(buf, pos)
    raw = bytes(buf[pos : pos + length])
    return raw.decode("utf-8"), pos + length


# -- posting lists ---------------------------------------------------------
#
# One term's postings in one segment:
#
#   varint n_docs
#   n_docs × [ varint doc_delta, varint n_positions,
#              varint pos_0, varint pos_delta... ]
#
# ``doc_delta`` is the gap to the previous document id (the first is
# absolute); positions are weakly increasing so their deltas are >= 0.


def encode_posting_list(
    out: bytearray, postings: list[Posting], blocks: list | None = None
) -> None:
    """Append one term's postings (doc-id ascending) to ``out``.

    When ``blocks`` is a list, one ``(last_doc_id, start_offset,
    n_docs)`` triple is appended per :data:`POSTINGS_BLOCK_SIZE`-doc
    block, with ``start_offset`` relative to the list's first byte in
    ``out`` (the ``n_docs`` varint).  The encoded bytes are identical
    with or without block collection — blocks are a pure overlay, which
    is what keeps ``postings.bin`` byte-compatible with version 1.
    """
    base = len(out)
    encode_varint(out, len(postings))
    previous_doc = 0
    first = True
    block_start = len(out) - base
    block_first_slot = 0
    for slot, posting in enumerate(postings):
        if blocks is not None and slot and slot % POSTINGS_BLOCK_SIZE == 0:
            blocks.append((previous_doc, block_start, slot - block_first_slot))
            block_start = len(out) - base
            block_first_slot = slot
        doc_id = posting.doc_id
        encode_varint(out, doc_id if first else doc_id - previous_doc)
        first = False
        previous_doc = doc_id
        positions = posting.positions
        encode_varint(out, len(positions))
        previous_pos = 0
        for position in positions:
            encode_varint(out, position - previous_pos)
            previous_pos = position
    if blocks is not None and postings:
        blocks.append(
            (previous_doc, block_start, len(postings) - block_first_slot)
        )


def decode_posting_list(buf, pos: int, live=None) -> list[Posting]:
    """Decode one posting block starting at ``pos``.

    Args:
        buf: any byte buffer (typically the segment's postings mmap).
        pos: offset of the block's ``n_docs`` varint.
        live: optional ``doc_id -> bool`` predicate; postings of
            documents it rejects (tombstoned ids) are skipped.
    """
    n_docs, pos = decode_varint(buf, pos)
    postings: list[Posting] = []
    doc_id = 0
    for _ in range(n_docs):
        delta, pos = decode_varint(buf, pos)
        doc_id += delta
        n_positions, pos = decode_varint(buf, pos)
        position = 0
        positions: list[int] = []
        for _ in range(n_positions):
            step, pos = decode_varint(buf, pos)
            position += step
            positions.append(position)
        if live is None or live(doc_id):
            postings.append(Posting(doc_id, tuple(positions)))
    return postings


def scan_posting_block(
    buf, pos: int, n_docs: int, previous_doc: int
) -> tuple[list[int], list[int]]:
    """(doc ids, term frequencies) of one block, skipping positions.

    Args:
        buf: the postings buffer.
        pos: absolute offset of the block's first doc delta (a term
            offset plus a block's relative ``start_offset``).
        n_docs: documents in the block (from the block-max column).
        previous_doc: last doc id of the preceding block (0 for the
            first block — the encoding makes the first doc id of a list
            a delta from 0).

    Positions are varint-skipped, not materialized: a probe needs only
    (doc id, tf), and that is the saving block-level access exists for.
    """
    doc_ids: list[int] = []
    tfs: list[int] = []
    doc_id = previous_doc
    for _ in range(n_docs):
        delta, pos = decode_varint(buf, pos)
        doc_id += delta
        n_positions, pos = decode_varint(buf, pos)
        for _ in range(n_positions):
            _, pos = decode_varint(buf, pos)
        doc_ids.append(doc_id)
        tfs.append(n_positions)
    return doc_ids, tfs


def count_posting_list(buf, pos: int, live=None) -> int:
    """Document count of a posting block without materializing it."""
    n_docs, pos = decode_varint(buf, pos)
    if live is None:
        return n_docs
    count = 0
    doc_id = 0
    for _ in range(n_docs):
        delta, pos = decode_varint(buf, pos)
        doc_id += delta
        n_positions, pos = decode_varint(buf, pos)
        for _ in range(n_positions):
            _, pos = decode_varint(buf, pos)
        if live(doc_id):
            count += 1
    return count
