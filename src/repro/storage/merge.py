"""Tiered background-merge policy for immutable segments.

Every flush appends one small segment, so an engine that only ever
flushed would degrade reads to an O(segments) concatenation per term.
Merging fixes that the way log-structured stores do: group segments of
similar size into **tiers** (powers of ``merge_factor`` by document
count) and, whenever a tier accumulates ``merge_factor`` *adjacent*
members, rewrite them as one segment of the next tier up.  Restricting
groups to adjacent runs (by ``doc_base``) keeps every segment's doc-id
range disjoint and ascending, which is what lets readers concatenate
per-segment posting lists without a sort.

The policy is pure planning — it never touches disk — so it can be
unit-tested exhaustively and swapped per store.  Execution (decode,
filter tombstones, rewrite, atomic manifest swap) lives in
:class:`repro.storage.store.SegmentStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.manifest import SegmentMeta

__all__ = ["TieredMergePolicy"]


@dataclass(frozen=True)
class TieredMergePolicy:
    """Plans merges of adjacent same-tier segment runs.

    Attributes:
        merge_factor: how many same-tier neighbours trigger a merge
            (and the growth ratio between tiers).
        max_merge_docs: never plan a merge whose output would exceed
            this many documents (caps merge cost; 0 disables the cap).
    """

    merge_factor: int = 4
    max_merge_docs: int = 0

    def __post_init__(self) -> None:
        if self.merge_factor < 2:
            raise ValueError("merge_factor must be >= 2")

    def tier_of(self, meta: SegmentMeta) -> int:
        """The size tier of a segment: floor(log_factor(doc_count))."""
        tier = 0
        count = max(1, meta.doc_count)
        while count >= self.merge_factor:
            count //= self.merge_factor
            tier += 1
        return tier

    def plan(self, segments: list[SegmentMeta]) -> list[SegmentMeta] | None:
        """The next group to merge, or None when the store is compact.

        ``segments`` must ascend by ``doc_base`` (the manifest order).
        The lowest-tier run wins so small flush segments are folded up
        before large rewrites are considered.
        """
        best: list[SegmentMeta] | None = None
        best_tier: int | None = None
        run: list[SegmentMeta] = []
        run_tier: int | None = None
        for meta in segments:
            tier = self.tier_of(meta)
            if tier != run_tier:
                run, run_tier = [], tier
            run.append(meta)
            if len(run) >= self.merge_factor:
                group = run[: self.merge_factor]
                total = sum(member.doc_count for member in group)
                if self.max_merge_docs and total > self.max_merge_docs:
                    run, run_tier = [], None
                    continue
                if best_tier is None or tier < best_tier:
                    best, best_tier = group, tier
                run, run_tier = [], None
        return best
