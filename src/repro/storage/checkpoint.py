"""Checkpoint/restore for summary indexes and cache tiers.

The engine's documents and postings checkpoint through the segment
store; this module covers the *other* state a warm restart needs:

* :class:`~repro.metasearch.summary_index.SummaryIndex` — saved as its
  packed term-shard columns (raw ``array('q')`` bytes), source columns
  and exact corpus statistics, plus the original summaries as a SOIF
  stream.  The index's **generation counter rides along as the
  checkpoint cursor**: a leaf broker that checkpoints also records its
  delta-log position, so a restored leaf replays only the log *tail*
  written after the checkpoint instead of the whole history.
* :class:`~repro.cache.core.LruTtlCache` (and the tiers wrapping it) —
  entries pickled in LRU order.  Stored-at times are translated to
  **ages** on save and re-anchored to the restoring process's clock on
  load, because the monotonic clock restarts with the process; an
  entry with 40s of TTL left keeps 40s of TTL left.

Every save/load lands in the ``checkpoint_save_ms`` /
``checkpoint_load_ms`` histograms, labelled by kind.
"""

from __future__ import annotations

import pathlib
import pickle
import time
from array import array

from repro.cache.core import CacheEntry, LruTtlCache
from repro.metasearch.summary_index import SummaryIndex, _TermShard
from repro.observability.metrics import get_registry
from repro.starts.metadata import SContentSummary
from repro.starts.soif import dump_soif, parse_soif_stream
from repro.storage.format import (
    FORMAT_VERSION,
    StorageError,
    decode_string,
    decode_varint,
    encode_string,
    encode_varint,
)
from repro.storage.manifest import atomic_write_bytes

__all__ = [
    "save_summary_index",
    "load_summary_index",
    "save_leaf_checkpoint",
    "load_leaf_checkpoint",
    "save_cache",
    "load_cache",
]

_SUMMARY_MAGIC = b"RSIX"
_LEAF_MAGIC = b"RLFC"
_CACHE_MAGIC = b"RCCK"


def _observe(name: str, kind: str, started: float) -> None:
    get_registry().histogram(
        name,
        "Wall-clock time of checkpoint save/load operations.",
        labels=("kind",),
    ).labels(kind=kind).observe((time.perf_counter() - started) * 1000.0)


# -- summary index ---------------------------------------------------------


def _index_blob(index: SummaryIndex) -> bytearray:
    """``index`` serialized as its exact packed columns (no framing)."""
    blob = bytearray()
    encode_varint(blob, index.generation)
    encode_varint(blob, index._clamped_mass_total)

    source_ids = index._source_ids
    encode_varint(blob, len(source_ids))
    for ordinal, source_id in enumerate(source_ids):
        if source_id is None:
            blob.append(0)
            continue
        blob.append(1)
        encode_string(blob, source_id)
        encode_varint(blob, index._num_docs[ordinal])
        encode_varint(blob, index._word_mass[ordinal])
        blob.append(1 if index._case_sensitive[ordinal] else 0)
    encode_varint(blob, len(index._free))
    for ordinal in index._free:
        encode_varint(blob, ordinal)

    shards = index._shards
    encode_varint(blob, len(shards))
    for word, shard in shards.items():
        encode_string(blob, word)
        encode_varint(blob, shard.df_positive)
        encode_varint(blob, len(shard.ordinals))
        blob += shard.ordinals.tobytes()
        blob += shard.document_frequencies.tobytes()
        blob += shard.postings.tobytes()

    summaries = index._summaries
    encode_varint(blob, len(summaries))
    for source_id in summaries:
        encode_string(blob, source_id)
    soif = dump_soif(
        [summaries[source_id].to_soif() for source_id in summaries]
    ).encode("utf-8")
    encode_varint(blob, len(soif))
    blob += soif
    return blob


def _index_from_blob(buf: bytes, pos: int) -> tuple[SummaryIndex, int]:
    """The inverse of :func:`_index_blob`; returns (index, next pos)."""
    index = SummaryIndex()
    generation, pos = decode_varint(buf, pos)
    index._clamped_mass_total, pos = decode_varint(buf, pos)

    n_ordinals, pos = decode_varint(buf, pos)
    for ordinal in range(n_ordinals):
        live = buf[pos]
        pos += 1
        if not live:
            index._source_ids.append(None)
            index._num_docs.append(0)
            index._word_mass.append(0)
            index._case_sensitive.append(False)
            index._source_terms.append(())
            continue
        source_id, pos = decode_string(buf, pos)
        num_docs, pos = decode_varint(buf, pos)
        word_mass, pos = decode_varint(buf, pos)
        case_sensitive = bool(buf[pos])
        pos += 1
        index._source_ids.append(source_id)
        index._num_docs.append(num_docs)
        index._word_mass.append(word_mass)
        index._case_sensitive.append(case_sensitive)
        index._source_terms.append(())
        index._ordinal_of[source_id] = ordinal
    n_free, pos = decode_varint(buf, pos)
    for _ in range(n_free):
        ordinal, pos = decode_varint(buf, pos)
        index._free.append(ordinal)

    item_size = array("q").itemsize
    terms_of: dict[int, list[str]] = {}
    n_shards, pos = decode_varint(buf, pos)
    for _ in range(n_shards):
        word, pos = decode_string(buf, pos)
        shard = _TermShard()
        shard.df_positive, pos = decode_varint(buf, pos)
        length, pos = decode_varint(buf, pos)
        span = length * item_size
        for column in (shard.ordinals, shard.document_frequencies, shard.postings):
            column.frombytes(buf[pos : pos + span])
            pos += span
        shard.positions = {
            ordinal: slot for slot, ordinal in enumerate(shard.ordinals)
        }
        index._shards[word] = shard
        for ordinal in shard.ordinals:
            terms_of.setdefault(ordinal, []).append(word)
    for ordinal, words in terms_of.items():
        index._source_terms[ordinal] = tuple(words)

    n_summaries, pos = decode_varint(buf, pos)
    order: list[str] = []
    for _ in range(n_summaries):
        source_id, pos = decode_string(buf, pos)
        order.append(source_id)
    soif_len, pos = decode_varint(buf, pos)
    objects = parse_soif_stream(buf[pos : pos + soif_len])
    pos += soif_len
    if len(objects) != n_summaries:
        raise StorageError("summary checkpoint is torn: SOIF count mismatch")
    for source_id, obj in zip(order, objects):
        index._summaries[source_id] = SContentSummary.from_soif(obj)

    index.generation = generation
    return index, pos


def save_summary_index(index: SummaryIndex, path: str | pathlib.Path) -> int:
    """Checkpoint ``index`` to ``path`` (atomic); returns its generation.

    The file captures the exact internal columns — shard slot order,
    ordinal assignments, the free list, the integer corpus totals — so
    the restored index is *bit-identical* to the saved one: every
    selector score, sparse or dense-oracle, comes out the same floats.
    """
    started = time.perf_counter()
    blob = bytearray()
    blob += _SUMMARY_MAGIC
    encode_varint(blob, FORMAT_VERSION)
    blob += _index_blob(index)
    atomic_write_bytes(pathlib.Path(path), bytes(blob))
    _observe("checkpoint_save_ms", "summary_index", started)
    return index.generation


def load_summary_index(path: str | pathlib.Path) -> SummaryIndex:
    """Rebuild a checkpointed :class:`SummaryIndex`, bit-identically."""
    started = time.perf_counter()
    buf = pathlib.Path(path).read_bytes()
    if buf[:4] != _SUMMARY_MAGIC:
        raise StorageError(f"not a summary-index checkpoint: {path}")
    pos = 4
    version, pos = decode_varint(buf, pos)
    if version != FORMAT_VERSION:
        raise StorageError(f"unsupported checkpoint version: {version}")
    index, _ = _index_from_blob(buf, pos)
    _observe("checkpoint_load_ms", "summary_index", started)
    return index


# -- leaf brokers ----------------------------------------------------------


def save_leaf_checkpoint(broker, path: str | pathlib.Path) -> int:
    """Checkpoint a :class:`~repro.broker.leaf.LeafBroker`'s shard.

    Records the broker's **delta-log position** alongside its primary
    index, so a restart only replays the deltas logged after this
    point (see :func:`load_leaf_checkpoint`).  Returns that position.
    """
    started = time.perf_counter()
    log_position = len(broker._log)
    blob = bytearray()
    blob += _LEAF_MAGIC
    encode_varint(blob, FORMAT_VERSION)
    encode_string(blob, broker.leaf_id)
    encode_varint(blob, log_position)
    blob += _index_blob(broker.index)
    atomic_write_bytes(pathlib.Path(path), bytes(blob))
    _observe("checkpoint_save_ms", "leaf", started)
    return log_position


def load_leaf_checkpoint(path: str | pathlib.Path, eager_replication: bool = False):
    """Warm a fresh leaf broker from a checkpoint.

    Both the primary and the standby start from the checkpointed index
    (two independent copies), the delta log starts empty, and the
    broker's ``restored_log_position`` says how much of the upstream
    delta stream the checkpoint already covers — the caller replays
    only ``deltas[restored_log_position:]`` through
    :meth:`~repro.broker.leaf.LeafBroker.apply_delta` to catch up,
    never the whole history.
    """
    from repro.broker.leaf import LeafBroker

    started = time.perf_counter()
    buf = pathlib.Path(path).read_bytes()
    if buf[:4] != _LEAF_MAGIC:
        raise StorageError(f"not a leaf checkpoint: {path}")
    pos = 4
    version, pos = decode_varint(buf, pos)
    if version != FORMAT_VERSION:
        raise StorageError(f"unsupported checkpoint version: {version}")
    leaf_id, pos = decode_string(buf, pos)
    log_position, pos = decode_varint(buf, pos)
    primary, _ = _index_from_blob(buf, pos)
    standby, _ = _index_from_blob(buf, pos)

    broker = LeafBroker(leaf_id, eager_replication=eager_replication)
    broker.index = primary
    broker._standby = standby
    broker._standby_applied = 0
    broker.restored_log_position = log_position
    _observe("checkpoint_load_ms", "leaf", started)
    return broker


# -- cache tiers -----------------------------------------------------------


def save_cache(cache: LruTtlCache, path: str | pathlib.Path) -> int:
    """Checkpoint a cache's live entries (atomic); returns the count.

    Entries are written in LRU order (least recent first) so a restore
    reproduces the eviction order exactly.  ``stored_at_ms`` is saved
    as an *age* relative to the cache's clock at save time — monotonic
    clocks do not survive a process, remaining TTL does.
    """
    started = time.perf_counter()
    with cache._lock:
        now = cache._clock()
        rows = [
            (
                entry.key,
                pickle.dumps(entry.value, protocol=pickle.HIGHEST_PROTOCOL),
                now - entry.stored_at_ms,
                entry.ttl_ms,
                entry.size,
                entry.cost,
                sorted(entry.tags),
            )
            for entry in cache._entries.values()
        ]
    payload = _CACHE_MAGIC + pickle.dumps(
        {"version": FORMAT_VERSION, "rows": rows},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    atomic_write_bytes(pathlib.Path(path), payload)
    _observe("checkpoint_save_ms", "cache", started)
    return len(rows)


def load_cache(cache: LruTtlCache, path: str | pathlib.Path) -> int:
    """Restore checkpointed entries into an *empty* ``cache``.

    Each entry's remaining TTL is preserved: its saved age is
    subtracted from the restoring cache's current clock, so an entry
    that had 40s of freshness left still has 40s left (entries already
    expired at save time restore as already expired and fall out on
    first read).  Returns how many entries were restored.

    Raises:
        StorageError: if the file is not a cache checkpoint or the
            cache already holds entries.
    """
    started = time.perf_counter()
    buf = pathlib.Path(path).read_bytes()
    if buf[:4] != _CACHE_MAGIC:
        raise StorageError(f"not a cache checkpoint: {path}")
    payload = pickle.loads(buf[4:])
    if payload.get("version") != FORMAT_VERSION:
        raise StorageError(f"unsupported checkpoint version: {payload.get('version')}")
    if len(cache):
        raise StorageError("load_cache needs an empty cache")
    with cache._lock:
        now = cache._clock()
        for key, value_blob, age_ms, ttl_ms, size, cost, tags in payload["rows"]:
            entry = CacheEntry(
                key,
                pickle.loads(value_blob),
                stored_at_ms=now - age_ms,
                ttl_ms=ttl_ms,
                size=size,
                cost=cost,
                tags=frozenset(tags),
            )
            cache._entries[key] = entry
            cache._size += entry.size
    _observe("checkpoint_load_ms", "cache", started)
    return len(payload["rows"])
