"""The segment store: committed segments + the commit protocol.

A :class:`SegmentStore` owns one directory: the committed manifest,
one :class:`~repro.storage.segment.SegmentReader` per live segment,
and the tombstone set.  All mutation funnels through three commit
operations — :meth:`commit_segment` (a flush), :meth:`merge_once`
(fold a planned group into one segment), and :meth:`add_tombstones` —
each of which writes the new state *beside* the old and publishes it
with a single atomic manifest swap, so readers and crashes only ever
observe a fully committed store.

Two counters make cache invalidation precise for the index and
document-store views stacked on top:

* :attr:`epoch` bumps on **every** commit (the physical layout moved:
  re-derive anything holding reader references or decoded postings);
* :attr:`content_epoch` bumps only when **observable content** changed
  (tombstones).  Flushes move the mutable tail into a segment and
  merges rewrite bytes, but neither changes any query answer, so
  derived caches keyed on content (term expansions, vocabularies) ride
  through them untouched.
"""

from __future__ import annotations

import pathlib
import shutil
import threading
import time

from repro.engine.documents import Document
from repro.engine.index import Posting, SummaryEntry
from repro.federation.executor import submit_background
from repro.observability.metrics import get_registry
from repro.storage.format import StorageError
from repro.storage.manifest import (
    MANIFEST_NAME,
    Manifest,
    SegmentMeta,
    commit_manifest,
    read_manifest,
)
from repro.storage.merge import TieredMergePolicy
from repro.storage.segment import SegmentReader, SegmentWriter

__all__ = ["SegmentStore"]


class SegmentStore:
    """One directory of immutable segments under an atomic manifest.

    Args:
        directory: the store's root; created (with an empty manifest)
            when it does not exist yet.
        analyzer: analyzer signature to record/verify — a store built
            by a stemming analyzer must never be served by a
            non-stemming one (the same guard JSON persistence has).
        ranking: the engine's configured ranking ``algorithm_id``;
            verified against the manifest on open, mismatch raises.
        merge_policy: the tiered policy steering :meth:`maybe_merge`.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        analyzer: dict | None = None,
        ranking: str | None = None,
        merge_policy: TieredMergePolicy | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.merge_policy = merge_policy or TieredMergePolicy()
        self._commit_lock = threading.Lock()
        #: bumped on every commit (layout changed).
        self.epoch = 0
        #: bumped only when query-observable content changed.
        self.content_epoch = 0

        manifest = read_manifest(self.directory)
        if manifest is None:
            manifest = Manifest(analyzer=analyzer, ranking=ranking)
            commit_manifest(self.directory, manifest)
        else:
            if analyzer is not None and manifest.analyzer is not None and (
                manifest.analyzer != analyzer
            ):
                raise StorageError(
                    f"analyzer mismatch: store built with {manifest.analyzer}, "
                    f"engine configured as {analyzer}"
                )
            if ranking is not None and manifest.ranking is not None and (
                manifest.ranking != ranking
            ):
                raise StorageError(
                    f"ranking mismatch: store built for {manifest.ranking!r}, "
                    f"engine configured as {ranking!r}"
                )
        self.manifest = manifest
        self.readers: list[SegmentReader] = [
            SegmentReader(self.directory / meta.name) for meta in manifest.segments
        ]
        self.tombstones: set[int] = set(manifest.tombstones)
        self.sweep_orphans()
        self._update_gauges()

    # -- introspection -----------------------------------------------------

    @property
    def generation(self) -> int:
        """The committed manifest generation (the checkpoint cursor)."""
        return self.manifest.generation

    @property
    def segment_count(self) -> int:
        return len(self.readers)

    def total_bytes(self) -> int:
        return self.manifest.total_bytes()

    @property
    def document_ceiling(self) -> int:
        return self.manifest.document_ceiling

    def live_doc_count(self) -> int:
        """Documents in segments minus tombstoned ones."""
        return sum(meta.doc_count for meta in self.manifest.segments) - len(
            self.tombstones
        )

    def live(self, doc_id: int) -> bool:
        return doc_id not in self.tombstones

    def manifest_path(self) -> pathlib.Path:
        return self.directory / MANIFEST_NAME

    def close(self) -> None:
        for reader in self.readers:
            reader.close()
        self.readers = []

    # -- commits -----------------------------------------------------------

    def commit_segment(
        self,
        documents: list[tuple[int, Document, int]],
        postings: dict[str, dict[str, list[Posting]]],
        summary: list[tuple[str, str, dict[str, SummaryEntry]]],
    ) -> SegmentMeta:
        """Flush one batch (the engine's mutable tail) as a new segment."""
        started = time.perf_counter()
        with self._commit_lock:
            manifest = self.manifest
            name = f"seg-{manifest.next_segment_id:06d}"
            writer = SegmentWriter(self.directory / name, name)
            meta = writer.write(documents, postings, summary)
            if manifest.segments and meta.doc_base < manifest.document_ceiling:
                raise StorageError("flushed segment overlaps committed doc ids")
            updated = Manifest(
                generation=manifest.generation + 1,
                next_segment_id=manifest.next_segment_id + 1,
                segments=manifest.segments + [meta],
                tombstones=sorted(self.tombstones),
                analyzer=manifest.analyzer,
                ranking=manifest.ranking,
            )
            commit_manifest(self.directory, updated)
            self.manifest = updated
            self.readers = self.readers + [SegmentReader(self.directory / name)]
            self.epoch += 1
        registry = get_registry()
        registry.histogram(
            "storage_flush_ms",
            "Wall-clock time of one tail flush into an immutable segment.",
        ).observe((time.perf_counter() - started) * 1000.0)
        self._update_gauges()
        return meta

    def add_tombstones(self, doc_ids) -> int:
        """Mark committed documents deleted; returns how many were new.

        Tombstoned documents stop matching queries immediately (readers
        filter them during posting decode) and are physically dropped
        by the next merge covering their segment.
        """
        with self._commit_lock:
            fresh = {
                doc_id
                for doc_id in doc_ids
                if doc_id not in self.tombstones and self._covers(doc_id)
            }
            if not fresh:
                return 0
            self.tombstones |= fresh
            manifest = self.manifest
            updated = Manifest(
                generation=manifest.generation + 1,
                next_segment_id=manifest.next_segment_id,
                segments=manifest.segments,
                tombstones=sorted(self.tombstones),
                analyzer=manifest.analyzer,
                ranking=manifest.ranking,
            )
            commit_manifest(self.directory, updated)
            self.manifest = updated
            self.epoch += 1
            self.content_epoch += 1
        self._update_gauges()
        return len(fresh)

    def _covers(self, doc_id: int) -> bool:
        return any(reader.slot_of(doc_id) is not None for reader in self.readers)

    # -- merging -----------------------------------------------------------

    def plan_merge(self) -> list[SegmentMeta] | None:
        return self.merge_policy.plan(self.manifest.segments)

    def merge_once(self) -> SegmentMeta | None:
        """Execute one planned merge; returns the new segment (if any).

        The group's postings are decoded with tombstoned documents
        filtered out, re-encoded into one segment of the next tier,
        and published with a single manifest swap that also retires
        the consumed tombstones.  Old directories are deleted only
        after the swap — a crash at any point leaves either the old
        committed state or the new one.
        """
        started = time.perf_counter()
        with self._commit_lock:
            group = self.merge_policy.plan(self.manifest.segments)
            if not group:
                return None
            meta = self._merge_group(group)
        registry = get_registry()
        registry.histogram(
            "storage_merge_ms",
            "Wall-clock time of one background segment merge.",
        ).observe((time.perf_counter() - started) * 1000.0)
        registry.counter(
            "storage_merges_total",
            "Segment merges executed (tiered policy).",
        ).inc()
        self._update_gauges()
        return meta

    def _merge_group(self, group: list[SegmentMeta]) -> SegmentMeta | None:
        """Fold ``group`` into one segment (commit lock held)."""
        names = {meta.name for meta in group}
        readers = [reader for reader in self.readers if reader.name in names]
        live = self.live

        documents: list[tuple[int, Document, int]] = []
        postings: dict[str, dict[str, list[Posting]]] = {}
        summary: dict[tuple[str, str], dict[str, SummaryEntry]] = {}
        consumed: set[int] = set()
        for reader in readers:
            for slot, doc_id in enumerate(reader.doc_ids()):
                if live(doc_id):
                    documents.append(
                        (doc_id, reader.document_at(slot), reader.token_count_at(slot))
                    )
                else:
                    consumed.add(doc_id)
            for field_name in reader.fields():
                field_postings = postings.setdefault(field_name, {})
                for term in reader.vocabulary(field_name):
                    plist = reader.postings(field_name, term, live)
                    if plist:
                        field_postings.setdefault(term, []).extend(plist)
            for field_name, language, words in reader.summary_sections():
                bucket = summary.setdefault((field_name, language), {})
                for word, entry in words.items():
                    merged = bucket.setdefault(word, SummaryEntry())
                    merged.postings += entry.postings
                    merged.document_frequency += entry.document_frequency

        manifest = self.manifest
        survivors = [meta for meta in manifest.segments if meta.name not in names]
        merged_meta: SegmentMeta | None = None
        if documents:
            name = f"seg-{manifest.next_segment_id:06d}"
            writer = SegmentWriter(self.directory / name, name)
            merged_meta = writer.write(
                documents,
                {f: {t: p for t, p in terms.items()} for f, terms in postings.items()},
                [(f, lang, words) for (f, lang), words in summary.items()],
            )
            survivors.append(merged_meta)
            survivors.sort(key=lambda meta: meta.doc_base)
        remaining = sorted(self.tombstones - consumed)
        updated = Manifest(
            generation=manifest.generation + 1,
            next_segment_id=manifest.next_segment_id + 1,
            segments=survivors,
            tombstones=remaining,
            analyzer=manifest.analyzer,
            ranking=manifest.ranking,
        )
        commit_manifest(self.directory, updated)
        self.manifest = updated
        self.tombstones = set(remaining)
        surviving_readers = [
            reader for reader in self.readers if reader.name not in names
        ]
        if merged_meta is not None:
            surviving_readers.append(SegmentReader(self.directory / merged_meta.name))
            surviving_readers.sort(key=lambda reader: reader.doc_base)
        self.readers = surviving_readers
        self.epoch += 1
        for reader in readers:
            reader.close()
            shutil.rmtree(reader.directory, ignore_errors=True)
        return merged_meta

    def merge_all(self) -> int:
        """Run merges until the policy finds nothing left; returns count."""
        merges = 0
        while self.plan_merge():
            if self.merge_once() is None and not self.plan_merge():
                break
            merges += 1
        return merges

    def maybe_merge(self, executor: object | None = None) -> bool:
        """Kick off merging when the policy wants one.

        With an ``executor`` (anything exposing ``submit``, e.g. the
        federation's executors), merging runs as a fire-and-forget
        background task via :func:`submit_background` — failures are
        logged and counted, never raised into the indexing path.
        Returns whether any merge work was scheduled or run.
        """
        if not self.plan_merge():
            return False
        if executor is not None:
            submit_background(executor, self.merge_all, task_name="segment-merge")
            return True
        return self.merge_all() > 0

    # -- housekeeping ------------------------------------------------------

    def sweep_orphans(self) -> int:
        """Delete segment directories a crash stranded; returns count."""
        live_names = {meta.name for meta in self.manifest.segments}
        swept = 0
        for child in self.directory.iterdir():
            if (
                child.is_dir()
                and child.name.startswith("seg-")
                and child.name not in live_names
            ):
                shutil.rmtree(child, ignore_errors=True)
                swept += 1
        return swept

    def _update_gauges(self) -> None:
        registry = get_registry()
        registry.gauge(
            "storage_segments",
            "Live immutable segments in the store.",
        ).set(len(self.manifest.segments))
        registry.gauge(
            "storage_segment_bytes",
            "Total bytes across live segment files.",
        ).set(self.manifest.total_bytes())
        registry.gauge(
            "storage_tombstones",
            "Deleted documents awaiting a merge to reclaim them.",
        ).set(len(self.tombstones))
