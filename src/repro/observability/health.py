"""Source health scoring: from observed metrics back to behavior.

§3.3's operational worries — sources with "large response times",
sources that "charge for their use", sources that are simply down —
become a single 0–1 *health score* per source, folded from the same
windows the metrics registry exports: error rate, timeout rate, a
latency EWMA against a budget, and a cost EWMA against a budget.

The score closes the observability loop:

* the federation layer *hedges unhealthy sources first* — their
  :class:`~repro.federation.QueryPolicy` is adapted to fire the
  duplicate request immediately instead of waiting out a straggler;
* the metasearcher *deprioritizes* them — healthy sources keep their
  selection order, unhealthy ones sink to the end of the round;
* the :class:`~repro.cache.NegativeSourceCache` *holds them down
  longer* — a failure from a source with a bad track record earns a
  TTL scaled up to ``negative_ttl_max_scale`` times the base.

Scores are exported as the ``source_health_score`` gauge on every
update, so the whole loop is visible from ``/metrics``.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from dataclasses import dataclass

from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = ["HealthPolicy", "SourceHealth", "SourceHealthSnapshot"]


@dataclass(frozen=True)
class HealthPolicy:
    """How observations fold into a score, and what the score changes.

    Attributes:
        window: rolling number of wire attempts the rates are computed
            over (per source).
        ewma_alpha: weight of the newest observation in the latency and
            cost EWMAs.
        error_weight / timeout_weight / latency_weight / cost_weight:
            penalty weights; the score is 1 minus their weighted sum,
            clamped to [0, 1].
        latency_budget_ms: latency EWMA at (or above) this budget takes
            the full latency penalty; below it, proportionally less.
        cost_budget: same idea for the per-request cost EWMA.
        min_samples: attempts required before a source can be judged
            unhealthy — a single flake is not a track record.
        unhealthy_below: scores under this threshold trigger the
            behavior changes (hedge-first, deprioritize, longer holds).
        hedge_unhealthy_after_ms: the ``hedge_after_ms`` applied to an
            unhealthy source's policy (0.0 = hedge immediately).
        negative_ttl_max_scale: negative-cache TTL multiplier at score
            0.0; scales linearly from 1x at the unhealthy threshold.
    """

    window: int = 20
    ewma_alpha: float = 0.3
    # A status is either error or timeout, never both, so the combined
    # availability penalty is bounded by max(error, timeout) weight: a
    # source failing every attempt scores <= 0.4 and is flagged under
    # the default 0.5 threshold.
    error_weight: float = 0.6
    timeout_weight: float = 0.6
    latency_weight: float = 0.15
    cost_weight: float = 0.05
    latency_budget_ms: float = 1_000.0
    cost_budget: float = 1.0
    min_samples: int = 2
    unhealthy_below: float = 0.5
    hedge_unhealthy_after_ms: float = 0.0
    negative_ttl_max_scale: float = 4.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.unhealthy_below <= 1.0:
            raise ValueError("unhealthy_below must be in [0, 1]")
        if self.negative_ttl_max_scale < 1.0:
            raise ValueError("negative_ttl_max_scale must be >= 1")


@dataclass(frozen=True)
class SourceHealthSnapshot:
    """One source's folded health at a point in time."""

    source_id: str
    score: float
    samples: int
    error_rate: float
    timeout_rate: float
    latency_ewma_ms: float
    cost_ewma: float


class _SourceWindow:
    """Rolling per-source observations (guarded by the tracker's lock)."""

    __slots__ = ("attempts", "latency_ewma_ms", "cost_ewma", "samples")

    def __init__(self, window: int) -> None:
        self.attempts: deque[str] = deque(maxlen=window)
        self.latency_ewma_ms = 0.0
        self.cost_ewma = 0.0
        self.samples = 0


class SourceHealth:
    """Folds per-source observations into 0–1 health scores.

    Feed it wire attempts (:meth:`record_attempt`) or whole federation
    outcomes (:meth:`record_outcome`); read :meth:`score`, adapt
    policies with :meth:`adapt`, and scale negative-cache holds with
    :meth:`negative_ttl_ms`.  Thread safe; scores are recomputed on
    read from the rolling windows, and exported to the
    ``source_health_score`` gauge on every record.
    """

    def __init__(
        self,
        policy: HealthPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy or HealthPolicy()
        self._registry = registry
        self._lock = threading.Lock()
        self._windows: dict[str, _SourceWindow] = {}

    def _registry_now(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- feeding ----------------------------------------------------------

    def record_attempt(
        self, source_id: str, status: str, latency_ms: float, cost: float = 0.0
    ) -> float:
        """One wire attempt's verdict; returns the updated score."""
        policy = self.policy
        with self._lock:
            window = self._windows.get(source_id)
            if window is None:
                window = self._windows[source_id] = _SourceWindow(policy.window)
            window.attempts.append(status)
            window.samples += 1
            alpha = policy.ewma_alpha
            if window.samples == 1:
                window.latency_ewma_ms = latency_ms
                window.cost_ewma = cost
            else:
                window.latency_ewma_ms += alpha * (latency_ms - window.latency_ewma_ms)
                window.cost_ewma += alpha * (cost - window.cost_ewma)
            score = self._score_locked(window)
        self._registry_now().gauge(
            "source_health_score",
            "Folded 0-1 health per source (1 = healthy).",
            labels=("source_id",),
        ).labels(source_id=source_id).set(score)
        return score

    def record_outcome(self, outcome) -> None:
        """Fold a :class:`~repro.federation.SourceOutcome`'s attempts in.

        Skipped outcomes (negative-cached, nothing translatable) carry
        no wire evidence and are ignored.
        """
        for attempt in getattr(outcome, "attempts", ()):  # SKIPPED has none
            self.record_attempt(
                outcome.source_id,
                attempt.status.value,
                attempt.latency_ms,
                attempt.cost,
            )

    # -- scoring ----------------------------------------------------------

    def _score_locked(self, window: _SourceWindow) -> float:
        policy = self.policy
        attempts = window.attempts
        if not attempts:
            return 1.0
        n = len(attempts)
        errors = sum(1 for status in attempts if status == "error")
        timeouts = sum(1 for status in attempts if status == "timeout")
        latency_penalty = min(window.latency_ewma_ms / policy.latency_budget_ms, 1.0)
        cost_penalty = (
            min(window.cost_ewma / policy.cost_budget, 1.0)
            if policy.cost_budget > 0
            else 0.0
        )
        penalty = (
            policy.error_weight * (errors / n)
            + policy.timeout_weight * (timeouts / n)
            + policy.latency_weight * latency_penalty
            + policy.cost_weight * cost_penalty
        )
        return min(max(1.0 - penalty, 0.0), 1.0)

    def score(self, source_id: str) -> float:
        """The source's current health; 1.0 when nothing is known."""
        with self._lock:
            window = self._windows.get(source_id)
            if window is None:
                return 1.0
            return self._score_locked(window)

    def is_unhealthy(self, source_id: str) -> bool:
        """Below the threshold, with enough evidence to say so."""
        with self._lock:
            window = self._windows.get(source_id)
            if window is None or len(window.attempts) < self.policy.min_samples:
                return False
            return self._score_locked(window) < self.policy.unhealthy_below

    def snapshot(self) -> dict[str, SourceHealthSnapshot]:
        """Every known source's folded health, for display."""
        with self._lock:
            result = {}
            for source_id, window in sorted(self._windows.items()):
                n = len(window.attempts) or 1
                result[source_id] = SourceHealthSnapshot(
                    source_id=source_id,
                    score=self._score_locked(window),
                    samples=len(window.attempts),
                    error_rate=sum(1 for s in window.attempts if s == "error") / n,
                    timeout_rate=sum(1 for s in window.attempts if s == "timeout") / n,
                    latency_ewma_ms=window.latency_ewma_ms,
                    cost_ewma=window.cost_ewma,
                )
            return result

    # -- behavior ---------------------------------------------------------

    def adapt(self, source_id: str, policy):
        """The query policy to actually run ``source_id`` under.

        Healthy sources keep their policy object untouched.  An
        unhealthy source gets *hedge-first*: its ``hedge_after_ms``
        drops to ``hedge_unhealthy_after_ms`` (never raised) — the
        duplicate request goes out immediately, so one more paid
        request buys not waiting out a source already known to be slow
        or flaky.
        """
        if not self.is_unhealthy(source_id):
            return policy
        hedge_at = self.policy.hedge_unhealthy_after_ms
        if policy.hedge_after_ms is not None and policy.hedge_after_ms <= hedge_at:
            return policy
        return dataclasses.replace(policy, hedge_after_ms=hedge_at)

    def order_by_health(self, source_ids: list[str]) -> list[str]:
        """Healthy sources first, original order preserved within tiers."""
        return sorted(source_ids, key=self.is_unhealthy)

    def negative_ttl_ms(self, source_id: str, base_ttl_ms: float) -> float:
        """The negative-cache hold for a failure from this source.

        Healthy (or unjudgeable) sources keep the base TTL; below the
        unhealthy threshold the hold scales linearly, reaching
        ``negative_ttl_max_scale`` × base at score 0.0 — the worse the
        track record, the longer before the next paid probe.
        """
        if not self.is_unhealthy(source_id):
            return base_ttl_ms
        threshold = self.policy.unhealthy_below or 1.0
        badness = min(max((threshold - self.score(source_id)) / threshold, 0.0), 1.0)
        scale = 1.0 + (self.policy.negative_ttl_max_scale - 1.0) * badness
        return base_ttl_ms * scale
