"""A process-wide metrics registry: counters, gauges, histograms.

PR 1's :class:`~repro.observability.Tracer` sees one operation at a
time and evaporates with its trace; serving metasearch at production
latency/cost targets needs the *longitudinal* view — per-source request
rates, error ratios, latency percentiles accumulated across every
search the process has run.  This module is that layer:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a value that goes both ways (health scores, TTLs,
  live entry counts);
* :class:`Histogram` — fixed log-scale bucket bounds with streaming
  p50/p95/p99 estimation plus exact sum/count;
* :class:`MetricFamily` — a named, typed group of instruments keyed by
  label values (``source_requests_total{source_id,outcome}``);
* :class:`MetricsRegistry` — the thread-safe home of every family,
  idempotent on registration so instrumenting code can re-acquire its
  families on every call without bookkeeping.

One registry is process-wide (:func:`get_registry`); tests and
embedders swap it with :func:`set_registry`.  A *disabled* registry
(:meth:`MetricsRegistry.disabled`) hands out no-op instruments, so the
instrumented code paths cost two dictionary lookups and nothing else —
the off switch that keeps the paper-faithful pipeline byte-identical.

Everything here is dependency-free; the Prometheus/Chrome/NDJSON
renderings live in :mod:`repro.observability.export`.
"""

from __future__ import annotations

import bisect
import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "get_registry",
    "set_registry",
    "linear_buckets",
    "log_scale_buckets",
]


def linear_buckets(start: float, stop: float, step: float = 1.0) -> tuple[float, ...]:
    """Evenly spaced bucket bounds from ``start`` through ``stop``.

    The right shape for small bounded counts (a broker's route depth,
    a retry budget) where the log ladder would lump everything into two
    buckets.  The final bound is always exactly ``stop``.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    if stop < start:
        raise ValueError("need start <= stop")
    bounds: list[float] = []
    bound = float(start)
    while bound < stop:
        bounds.append(bound)
        bound += step
    bounds.append(float(stop))
    return tuple(bounds)


def log_scale_buckets(
    start: float, stop: float, per_decade: int = 3
) -> tuple[float, ...]:
    """Fixed log-scale bucket bounds from ``start`` up to ``stop``.

    ``per_decade=3`` yields the classic 1-2.5-5 mantissa ladder
    (…, 1, 2.5, 5, 10, 25, 50, …); the bounds are deterministic so two
    histograms with the same arguments always agree bucket for bucket.
    """
    if start <= 0 or stop <= start:
        raise ValueError("need 0 < start < stop")
    mantissas = {3: (1.0, 2.5, 5.0), 2: (1.0, 3.0), 1: (1.0,)}.get(per_decade)
    if mantissas is None:
        raise ValueError("per_decade must be 1, 2 or 3")
    bounds: list[float] = []
    scale = 1.0
    while scale <= stop * 10.0:
        for mantissa in mantissas:
            bound = mantissa * scale
            if start <= bound <= stop:
                bounds.append(bound)
        scale *= 10.0
    if not bounds or bounds[-1] < stop:
        bounds.append(stop)
    return tuple(bounds)


#: Default bounds for latency histograms: 0.1ms to 60s, 1-2.5-5 ladder.
DEFAULT_LATENCY_BUCKETS_MS = log_scale_buckets(0.1, 60_000.0)


class Counter:
    """A monotonically increasing total (thread safe)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (thread safe)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Bucketed observations with streaming percentile estimation.

    Bucket bounds are fixed at construction (log-scale by default);
    observations land in the first bucket whose upper bound is >= the
    value, with one implicit overflow bucket past the last bound.
    Percentiles interpolate linearly inside the winning bucket, which
    is the standard Prometheus-style estimate: cheap, streaming, and
    accurate to within one bucket's width.

    ``observe`` optionally takes an *exemplar* — a trace id to pin to
    the bucket the observation lands in (last write wins), so a scrape
    can jump from a latency bucket straight to a representative trace.
    NaN observations raise: they would poison ``sum`` and land in an
    arbitrary bucket.  ``+inf`` is accepted (overflow bucket).
    """

    __slots__ = ("_lock", "bounds", "bucket_counts", "sum", "count", "exemplars")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and ascending")
        self._lock = threading.Lock()
        self.bounds = tuple(float(bound) for bound in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        #: bucket index -> (exemplar trace id, observed value)
        self.exemplars: dict[int, tuple[str, float]] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1
            if exemplar is not None:
                self.exemplars[index] = (exemplar, value)

    def percentile(self, quantile: float) -> float:
        """Streaming percentile estimate (0 <= quantile <= 1).

        Returns 0.0 when nothing has been observed.  Values in the
        overflow bucket report the last finite bound — the estimate
        saturates rather than inventing an upper edge.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = quantile * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.bucket_counts):
                if bucket_count == 0:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank:
                    if index >= len(self.bounds):
                        return self.bounds[-1]
                    lower = self.bounds[index - 1] if index else 0.0
                    upper = self.bounds[index]
                    fraction = (rank - previous) / bucket_count
                    return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0


class _NullInstrument:
    """The do-nothing instrument a disabled registry hands out."""

    __slots__ = ()

    def labels(self, **_labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, exemplar: str | None = None) -> None:
        pass


_NULL = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named, typed metric with one child instrument per label tuple.

    ``family.labels(source_id="S1", outcome="ok")`` returns (creating
    on first use) the child for those label values; a family declared
    with no label names acts as its own single child, so
    ``family.inc()`` / ``family.observe(...)`` work directly.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind: {kind!r}")
        self.kind = kind
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS_MS)
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        """The child instrument for these label values (created lazily)."""
        try:
            key = tuple(str(labels[name]) for name in self.label_names)
        except KeyError as missing:
            raise ValueError(
                f"{self.name} requires labels {self.label_names}, got "
                f"{tuple(labels)}"
            ) from missing
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name} requires labels {self.label_names}, got "
                f"{tuple(labels)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        """(label values, instrument) pairs, sorted by label values."""
        with self._lock:
            return sorted(self._children.items())

    # -- zero-label convenience -------------------------------------------

    def _default_child(self):
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self._default_child().observe(value, exemplar=exemplar)


class MetricsRegistry:
    """The thread-safe, process-wide home of every metric family.

    Registration is idempotent: asking for an existing name returns the
    existing family (the declared kind and label names must match), so
    instrumented code simply re-declares its metrics at every call site
    — no globals, no initialization order.

    A registry built with ``enabled=False`` (or via :meth:`disabled`)
    hands out a shared no-op instrument from every declaration: the
    instrumentation points stay in place but record nothing, and
    :meth:`families` reports empty — the exporters render an empty
    exposition.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    @classmethod
    def disabled(cls) -> "MetricsRegistry":
        """A registry whose instruments are all no-ops."""
        return cls(enabled=False)

    def _family(
        self,
        kind: str,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ):
        if not self.enabled:
            return _NULL
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        kind, name, help_text, tuple(label_names), buckets
                    )
                    self._families[name] = family
        if family.kind != kind or family.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} with "
                f"labels {family.label_names}; cannot redeclare as {kind} "
                f"with labels {tuple(label_names)}"
            )
        return family

    def counter(self, name: str, help_text: str = "", labels: tuple[str, ...] = ()):
        return self._family("counter", name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: tuple[str, ...] = ()):
        return self._family("gauge", name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ):
        return self._family("histogram", name, help_text, labels, buckets)

    def families(self) -> list[MetricFamily]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def family(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Drop every family — a fresh slate for tests."""
        with self._lock:
            self._families.clear()


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module records to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests, embedders); returns it."""
    global _default_registry
    with _registry_lock:
        _default_registry = registry
    return registry
