"""Observability: traces, process-wide metrics, exporters, health.

Three layers, from one operation outward:

* tracing (:class:`Tracer` / :class:`Trace`) — one operation's span
  tree and per-source counters, rendered by :func:`render_trace`;
* metrics (:class:`MetricsRegistry`) — longitudinal counters, gauges
  and histograms accumulated across every operation, exported as
  Prometheus text by :func:`render_prometheus`;
* health (:class:`SourceHealth`) — per-source 0–1 scores folded from
  the observed windows, feeding back into federation policy and
  negative-cache TTLs.

Traces additionally export as Chrome trace JSON
(:func:`render_chrome_trace`) and structured NDJSON
(:func:`render_ndjson`).
"""

from repro.observability.export import (
    chrome_trace,
    render_chrome_trace,
    render_ndjson,
    render_prometheus,
    trace_events,
)
from repro.observability.health import (
    HealthPolicy,
    SourceHealth,
    SourceHealthSnapshot,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    linear_buckets,
    log_scale_buckets,
    set_registry,
)
from repro.observability.render import (
    render_cache_counters,
    render_counters,
    render_trace,
)
from repro.observability.tracing import (
    CacheCounters,
    SourceCounters,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "chrome_trace",
    "render_chrome_trace",
    "render_ndjson",
    "render_prometheus",
    "trace_events",
    "HealthPolicy",
    "SourceHealth",
    "SourceHealthSnapshot",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "linear_buckets",
    "log_scale_buckets",
    "set_registry",
    "render_cache_counters",
    "render_counters",
    "render_trace",
    "CacheCounters",
    "SourceCounters",
    "Span",
    "Trace",
    "Tracer",
]
