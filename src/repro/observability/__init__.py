"""Observability: spans, per-source counters, and a text renderer."""

from repro.observability.render import render_counters, render_trace
from repro.observability.tracing import SourceCounters, Span, Trace, Tracer

__all__ = [
    "render_counters",
    "render_trace",
    "SourceCounters",
    "Span",
    "Trace",
    "Tracer",
]
