"""Observability: traces, process-wide metrics, exporters, health.

Layers, from one operation outward:

* tracing (:class:`Tracer` / :class:`Trace`) — one operation's span
  tree and per-source counters, rendered by :func:`render_trace`;
  :class:`TraceContext` carries the operation across processes (W3C
  ``traceparent`` on the wire) and :class:`TraceCollector` gathers the
  server-side fragments :func:`stitch_traces` merges back into one
  cross-process tree;
* metrics (:class:`MetricsRegistry`) — longitudinal counters, gauges
  and histograms accumulated across every operation, exported as
  Prometheus text by :func:`render_prometheus` (histogram buckets can
  carry trace-id exemplars);
* the query log (:class:`QueryLog`) — one wide, flat
  :class:`QueryLogRecord` per search, ring-buffered and NDJSON-ready;
* SLOs (:class:`SloMonitor`) — declarative objectives evaluated from
  the live registry into error budgets and burn-rate alerts;
* health (:class:`SourceHealth`) — per-source 0–1 scores folded from
  the observed windows, feeding back into federation policy and
  negative-cache TTLs.

Traces additionally export as Chrome trace JSON
(:func:`render_chrome_trace`) and structured NDJSON
(:func:`render_ndjson`).
"""

from repro.observability.export import (
    chrome_trace,
    render_chrome_trace,
    render_ndjson,
    render_prometheus,
    render_stitched_ndjson,
    stitch_traces,
    stitched_chrome_trace,
    trace_events,
)
from repro.observability.health import (
    HealthPolicy,
    SourceHealth,
    SourceHealthSnapshot,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    linear_buckets,
    log_scale_buckets,
    set_registry,
)
from repro.observability.querylog import (
    QueryLog,
    QueryLogRecord,
    get_query_log,
    set_query_log,
)
from repro.observability.render import (
    render_cache_counters,
    render_counters,
    render_trace,
)
from repro.observability.slo import (
    BurnAlert,
    BurnWindow,
    SloMonitor,
    SloObjective,
    SloPolicy,
    SloReport,
)
from repro.observability.tracing import (
    CacheCounters,
    SourceCounters,
    Span,
    Trace,
    TraceCollector,
    TraceContext,
    Tracer,
    ambient_span,
    current_ambient_span,
    current_trace_context,
    trace_context,
)

__all__ = [
    "chrome_trace",
    "render_chrome_trace",
    "render_ndjson",
    "render_prometheus",
    "render_stitched_ndjson",
    "stitch_traces",
    "stitched_chrome_trace",
    "trace_events",
    "HealthPolicy",
    "SourceHealth",
    "SourceHealthSnapshot",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "linear_buckets",
    "log_scale_buckets",
    "set_registry",
    "QueryLog",
    "QueryLogRecord",
    "get_query_log",
    "set_query_log",
    "render_cache_counters",
    "render_counters",
    "render_trace",
    "BurnAlert",
    "BurnWindow",
    "SloMonitor",
    "SloObjective",
    "SloPolicy",
    "SloReport",
    "CacheCounters",
    "SourceCounters",
    "Span",
    "Trace",
    "TraceCollector",
    "TraceContext",
    "Tracer",
    "ambient_span",
    "current_ambient_span",
    "current_trace_context",
    "trace_context",
]
