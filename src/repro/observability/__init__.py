"""Observability: spans, per-source counters, and a text renderer."""

from repro.observability.render import (
    render_cache_counters,
    render_counters,
    render_trace,
)
from repro.observability.tracing import (
    CacheCounters,
    SourceCounters,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "render_cache_counters",
    "render_counters",
    "render_trace",
    "CacheCounters",
    "SourceCounters",
    "Span",
    "Trace",
    "Tracer",
]
