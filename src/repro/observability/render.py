"""Text rendering for traces: the whole query timeline, human first.

``MetasearchResult.explain_trace()`` ends up here: an indented span
tree (wall-clock durations, attributes inline) followed by the
per-source counter table — retries, failures, timeouts, simulated
latency, backoff waits and monetary cost, the §3.3 quantities a
metasearch operator actually watches.
"""

from __future__ import annotations

from repro.observability.tracing import CacheCounters, SourceCounters, Span, Trace

__all__ = ["render_trace", "render_counters", "render_cache_counters"]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def _span_lines(span: Span, depth: int, lines: list[str]) -> None:
    attributes = " ".join(
        f"{name}={_format_value(value)}" for name, value in span.attributes.items()
    )
    label = f"{'  ' * depth}{span.name}"
    # An open span (a crashed or still-running operation) shows its
    # elapsed-so-far time, explicitly marked so it never reads as final.
    duration = f"{span.duration_ms:8.1f}ms"
    if span.is_open:
        duration += "+ [open]"
    lines.append(f"{label:<42} {duration}  {attributes}".rstrip())
    for child in span.children:
        _span_lines(child, depth + 1, lines)


def render_counters(counters: dict[str, SourceCounters]) -> list[str]:
    """The per-source counter table as lines (empty list if no traffic)."""
    if not counters:
        return []
    lines = [
        f"{'source':<16} {'reqs':>5} {'retry':>5} {'fail':>5} {'tmout':>5} "
        f"{'hedge':>5} {'latency':>10} {'backoff':>9} {'cost':>7}"
    ]
    for source_id in sorted(counters):
        tally = counters[source_id]
        lines.append(
            f"{source_id:<16} {tally.requests:>5} {tally.retries:>5} "
            f"{tally.failures:>5} {tally.timeouts:>5} {tally.hedges:>5} "
            f"{tally.latency_ms:>8.1f}ms {tally.backoff_ms:>7.1f}ms "
            f"{tally.cost:>7.2f}"
        )
    return lines


def render_cache_counters(cache: CacheCounters | None) -> list[str]:
    """The cache-tier summary as lines (empty when caching never ran)."""
    if cache is None:
        return []
    rate = cache.hits / cache.lookups if cache.lookups else 0.0
    return [
        f"hits={cache.hits} stale_hits={cache.stale_hits} "
        f"misses={cache.misses} hit_rate={rate:.2f}",
        f"stores={cache.stores} evictions={cache.evictions} "
        f"negative_skips={cache.negative_skips} "
        f"cost_saved={cache.cost_saved:.2f}",
    ]


def render_trace(trace: Trace) -> str:
    """The span tree plus the counter table, as display-ready text."""
    lines: list[str] = []
    for span in trace.spans:
        _span_lines(span, 0, lines)
    counter_lines = render_counters(trace.counters)
    if counter_lines:
        if lines:
            lines.append("")
        lines.append("per-source counters (simulated wire time and cost):")
        lines.extend(counter_lines)
    cache_lines = render_cache_counters(trace.cache)
    if cache_lines:
        if lines:
            lines.append("")
        lines.append("cache counters:")
        lines.extend(cache_lines)
    if not lines:
        return "(empty trace)"
    return "\n".join(lines)
