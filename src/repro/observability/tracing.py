"""Lightweight tracing and per-source metrics for the metasearch pipeline.

The paper's §3.3 worries about sources with "large response times" and
sources that "charge for their use" — concerns a metasearcher can only
act on if it can *see* where a query's time and money went.  This module
provides the minimal instrumentation the federation runtime threads
through discover → select → translate → query → merge:

* :class:`Span` — one timed phase, possibly nested, with free-form
  attributes (wall-clock is measured; simulated network time arrives as
  attributes set by the federation runner);
* :class:`Tracer` — a thread-safe factory/collector of spans plus a
  per-source :class:`SourceCounters` table (requests, retries,
  failures, timeouts, hedges, simulated latency, backoff, cost);
* :class:`Trace` — the immutable-ish view a finished operation hands
  back, rendered to text by :func:`repro.observability.render_trace`.

Everything is dependency-free and cheap enough to leave on by default.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field as dataclass_field

__all__ = ["CacheCounters", "Span", "SourceCounters", "Trace", "Tracer"]


@dataclass
class Span:
    """One timed phase of an operation, with nested children."""

    name: str
    start_ms: float
    end_ms: float | None = None
    attributes: dict[str, object] = dataclass_field(default_factory=dict)
    children: list["Span"] = dataclass_field(default_factory=list)
    #: The owning tracer's clock (ms), so an open span can report its
    #: elapsed-so-far duration; spans built by hand leave it None.
    clock_ms: object = dataclass_field(default=None, repr=False, compare=False)

    @property
    def is_open(self) -> bool:
        """True until the span's ``with`` block (or operation) finishes."""
        return self.end_ms is None

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration; elapsed-so-far while the span is open.

        A crashed operation leaves its spans open — reporting the time
        they had accrued (rather than 0.0) keeps a partial trace from
        rendering as a pile of zero-length phases.  Spans constructed
        without a tracer clock still read 0.0 while open.
        """
        if self.end_ms is None:
            if callable(self.clock_ms):
                return self.clock_ms() - self.start_ms
            return 0.0
        return self.end_ms - self.start_ms

    def annotate(self, **attributes: object) -> None:
        """Attach or overwrite attributes on this span."""
        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class SourceCounters:
    """Per-source tallies accumulated across one traced operation.

    ``latency_ms`` and ``backoff_ms`` are *simulated* network time (what
    the wire charged); span durations are wall-clock.
    """

    requests: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    hedges: int = 0
    latency_ms: float = 0.0
    backoff_ms: float = 0.0
    cost: float = 0.0


@dataclass
class CacheCounters:
    """Cache-tier tallies for one traced operation.

    ``None`` on a :class:`Trace` means the caching subsystem never ran
    (disabled, or the code path predates it) — distinct from an
    all-zero tally, and it keeps uncached traces rendering exactly as
    they always have.
    """

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0  #: stale entries served while a refresh runs
    stores: int = 0
    evictions: int = 0
    negative_skips: int = 0  #: probes avoided via the negative cache
    cost_saved: float = 0.0  #: simulated wire cost a hit avoided

    @property
    def lookups(self) -> int:
        return self.hits + self.stale_hits + self.misses


@dataclass
class Trace:
    """A finished operation's spans and counters, ready to render."""

    spans: list[Span] = dataclass_field(default_factory=list)
    counters: dict[str, SourceCounters] = dataclass_field(default_factory=dict)
    cache: CacheCounters | None = None
    #: The owning operation's id, threaded through every exported span
    #: (NDJSON event log, Chrome trace metadata).
    trace_id: str = ""

    def walk(self) -> Iterator[Span]:
        for span in self.spans:
            yield from span.walk()

    def find(self, name: str) -> Span | None:
        """The first span (depth first) whose name matches exactly."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def render(self) -> str:
        from repro.observability.render import render_trace

        return render_trace(self)


class Tracer:
    """Thread-safe span collector with per-source counters.

    Spans nest automatically within one thread (a thread-local stack);
    code that fans out to worker threads passes ``parent=`` explicitly,
    since thread-local context does not cross the pool boundary.
    """

    def __init__(self, clock=None, trace_id: str | None = None) -> None:
        self._clock = clock or time.perf_counter
        self._origin = self._clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.spans: list[Span] = []
        self.counters: dict[str, SourceCounters] = {}
        self.cache: CacheCounters | None = None

    def now_ms(self) -> float:
        """Milliseconds since this tracer was created (wall clock)."""
        return (self._clock() - self._origin) * 1000.0

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attributes: object):
        """Open a span; nests under the current span unless ``parent`` is given."""
        span = Span(name, self.now_ms(), attributes=dict(attributes), clock_ms=self.now_ms)
        stack = self._stack()
        owner = parent if parent is not None else (stack[-1] if stack else None)
        with self._lock:
            (owner.children if owner is not None else self.spans).append(span)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end_ms = self.now_ms()

    def open_span(
        self, name: str, parent: Span | None = None, **attributes: object
    ) -> Span:
        """Open a span *without* touching the thread-local stack.

        The ``with``-based :meth:`span` nests via a per-thread stack,
        which interleaved asyncio tasks on one thread would corrupt
        (task A would pop task B's span).  Async code opens spans
        explicitly — always with an explicit ``parent`` — and closes
        them with :meth:`close_span`.
        """
        span = Span(
            name, self.now_ms(), attributes=dict(attributes), clock_ms=self.now_ms
        )
        with self._lock:
            (parent.children if parent is not None else self.spans).append(span)
        return span

    def close_span(self, span: Span) -> None:
        """Close a span opened with :meth:`open_span` (idempotent)."""
        if span.end_ms is None:
            span.end_ms = self.now_ms()

    def event(
        self, name: str, parent: Span | None = None, **attributes: object
    ) -> Span:
        """A zero-duration span: something that happened at a point in time."""
        now = self.now_ms()
        span = Span(name, now, end_ms=now, attributes=dict(attributes))
        stack = self._stack()
        owner = parent if parent is not None else (stack[-1] if stack else None)
        with self._lock:
            (owner.children if owner is not None else self.spans).append(span)
        return span

    def count(self, source_id: str, **deltas: float) -> SourceCounters:
        """Add ``deltas`` to the named source's counters (thread safe)."""
        with self._lock:
            counters = self.counters.setdefault(source_id, SourceCounters())
            for name, delta in deltas.items():
                setattr(counters, name, getattr(counters, name) + delta)
            return counters

    def count_cache(self, **deltas: float) -> CacheCounters:
        """Add ``deltas`` to the cache-tier tallies (thread safe).

        The first call materialises the :class:`CacheCounters`; until
        then the trace carries ``cache=None`` and renders unchanged.

        Every field except ``cost_saved`` is an integral tally; a
        fractional delta for one of those is a caller bug (it used to
        be silently truncated) and raises :class:`ValueError`.
        """
        with self._lock:
            if self.cache is None:
                self.cache = CacheCounters()
            for name, delta in deltas.items():
                if name != "cost_saved" and delta != int(delta):
                    raise ValueError(
                        f"cache counter {name!r} is integral; got fractional "
                        f"delta {delta!r}"
                    )
                current = getattr(self.cache, name)
                setattr(
                    self.cache,
                    name,
                    current + (delta if name == "cost_saved" else int(delta)),
                )
            return self.cache

    def trace(self) -> Trace:
        """The collected spans and counters as a :class:`Trace`."""
        return Trace(self.spans, self.counters, self.cache, trace_id=self.trace_id)
