"""Lightweight tracing and per-source metrics for the metasearch pipeline.

The paper's §3.3 worries about sources with "large response times" and
sources that "charge for their use" — concerns a metasearcher can only
act on if it can *see* where a query's time and money went.  This module
provides the minimal instrumentation the federation runtime threads
through discover → select → translate → query → merge:

* :class:`Span` — one timed phase, possibly nested, with free-form
  attributes (wall-clock is measured; simulated network time arrives as
  attributes set by the federation runner);
* :class:`Tracer` — a thread-safe factory/collector of spans plus a
  per-source :class:`SourceCounters` table (requests, retries,
  failures, timeouts, hedges, simulated latency, backoff, cost);
* :class:`Trace` — the immutable-ish view a finished operation hands
  back, rendered to text by :func:`repro.observability.render_trace`.

Everything is dependency-free and cheap enough to leave on by default.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field as dataclass_field

__all__ = [
    "CacheCounters",
    "Span",
    "SourceCounters",
    "Trace",
    "TraceCollector",
    "TraceContext",
    "Tracer",
    "ambient_span",
    "current_ambient_span",
    "current_trace_context",
    "trace_context",
]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """W3C-traceparent-style context a request carries across processes.

    ``trace_id`` names the whole distributed operation; ``span_id`` is
    the *caller's* span — the one the receiving process parents its own
    root span under, which is what stitches per-process trace fragments
    into one tree.  ``sampled`` rides along as the standard flag byte.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        """``00-{trace_id}-{span_id}-{flags}``, ids zero-padded to spec."""
        return (
            f"00-{self.trace_id:0>32}-{self.span_id:0>16}-"
            f"{'01' if self.sampled else '00'}"
        )

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a traceparent header; ``None`` for absent or malformed.

        A malformed header is dropped rather than raised on — tracing
        must never fail a request that would otherwise succeed.
        """
        if not header:
            return None
        parts = header.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
            return None
        try:
            int(trace_id, 16), int(span_id, 16), int(flags, 16)
        except ValueError:
            return None
        # Undo the padding to_traceparent applied to this module's
        # 16-hex trace ids, so a round trip compares equal.  Span ids
        # are generated at exactly 16 hex chars and pass through whole.
        if trace_id.startswith("0" * 16):
            trace_id = trace_id[16:]
        return cls(trace_id, span_id, sampled=bool(int(flags, 16) & 1))

    def child(self, span_id: str) -> "TraceContext":
        """The context a sub-request carries: same trace, new parent."""
        return TraceContext(self.trace_id, span_id, self.sampled)


#: The trace context ambient to the current thread/task, injected into
#: outbound requests by the transports.  Contextvars copy per asyncio
#: task, so interleaved coroutines never see each other's context;
#: thread pools do NOT inherit it — fan-out code captures the context
#: before dispatch and re-activates it inside each worker.
_ACTIVE_CONTEXT: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)

#: The (tracer, span) pair in-process subsystems attach child spans to
#: without explicit plumbing through every call signature.
_ACTIVE_SPAN: ContextVar["tuple[Tracer, Span] | None"] = ContextVar(
    "repro_ambient_span", default=None
)


def current_trace_context() -> TraceContext | None:
    """The ambient :class:`TraceContext`, if one is active."""
    return _ACTIVE_CONTEXT.get()


@contextmanager
def trace_context(context: TraceContext | None):
    """Activate ``context`` for the duration of the block (``None`` is a no-op)."""
    if context is None:
        yield
        return
    token = _ACTIVE_CONTEXT.set(context)
    try:
        yield
    finally:
        _ACTIVE_CONTEXT.reset(token)


def current_ambient_span() -> "tuple[Tracer, Span] | None":
    """The ambient ``(tracer, span)`` pair, if one is active."""
    return _ACTIVE_SPAN.get()


@contextmanager
def ambient_span(tracer: "Tracer", span: "Span"):
    """Make ``span`` the ambient parent for nested subsystems."""
    token = _ACTIVE_SPAN.set((tracer, span))
    try:
        yield
    finally:
        _ACTIVE_SPAN.reset(token)


@dataclass
class Span:
    """One timed phase of an operation, with nested children."""

    name: str
    start_ms: float
    end_ms: float | None = None
    attributes: dict[str, object] = dataclass_field(default_factory=dict)
    children: list["Span"] = dataclass_field(default_factory=list)
    #: Stable 16-hex id assigned at creation by the tracer; hand-built
    #: spans may leave it empty (exporters then synthesize local ids).
    span_id: str = ""
    #: For a root span continuing a remote trace: the caller's span id
    #: from the wire context, so stitched exports nest across processes.
    remote_parent_id: str = ""
    #: The owning tracer's clock (ms), so an open span can report its
    #: elapsed-so-far duration; spans built by hand leave it None.
    clock_ms: object = dataclass_field(default=None, repr=False, compare=False)

    @property
    def is_open(self) -> bool:
        """True until the span's ``with`` block (or operation) finishes."""
        return self.end_ms is None

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration; elapsed-so-far while the span is open.

        A crashed operation leaves its spans open — reporting the time
        they had accrued (rather than 0.0) keeps a partial trace from
        rendering as a pile of zero-length phases.  Spans constructed
        without a tracer clock still read 0.0 while open.
        """
        if self.end_ms is None:
            if callable(self.clock_ms):
                return self.clock_ms() - self.start_ms
            return 0.0
        return self.end_ms - self.start_ms

    def annotate(self, **attributes: object) -> None:
        """Attach or overwrite attributes on this span."""
        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class SourceCounters:
    """Per-source tallies accumulated across one traced operation.

    ``latency_ms`` and ``backoff_ms`` are *simulated* network time (what
    the wire charged); span durations are wall-clock.
    """

    requests: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    hedges: int = 0
    latency_ms: float = 0.0
    backoff_ms: float = 0.0
    cost: float = 0.0


@dataclass
class CacheCounters:
    """Cache-tier tallies for one traced operation.

    ``None`` on a :class:`Trace` means the caching subsystem never ran
    (disabled, or the code path predates it) — distinct from an
    all-zero tally, and it keeps uncached traces rendering exactly as
    they always have.
    """

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0  #: stale entries served while a refresh runs
    stores: int = 0
    evictions: int = 0
    negative_skips: int = 0  #: probes avoided via the negative cache
    cost_saved: float = 0.0  #: simulated wire cost a hit avoided

    @property
    def lookups(self) -> int:
        return self.hits + self.stale_hits + self.misses


@dataclass
class Trace:
    """A finished operation's spans and counters, ready to render."""

    spans: list[Span] = dataclass_field(default_factory=list)
    counters: dict[str, SourceCounters] = dataclass_field(default_factory=dict)
    cache: CacheCounters | None = None
    #: The owning operation's id, threaded through every exported span
    #: (NDJSON event log, Chrome trace metadata).
    trace_id: str = ""

    def walk(self) -> Iterator[Span]:
        for span in self.spans:
            yield from span.walk()

    def find(self, name: str) -> Span | None:
        """The first span (depth first) whose name matches exactly."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def render(self) -> str:
        from repro.observability.render import render_trace

        return render_trace(self)


class Tracer:
    """Thread-safe span collector with per-source counters.

    Spans nest automatically within one thread (a thread-local stack);
    code that fans out to worker threads passes ``parent=`` explicitly,
    since thread-local context does not cross the pool boundary.
    """

    def __init__(
        self,
        clock=None,
        trace_id: str | None = None,
        context: TraceContext | None = None,
    ) -> None:
        self._clock = clock or time.perf_counter
        self._origin = self._clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        if context is not None and trace_id is None:
            trace_id = context.trace_id
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        #: The wire context this tracer continues, if any: root spans
        #: record its span id as their remote parent.
        self.context = context
        # Span ids: a per-tracer random prefix plus a sequence number is
        # unique across processes w.h.p. and far cheaper than a uuid per
        # span on the hot path.
        self._span_prefix = uuid.uuid4().hex[:8]
        self._span_seq = 0
        self.spans: list[Span] = []
        self.counters: dict[str, SourceCounters] = {}
        self.cache: CacheCounters | None = None

    def _new_span_id(self) -> str:
        """A 16-hex span id (caller must hold ``self._lock``)."""
        self._span_seq += 1
        return f"{self._span_prefix}{self._span_seq:08x}"

    def now_ms(self) -> float:
        """Milliseconds since this tracer was created (wall clock)."""
        return (self._clock() - self._origin) * 1000.0

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _adopt(self, span: Span, owner: Span | None) -> None:
        """Assign the span's id, attach it, and link remote parentage.

        Caller must hold ``self._lock``.  A root span of a tracer that
        continues a wire context records the caller's span id, so the
        stitched cross-process export nests it correctly.
        """
        span.span_id = self._new_span_id()
        if owner is not None:
            owner.children.append(span)
        else:
            if self.context is not None:
                span.remote_parent_id = self.context.span_id
            self.spans.append(span)

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attributes: object):
        """Open a span; nests under the current span unless ``parent`` is given."""
        span = Span(name, self.now_ms(), attributes=dict(attributes), clock_ms=self.now_ms)
        stack = self._stack()
        owner = parent if parent is not None else (stack[-1] if stack else None)
        with self._lock:
            self._adopt(span, owner)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end_ms = self.now_ms()

    def open_span(
        self, name: str, parent: Span | None = None, **attributes: object
    ) -> Span:
        """Open a span *without* touching the thread-local stack.

        The ``with``-based :meth:`span` nests via a per-thread stack,
        which interleaved asyncio tasks on one thread would corrupt
        (task A would pop task B's span).  Async code opens spans
        explicitly — always with an explicit ``parent`` — and closes
        them with :meth:`close_span`.
        """
        span = Span(
            name, self.now_ms(), attributes=dict(attributes), clock_ms=self.now_ms
        )
        with self._lock:
            self._adopt(span, parent)
        return span

    def close_span(self, span: Span) -> None:
        """Close a span opened with :meth:`open_span` (idempotent)."""
        if span.end_ms is None:
            span.end_ms = self.now_ms()

    def event(
        self, name: str, parent: Span | None = None, **attributes: object
    ) -> Span:
        """A zero-duration span: something that happened at a point in time."""
        now = self.now_ms()
        span = Span(name, now, end_ms=now, attributes=dict(attributes))
        stack = self._stack()
        owner = parent if parent is not None else (stack[-1] if stack else None)
        with self._lock:
            self._adopt(span, owner)
        return span

    def count(self, source_id: str, **deltas: float) -> SourceCounters:
        """Add ``deltas`` to the named source's counters (thread safe)."""
        with self._lock:
            counters = self.counters.setdefault(source_id, SourceCounters())
            for name, delta in deltas.items():
                setattr(counters, name, getattr(counters, name) + delta)
            return counters

    def count_cache(self, **deltas: float) -> CacheCounters:
        """Add ``deltas`` to the cache-tier tallies (thread safe).

        The first call materialises the :class:`CacheCounters`; until
        then the trace carries ``cache=None`` and renders unchanged.

        Every field except ``cost_saved`` is an integral tally; a
        fractional delta for one of those is a caller bug (it used to
        be silently truncated) and raises :class:`ValueError`.
        """
        with self._lock:
            if self.cache is None:
                self.cache = CacheCounters()
            for name, delta in deltas.items():
                if name != "cost_saved" and delta != int(delta):
                    raise ValueError(
                        f"cache counter {name!r} is integral; got fractional "
                        f"delta {delta!r}"
                    )
                current = getattr(self.cache, name)
                setattr(
                    self.cache,
                    name,
                    current + (delta if name == "cost_saved" else int(delta)),
                )
            return self.cache

    def context_for(self, span: Span) -> TraceContext:
        """The :class:`TraceContext` an outbound request under ``span`` carries."""
        return TraceContext(self.trace_id, span.span_id)

    def trace(self) -> Trace:
        """The collected spans and counters as a :class:`Trace`."""
        return Trace(self.spans, self.counters, self.cache, trace_id=self.trace_id)


class TraceCollector:
    """A ring-buffered sink for finished server-side trace fragments.

    A published endpoint (source or broker leaf) that handles a request
    carrying a :class:`TraceContext` records its server-side span into a
    per-request :class:`Tracer` and hands the finished :class:`Trace`
    here.  :func:`repro.observability.stitch_traces` merges these
    fragments with the client's own trace into one cross-process tree.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: list[Trace] = []

    def add(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)
            if len(self._traces) > self.capacity:
                del self._traces[: len(self._traces) - self.capacity]

    def traces(self, trace_id: str | None = None) -> list[Trace]:
        """Collected fragments, optionally only those of one trace."""
        with self._lock:
            snapshot = list(self._traces)
        if trace_id is None:
            return snapshot
        return [trace for trace in snapshot if trace.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
