"""Exporters: Prometheus text exposition, Chrome trace JSON, NDJSON.

Three renderings of the telemetry layer, one per audience:

* :func:`render_prometheus` — the registry's families in the Prometheus
  text exposition format, ready to serve from a ``/metrics`` endpoint
  (both transports do; see :mod:`repro.transport`);
* :func:`chrome_trace` / :func:`render_chrome_trace` — a finished
  :class:`~repro.observability.Trace` as ``chrome://tracing`` /
  Perfetto JSON (complete ``"X"`` events, microsecond timestamps), so
  an end-to-end metasearch round can be inspected visually;
* :func:`trace_events` / :func:`render_ndjson` — the same trace as a
  structured NDJSON event log: one JSON object per span, with the
  operation's trace id and parent/child span ids threaded through, the
  shape a log pipeline ingests.

Cross-process traces stitch here too: :func:`stitch_traces` merges a
client-side trace with the server-side fragments a
:class:`~repro.observability.TraceCollector` gathered (matched by trace
id, nested by the fragments' remote parent span ids) into one flat
NDJSON event list; :func:`stitched_chrome_trace` renders the same
merge as a multi-process Perfetto file.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable

from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.tracing import Span, Trace

__all__ = [
    "render_prometheus",
    "chrome_trace",
    "render_chrome_trace",
    "trace_events",
    "render_ndjson",
    "stitch_traces",
    "render_stitched_ndjson",
    "stitched_chrome_trace",
]


# -- Prometheus text exposition -------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    # Non-finite values are legal sample values (a histogram that
    # observed +inf has sum=inf) and must render as the exposition
    # format's spellings, not crash int().
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _exemplar_text(histogram: Histogram, index: int) -> str:
    """OpenMetrics-style exemplar suffix for bucket ``index`` (or '')."""
    exemplar = histogram.exemplars.get(index)
    if exemplar is None:
        return ""
    trace_id, observed = exemplar
    return (
        f' # {{trace_id="{_escape_label_value(trace_id)}"}} '
        f"{_format_value(observed)}"
    )


def _histogram_lines(
    name: str,
    names: tuple[str, ...],
    values: tuple[str, ...],
    histogram: Histogram,
    exemplars: bool = False,
) -> list[str]:
    lines: list[str] = []
    cumulative = 0
    for index, (bound, bucket_count) in enumerate(
        zip(histogram.bounds, histogram.bucket_counts)
    ):
        cumulative += bucket_count
        le_names = names + ("le",)
        le_values = values + (_format_value(bound),)
        suffix = _exemplar_text(histogram, index) if exemplars else ""
        lines.append(
            f"{name}_bucket{_label_text(le_names, le_values)} {cumulative}"
            f"{suffix}"
        )
    suffix = (
        _exemplar_text(histogram, len(histogram.bounds)) if exemplars else ""
    )
    lines.append(
        f'{name}_bucket{_label_text(names + ("le",), values + ("+Inf",))} '
        f"{histogram.count}{suffix}"
    )
    lines.append(f"{name}_sum{_label_text(names, values)} "
                 f"{_format_value(histogram.sum)}")
    lines.append(f"{name}_count{_label_text(names, values)} {histogram.count}")
    return lines


def render_prometheus(registry: MetricsRegistry, exemplars: bool = False) -> str:
    """The registry as Prometheus text exposition (version 0.0.4).

    Families sort by name and children by label values, so two renders
    of the same state are byte-identical — golden tests and diff-based
    scrapers both rely on that.  ``exemplars=True`` appends
    OpenMetrics-style ``# {trace_id="..."} value`` exemplar suffixes to
    histogram bucket lines that have one; the default stays plain
    text-format 0.0.4 for scrapers that reject the extension.
    """
    lines: list[str] = []
    for family in registry.families():
        children = family.children()
        if not children:
            continue
        if family.help_text:
            lines.append(f"# HELP {family.name} {_escape_help(family.help_text)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, instrument in children:
            if family.kind == "histogram":
                lines.extend(
                    _histogram_lines(
                        family.name,
                        family.label_names,
                        label_values,
                        instrument,
                        exemplars=exemplars,
                    )
                )
            else:
                lines.append(
                    f"{family.name}{_label_text(family.label_names, label_values)} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# -- Chrome trace format ---------------------------------------------------


def _chrome_events(
    span: Span, parent_name: str | None, trace_id: str, events: list[dict]
) -> None:
    args: dict[str, object] = {str(k): v for k, v in span.attributes.items()}
    if parent_name is not None:
        args["parent"] = parent_name
    if span.is_open:
        args["open"] = True
    events.append(
        {
            "name": span.name,
            "cat": "metasearch",
            "ph": "X",
            "ts": round(span.start_ms * 1000.0, 1),  # microseconds
            "dur": round(span.duration_ms * 1000.0, 1),
            "pid": 1,
            "tid": 1,
            "args": args,
        }
    )
    for child in span.children:
        _chrome_events(child, span.name, trace_id, events)


def chrome_trace(trace: Trace) -> dict:
    """A trace as a ``chrome://tracing`` / Perfetto JSON object.

    Spans become complete (``"X"``) events whose timestamp containment
    mirrors the span tree; each event additionally carries its parent
    span's name in ``args.parent`` so the hierarchy survives tools that
    ignore nesting.  Open spans are exported with their elapsed-so-far
    duration and ``args.open = true``.
    """
    events: list[dict] = []
    for span in trace.spans:
        _chrome_events(span, None, trace.trace_id, events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace.trace_id},
    }


def render_chrome_trace(trace: Trace, indent: int | None = None) -> str:
    return json.dumps(chrome_trace(trace), indent=indent, sort_keys=True)


# -- NDJSON structured event log -------------------------------------------


def trace_events(trace: Trace, stable_ids: bool = False) -> list[dict]:
    """The trace as a flat list of structured span events.

    By default span ids are assigned depth-first at export time
    (1-based integers); ``parent_id`` is ``None`` for roots.  With
    ``stable_ids=True`` the rows carry the spans' tracer-assigned hex
    ids instead — the ids that cross the wire in ``traceparent``
    headers — and a root span continuing a remote trace reports that
    caller's span id as its ``parent_id``, which is what lets
    :func:`stitch_traces` splice fragments from different processes
    into one tree.  (Hand-built spans without an id get a synthesized
    ``local-N`` id.)  Per-source counters follow the spans as
    ``kind="source_counters"`` rows so one NDJSON stream carries the
    whole operation.
    """
    rows: list[dict] = []
    next_id = [0]

    def span_key(span: Span):
        next_id[0] += 1
        if not stable_ids:
            return next_id[0]
        return span.span_id or f"local-{next_id[0]}"

    def visit(span: Span, parent_id) -> None:
        span_id = span_key(span)
        if parent_id is None and stable_ids and span.remote_parent_id:
            parent_id = span.remote_parent_id
        rows.append(
            {
                "kind": "span",
                "trace_id": trace.trace_id,
                "span_id": span_id,
                "parent_id": parent_id,
                "name": span.name,
                "start_ms": round(span.start_ms, 3),
                "duration_ms": round(span.duration_ms, 3),
                "open": span.is_open,
                "attributes": dict(span.attributes),
            }
        )
        for child in span.children:
            visit(child, span_id)

    for span in trace.spans:
        visit(span, None)
    for source_id in sorted(trace.counters):
        tally = trace.counters[source_id]
        rows.append(
            {
                "kind": "source_counters",
                "trace_id": trace.trace_id,
                "source_id": source_id,
                "requests": tally.requests,
                "retries": tally.retries,
                "failures": tally.failures,
                "timeouts": tally.timeouts,
                "hedges": tally.hedges,
                "latency_ms": round(tally.latency_ms, 3),
                "backoff_ms": round(tally.backoff_ms, 3),
                "cost": round(tally.cost, 4),
            }
        )
    return rows


def render_ndjson(trace: Trace) -> str:
    """One JSON object per line: spans depth-first, then counters."""
    rows = trace_events(trace)
    return "\n".join(json.dumps(row, sort_keys=True) for row in rows) + (
        "\n" if rows else ""
    )


# -- cross-process stitching -----------------------------------------------


def stitch_traces(root: Trace, fragments: Iterable[Trace]) -> list[dict]:
    """Merge a client trace with its server-side fragments into one log.

    ``fragments`` is typically ``collector.traces()`` from one or more
    :class:`~repro.observability.TraceCollector` sinks; only fragments
    sharing the root's trace id are taken.  Every row uses stable hex
    span ids, so a fragment's root span — whose ``parent_id`` is the
    caller's span id carried in the ``traceparent`` header — hangs off
    the exact client-side span that issued the request.  The result is
    one flat NDJSON-ready event list forming a single cross-process
    tree under one trace id.
    """
    rows = trace_events(root, stable_ids=True)
    for fragment in fragments:
        if fragment.trace_id != root.trace_id:
            continue
        rows.extend(trace_events(fragment, stable_ids=True))
    return rows


def render_stitched_ndjson(root: Trace, fragments: Iterable[Trace]) -> str:
    """:func:`stitch_traces` as NDJSON text."""
    rows = stitch_traces(root, fragments)
    return "\n".join(json.dumps(row, sort_keys=True) for row in rows) + (
        "\n" if rows else ""
    )


def stitched_chrome_trace(root: Trace, fragments: Iterable[Trace]) -> dict:
    """A multi-process Perfetto file: the client trace plus fragments.

    The client's spans render as pid 1; each matching fragment gets its
    own pid (2, 3, …) since its timestamps come from the serving
    process's own clock and only nest logically, not temporally.  Each
    fragment root carries ``args.remote_parent`` — the client-side span
    id it hangs under — so the cross-process link survives visually.
    """
    doc = chrome_trace(root)
    events = doc["traceEvents"]
    pid = 1
    for fragment in fragments:
        if fragment.trace_id != root.trace_id:
            continue
        pid += 1
        fragment_events: list[dict] = []
        for span in fragment.spans:
            root_index = len(fragment_events)
            _chrome_events(span, None, fragment.trace_id, fragment_events)
            if span.remote_parent_id:
                fragment_events[root_index]["args"]["remote_parent"] = (
                    span.remote_parent_id
                )
        for event in fragment_events:
            event["pid"] = pid
        events.extend(fragment_events)
    return doc
