"""The wide-event query log: one canonical record per search.

Metrics aggregate away the question "what exactly happened to *that*
query?"; traces answer it one operation at a time but are too heavy to
keep for every request.  The wide-event log is the middle layer modern
observability practice settles on: a single flat, richly-attributed
record per top-level operation — query shape, selected sources,
per-phase latency, cache/retry/hedge/shed tallies, the trace id to
pivot into the full trace — ring-buffered in memory and exportable as
NDJSON for any log pipeline.

:class:`~repro.metasearch.client.Metasearcher` emits one
:class:`QueryLogRecord` per ``search``/``search_stream`` call on every
exit path (wire answers, cache hits, stream terminations, errors and
sheds alike) into the process-wide :class:`QueryLog`
(:func:`get_query_log`); ``python -m repro querylog`` tails it.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field as dataclass_field

__all__ = [
    "QueryLog",
    "QueryLogRecord",
    "get_query_log",
    "set_query_log",
]


@dataclass(slots=True)
class QueryLogRecord:
    """Everything one search was, did, and cost — one flat event.

    ``outcome`` is how the answer was produced: ``wire`` (a full query
    round), ``hit`` / ``stale`` (served from the result cache),
    ``stream`` (a streaming round), ``error`` or ``shed`` (the search
    raised).  ``trace_id`` pivots into the matching trace.
    """

    terms: str
    outcome: str
    total_ms: float
    trace_id: str = ""
    selected_sources: tuple[str, ...] = ()
    phase_ms: dict[str, float] = dataclass_field(default_factory=dict)
    n_results: int = 0
    sources_ok: int = 0
    sources_failed: int = 0
    sources_skipped: int = 0
    requests: int = 0
    retries: int = 0
    hedges: int = 0
    timeouts: int = 0
    failures: int = 0
    cache_hits: int = 0
    cache_stale_hits: int = 0
    negative_skips: int = 0
    cost: float = 0.0
    terminated_early: bool = False
    error: str = ""
    unix_ms: float = 0.0

    def to_json(self) -> dict:
        """The record as one JSON-ready object (phase times rounded)."""
        return {
            "kind": "query",
            "terms": self.terms,
            "outcome": self.outcome,
            "total_ms": round(self.total_ms, 3),
            "trace_id": self.trace_id,
            "selected_sources": list(self.selected_sources),
            "phase_ms": {
                phase: round(duration, 3)
                for phase, duration in sorted(self.phase_ms.items())
            },
            "n_results": self.n_results,
            "sources_ok": self.sources_ok,
            "sources_failed": self.sources_failed,
            "sources_skipped": self.sources_skipped,
            "requests": self.requests,
            "retries": self.retries,
            "hedges": self.hedges,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "cache_hits": self.cache_hits,
            "cache_stale_hits": self.cache_stale_hits,
            "negative_skips": self.negative_skips,
            "cost": round(self.cost, 4),
            "terminated_early": self.terminated_early,
            "error": self.error,
            "unix_ms": round(self.unix_ms, 1),
        }


class QueryLog:
    """A thread-safe ring buffer of :class:`QueryLogRecord`\\ s.

    Args:
        capacity: records kept; the oldest fall off the ring.
        slow_ms: threshold above which a record counts as a slow query
            (``None`` disables the classification).
        enabled: a disabled log drops records at the door — the
            instrumentation points stay in place and cost one attribute
            check.
    """

    def __init__(
        self,
        capacity: int = 4096,
        slow_ms: float | None = None,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self.enabled = enabled
        self._lock = threading.Lock()
        self._records: list[QueryLogRecord] = []
        self.total_recorded = 0
        self.total_slow = 0

    @classmethod
    def disabled(cls) -> "QueryLog":
        """A log that records nothing."""
        return cls(enabled=False)

    def record(self, record: QueryLogRecord) -> None:
        if not self.enabled:
            return
        if not record.unix_ms:
            record.unix_ms = time.time() * 1000.0
        with self._lock:
            self._records.append(record)
            if len(self._records) > self.capacity:
                del self._records[: len(self._records) - self.capacity]
            self.total_recorded += 1
            if self.slow_ms is not None and record.total_ms >= self.slow_ms:
                self.total_slow += 1

    def records(self, outcome: str | None = None) -> list[QueryLogRecord]:
        """Buffered records oldest-first, optionally one outcome only."""
        with self._lock:
            snapshot = list(self._records)
        if outcome is None:
            return snapshot
        return [record for record in snapshot if record.outcome == outcome]

    def slow_queries(self) -> list[QueryLogRecord]:
        """Buffered records at or above the slow threshold, slowest first."""
        if self.slow_ms is None:
            return []
        slow = [
            record for record in self.records() if record.total_ms >= self.slow_ms
        ]
        slow.sort(key=lambda record: -record.total_ms)
        return slow

    def to_ndjson(self) -> str:
        """The buffer as NDJSON, one record per line, oldest first."""
        rows = [record.to_json() for record in self.records()]
        return "\n".join(json.dumps(row, sort_keys=True) for row in rows) + (
            "\n" if rows else ""
        )

    def write_ndjson(self, path: str) -> int:
        """Write the buffer to ``path``; returns the record count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        return len(records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


_default_query_log = QueryLog()
_query_log_lock = threading.Lock()


def get_query_log() -> QueryLog:
    """The process-wide query log the metasearcher records to."""
    return _default_query_log


def set_query_log(log: QueryLog) -> QueryLog:
    """Swap the process-wide query log (tests, embedders); returns it."""
    global _default_query_log
    with _query_log_lock:
        _default_query_log = log
    return log
