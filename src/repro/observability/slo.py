"""SLOs over the live metrics: objectives, error budgets, burn rates.

The registry answers "what is the p99 *right now*"; operating a
metasearcher needs the next question — "are we inside the promise we
made, and how fast are we spending the slack?"  This module evaluates
declarative :class:`SloObjective`\\ s straight from a
:class:`~repro.observability.MetricsRegistry`:

* **availability** objectives read a labeled counter family and count
  the children whose label value is in ``bad_values`` as failures
  (default: searches that ended ``error`` or ``shed``);
* **latency** objectives read a histogram family and count the
  observations at or under ``threshold_ms`` as good — exact whenever
  the threshold is a bucket bound, conservative otherwise.

A :class:`SloMonitor` turns those into **error budgets** (the fraction
of the allowed failure rate still unspent) and multi-window **burn
rates** (Google-SRE-style long/short window pairs: a page fires only
when both windows burn faster than the pair's factor, so one bad
second cannot page and a slow leak still does).  The monitor exports a
``slo_error_budget_remaining`` gauge family back into the registry and
feeds :class:`~repro.broker.AdmissionPolicy` via
:meth:`SloMonitor.min_budget_remaining`, letting the broker shed load
while the budget is burning instead of after it is gone.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dataclass_field

from repro.observability.metrics import (
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "BurnAlert",
    "BurnWindow",
    "SloMonitor",
    "SloObjective",
    "SloPolicy",
    "SloReport",
]


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective evaluated from the metrics registry.

    Attributes:
        name: the objective's id (gauge label, report key).
        kind: ``"availability"`` (labeled counter, ``bad_values`` are
            failures) or ``"latency"`` (histogram, observations at or
            under ``threshold_ms`` are good).
        target: the promised good fraction, e.g. ``0.99``.
        family: the metric family the objective reads.
        label: for availability — the label that classifies outcomes.
        bad_values: for availability — label values that count as bad.
        threshold_ms: for latency — the good/bad boundary.
    """

    name: str
    kind: str
    target: float
    family: str
    label: str = ""
    bad_values: tuple[str, ...] = ()
    threshold_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown objective kind: {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be strictly between 0 and 1")
        if self.kind == "availability" and not self.label:
            raise ValueError("availability objectives need a label")
        if self.kind == "latency" and self.threshold_ms <= 0:
            raise ValueError("latency objectives need threshold_ms > 0")

    def totals(self, registry: MetricsRegistry) -> tuple[float, float]:
        """``(good, total)`` events observed so far (both 0.0 when the
        family has recorded nothing — the objective is then vacuously
        met)."""
        family = registry.family(self.family)
        if family is None:
            return 0.0, 0.0
        if self.kind == "availability":
            good = total = 0.0
            try:
                index = family.label_names.index(self.label)
            except ValueError:
                return 0.0, 0.0
            for label_values, instrument in family.children():
                value = float(instrument.value)
                total += value
                if label_values[index] not in self.bad_values:
                    good += value
            return good, total
        good = total = 0.0
        for _, instrument in family.children():
            good += self._under_threshold(instrument)
            total += instrument.count
        return good, float(total)

    def _under_threshold(self, histogram: Histogram) -> float:
        """Observations at or under the threshold, from the buckets.

        Bucket ``i`` holds values in ``(bounds[i-1], bounds[i]]``, so
        the count is exact when the threshold is a bound and otherwise
        undercounts (conservative: never claims good events it cannot
        prove).
        """
        good = 0
        for bound, bucket_count in zip(histogram.bounds, histogram.bucket_counts):
            if bound > self.threshold_ms:
                break
            good += bucket_count
        return float(good)


@dataclass(frozen=True)
class BurnWindow:
    """One long/short burn-rate window pair.

    The alert for this pair fires when the error budget burned per unit
    time exceeds ``factor`` times the sustainable rate over *both*
    windows — the long window proves the burn is real, the short one
    proves it is still happening.
    """

    long_ms: float
    short_ms: float
    factor: float

    def __post_init__(self) -> None:
        if self.short_ms <= 0 or self.long_ms <= self.short_ms:
            raise ValueError("need 0 < short_ms < long_ms")
        if self.factor <= 1.0:
            raise ValueError("factor must exceed 1.0")


@dataclass(frozen=True)
class SloPolicy:
    """The objectives a deployment promises, plus its alert windows."""

    objectives: tuple[SloObjective, ...]
    windows: tuple[BurnWindow, ...] = (
        BurnWindow(long_ms=3_600_000.0, short_ms=300_000.0, factor=14.4),
        BurnWindow(long_ms=21_600_000.0, short_ms=1_800_000.0, factor=6.0),
    )

    @classmethod
    def default(cls) -> "SloPolicy":
        """The stock metasearch promise: availability, p99, first result."""
        return cls(
            objectives=(
                SloObjective(
                    name="search-availability",
                    kind="availability",
                    target=0.99,
                    family="metasearch_searches_total",
                    label="result",
                    bad_values=("error", "shed"),
                ),
                SloObjective(
                    name="search-latency-p99",
                    kind="latency",
                    target=0.99,
                    family="metasearch_search_ms",
                    threshold_ms=500.0,
                ),
                SloObjective(
                    name="stream-first-result",
                    kind="latency",
                    target=0.95,
                    family="stream_first_result_ms",
                    threshold_ms=250.0,
                ),
            )
        )


@dataclass(frozen=True)
class BurnAlert:
    """One fired burn-rate alert, for a report's ``alerts`` list."""

    objective: str
    window: BurnWindow
    long_burn: float
    short_burn: float

    def describe(self) -> str:
        return (
            f"{self.objective}: burn {self.long_burn:.1f}x over "
            f"{self.window.long_ms / 60000.0:.0f}m and "
            f"{self.short_burn:.1f}x over "
            f"{self.window.short_ms / 60000.0:.1f}m "
            f"(threshold {self.window.factor:.1f}x)"
        )


@dataclass
class SloReport:
    """One objective's evaluated state."""

    objective: SloObjective
    good: float
    total: float
    alerts: list[BurnAlert] = dataclass_field(default_factory=list)

    @property
    def compliance(self) -> float:
        """Good fraction so far; 1.0 before any event."""
        return self.good / self.total if self.total else 1.0

    @property
    def budget_remaining(self) -> float:
        """Error budget left, 0-1: 1 = untouched, 0 = spent (clamped)."""
        allowed = 1.0 - self.objective.target
        burned = (1.0 - self.compliance) / allowed
        return min(max(1.0 - burned, 0.0), 1.0)

    def describe(self) -> str:
        status = "OK" if self.budget_remaining > 0 else "EXHAUSTED"
        line = (
            f"{self.objective.name:<22} target={self.objective.target:.3f} "
            f"compliance={self.compliance:.4f} "
            f"budget={self.budget_remaining * 100:5.1f}% {status}"
        )
        for alert in self.alerts:
            line += f"\n  ALERT {alert.describe()}"
        return line


class SloMonitor:
    """Evaluates a policy's objectives against the live registry.

    Call :meth:`snapshot` periodically (each zipf-replay round, a
    scrape loop, a test step) to give the burn-rate windows their
    history; :meth:`evaluate` is always available and burn alerts just
    stay silent until two snapshots cover a window.
    """

    def __init__(
        self,
        policy: SloPolicy | None = None,
        registry: MetricsRegistry | None = None,
        clock=None,
    ) -> None:
        self.policy = policy or SloPolicy.default()
        self._registry = registry
        self._clock = clock or time.monotonic
        self._origin = self._clock()
        self._lock = threading.Lock()
        #: (monitor ms, {objective name: (good, total)}) history.
        self._snapshots: list[tuple[float, dict[str, tuple[float, float]]]] = []

    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def now_ms(self) -> float:
        return (self._clock() - self._origin) * 1000.0

    def _totals(self) -> dict[str, tuple[float, float]]:
        registry = self.registry()
        return {
            objective.name: objective.totals(registry)
            for objective in self.policy.objectives
        }

    def snapshot(self) -> None:
        """Record the current totals for burn-window evaluation."""
        now = self.now_ms()
        totals = self._totals()
        horizon = max(
            (window.long_ms for window in self.policy.windows), default=0.0
        )
        with self._lock:
            self._snapshots.append((now, totals))
            # Keep one snapshot older than the horizon so the longest
            # window always has a baseline to diff against.
            while (
                len(self._snapshots) > 2
                and now - self._snapshots[1][0] > horizon
            ):
                self._snapshots.pop(0)

    def _window_burn(
        self, objective: SloObjective, now_totals: tuple[float, float],
        now: float, window_ms: float,
    ) -> float:
        """Budget burn rate over the trailing window (1.0 = sustainable).

        0.0 when no snapshot predates the window — silence, not alarm.
        """
        with self._lock:
            baseline = None
            for stamp, totals in reversed(self._snapshots):
                if now - stamp >= window_ms:
                    baseline = totals.get(objective.name, (0.0, 0.0))
                    break
            if baseline is None:
                return 0.0
        good, total = now_totals
        base_good, base_total = baseline
        events = total - base_total
        if events <= 0:
            return 0.0
        bad_fraction = ((total - good) - (base_total - base_good)) / events
        return bad_fraction / (1.0 - objective.target)

    def evaluate(self) -> list[SloReport]:
        """Every objective's compliance, budget, and fired burn alerts."""
        now = self.now_ms()
        reports: list[SloReport] = []
        current = self._totals()
        for objective in self.policy.objectives:
            good, total = current[objective.name]
            report = SloReport(objective, good, total)
            for window in self.policy.windows:
                long_burn = self._window_burn(
                    objective, (good, total), now, window.long_ms
                )
                short_burn = self._window_burn(
                    objective, (good, total), now, window.short_ms
                )
                if long_burn >= window.factor and short_burn >= window.factor:
                    report.alerts.append(
                        BurnAlert(objective.name, window, long_burn, short_burn)
                    )
            reports.append(report)
        return reports

    def min_budget_remaining(self) -> float:
        """The tightest objective's remaining budget (1.0 when idle).

        This is the one number admission control keys on: when any
        objective's budget is nearly gone, shedding some load now beats
        missing the promise for everyone later.
        """
        reports = self.evaluate()
        if not reports:
            return 1.0
        return min(report.budget_remaining for report in reports)

    def export_gauges(self) -> None:
        """Publish per-objective gauges back into the registry."""
        registry = self.registry()
        budget = registry.gauge(
            "slo_error_budget_remaining",
            "Fraction of each SLO's error budget still unspent (0-1).",
            labels=("objective",),
        )
        compliance = registry.gauge(
            "slo_compliance",
            "Observed good fraction per SLO objective (0-1).",
            labels=("objective",),
        )
        for report in self.evaluate():
            budget.labels(objective=report.objective.name).set(
                report.budget_remaining
            )
            compliance.labels(objective=report.objective.name).set(
                report.compliance
            )

    def describe(self) -> str:
        """A terminal-ready multi-line budget readout."""
        return "\n".join(report.describe() for report in self.evaluate())
