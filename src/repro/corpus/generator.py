"""Deterministic synthetic collection generator.

The paper's world — Dialog, CS-TR, web crawls — is replaced by seeded
synthetic collections (see DESIGN.md's substitution table).  Each
collection has a topic mixture; document text is drawn from the topic
pools under a Zipfian rank-frequency distribution, which reproduces the
skewed tf/df statistics that source selection (GlOSS) and rank merging
depend on.  Everything is driven by an explicit ``random.Random(seed)``
so corpora are reproducible across runs and machines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field

from collections import Counter

from repro.corpus import vocabulary as V
from repro.engine import fields as F
from repro.engine.documents import Document
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection

__all__ = [
    "CollectionSpec",
    "SummaryPopulationSpec",
    "generate_collection",
    "generate_source_summaries",
    "zipf_weights",
]


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Zipfian weights 1/rank^exponent for ``count`` items."""
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


@dataclass(frozen=True)
class CollectionSpec:
    """Recipe for one synthetic collection.

    Attributes:
        name: source id, also used in linkage URLs.
        topics: topic name → mixture weight.  Weights need not sum to 1;
            they are normalized.  Topic names must exist in
            :data:`repro.corpus.vocabulary.TOPICS`.
        size: number of documents.
        general_fraction: share of body words drawn from the shared
            general pool (creates cross-collection overlap).
        spanish_fraction: share of documents written in Spanish.
        body_words: (min, max) body length in words.
        seed: RNG seed; two specs with equal seeds and parameters yield
            identical collections.
        with_abstract: whether documents get an ``abstract`` field
            (the optional field of §3.1).
    """

    name: str
    topics: dict[str, float]
    size: int = 100
    general_fraction: float = 0.25
    spanish_fraction: float = 0.0
    body_words: tuple[int, int] = (60, 180)
    seed: int = 0
    with_abstract: bool = True

    def validate(self) -> None:
        unknown = set(self.topics) - set(V.TOPICS)
        if unknown:
            raise ValueError(f"unknown topics: {sorted(unknown)}")
        if not 0.0 <= self.general_fraction <= 1.0:
            raise ValueError("general_fraction must be in [0, 1]")
        if not 0.0 <= self.spanish_fraction <= 1.0:
            raise ValueError("spanish_fraction must be in [0, 1]")


@dataclass
class _Sampler:
    """Zipf-weighted word sampler over a fixed pool."""

    pool: list[str]
    rng: random.Random
    exponent: float = 1.0
    _weights: list[float] = dataclass_field(default_factory=list)

    def __post_init__(self) -> None:
        # Shuffle once so the Zipf head differs between collections
        # sharing a topic (different seeds -> different frequent words).
        self.pool = list(self.pool)
        self.rng.shuffle(self.pool)
        self._weights = zipf_weights(len(self.pool), self.exponent)

    def take(self, count: int) -> list[str]:
        return self.rng.choices(self.pool, weights=self._weights, k=count)


def generate_collection(spec: CollectionSpec) -> list[Document]:
    """Generate the documents of one collection, deterministically."""
    spec.validate()
    rng = random.Random(spec.seed)

    topic_names = sorted(spec.topics)
    topic_weights = [spec.topics[name] for name in topic_names]
    samplers = {
        name: _Sampler(V.TOPICS[name], random.Random(rng.random()))
        for name in topic_names
    }
    general = _Sampler(V.GENERAL_WORDS, random.Random(rng.random()))
    spanish = _Sampler(V.SPANISH_WORDS, random.Random(rng.random()))

    documents: list[Document] = []
    for index in range(spec.size):
        is_spanish = rng.random() < spec.spanish_fraction
        topic = rng.choices(topic_names, weights=topic_weights, k=1)[0]
        if is_spanish:
            body_pool: _Sampler = spanish
        else:
            body_pool = samplers[topic]

        length = rng.randint(*spec.body_words)
        n_general = int(length * spec.general_fraction)
        words = body_pool.take(length - n_general) + general.take(n_general)
        rng.shuffle(words)

        title_words = body_pool.take(2)
        templates = V.SPANISH_TITLE_TEMPLATES if is_spanish else V.TITLE_TEMPLATES
        template = rng.choice(templates)
        title = template.format(w1=title_words[0].capitalize(), w2=title_words[1])

        author = "{0} {1}".format(
            rng.choice(V.AUTHOR_POOL["first"]), rng.choice(V.AUTHOR_POOL["last"])
        )
        # Dates span 1994-1996, the paper's era.
        date = "199{0}-{1:02d}-{2:02d}".format(
            rng.randint(4, 6), rng.randint(1, 12), rng.randint(1, 28)
        )
        linkage = f"http://{spec.name.lower()}.example.org/doc{index:04d}.html"

        doc_fields = {
            F.TITLE: title,
            F.AUTHOR: author,
            F.BODY_OF_TEXT: " ".join(words),
            F.DATE_LAST_MODIFIED: date,
            F.LINKAGE_TYPE: "text/html",
            F.LANGUAGES: "es" if is_spanish else "en-US",
        }
        if spec.with_abstract:
            doc_fields[F.ABSTRACT] = " ".join(words[: min(25, len(words))])
        if rng.random() < 0.3:
            # Occasional cross references exercise the Basic-1 field.
            target = rng.randrange(spec.size)
            doc_fields[F.CROSS_REFERENCE_LINKAGE] = (
                f"http://{spec.name.lower()}.example.org/doc{target:04d}.html"
            )

        documents.append(
            Document(linkage, doc_fields, language="es" if is_spanish else "en")
        )
    return documents


@dataclass(frozen=True)
class SummaryPopulationSpec:
    """Recipe for a federation-sized *population of content summaries*.

    Selection never reads documents — only summaries — so benchmarking
    it at a thousand sources does not require materializing a thousand
    document collections.  This spec drives a summary-level generator:
    each source draws its word mass Zipf-style straight from its topic
    pools (the same pools and skew :func:`generate_collection` uses),
    and the counts become a :class:`SContentSummary` directly.

    Attributes:
        n_sources: how many sources to fabricate.
        topics_per_source: topics mixed into each source (cycled over
            :data:`repro.corpus.vocabulary.TOPICS` deterministically).
        docs_per_source: inclusive (min, max) document-count range.
        words_per_source: total body-word draws per source — the word
            mass whose Zipf head shapes the summary statistics.
        general_fraction: share of draws from the shared general pool
            (cross-source overlap, exactly as in document generation).
        seed: master RNG seed.
    """

    n_sources: int
    topics_per_source: int = 1
    docs_per_source: tuple[int, int] = (40, 400)
    words_per_source: int = 1200
    general_fraction: float = 0.15
    seed: int = 0

    def validate(self) -> None:
        if self.n_sources <= 0:
            raise ValueError("n_sources must be positive")
        if not 1 <= self.topics_per_source <= len(V.TOPICS):
            raise ValueError("topics_per_source out of range")
        if not 0.0 <= self.general_fraction <= 1.0:
            raise ValueError("general_fraction must be in [0, 1]")


def generate_source_summaries(
    spec: SummaryPopulationSpec,
) -> dict[str, SContentSummary]:
    """``source id → content summary`` for a whole synthetic federation.

    Deterministic for a given spec.  Document frequencies are derived
    from the sampled occurrence counts under a mild within-document
    clustering assumption (a word seen c times lands in roughly 3c/4
    distinct documents, capped by both c and the document count), which
    keeps df ≤ postings and df ≤ num_docs — the invariants GlOSS-style
    selectors lean on.
    """
    spec.validate()
    rng = random.Random(spec.seed)
    topic_names = sorted(V.TOPICS)
    summaries: dict[str, SContentSummary] = {}
    for index in range(spec.n_sources):
        source_rng = random.Random(rng.random())
        picked = [
            topic_names[(index + offset) % len(topic_names)]
            for offset in range(spec.topics_per_source)
        ]
        n_general = int(spec.words_per_source * spec.general_fraction)
        n_topical = spec.words_per_source - n_general
        words: list[str] = []
        per_topic = n_topical // len(picked)
        for topic in picked:
            sampler = _Sampler(V.TOPICS[topic], source_rng)
            words.extend(sampler.take(per_topic))
        if n_general:
            words.extend(_Sampler(V.GENERAL_WORDS, source_rng).take(n_general))
        num_docs = source_rng.randint(*spec.docs_per_source)
        counts = Counter(words)
        entries = [
            SummaryEntryLine(
                word,
                postings,
                max(1, min(num_docs, postings, (3 * postings) // 4 + 1)),
            )
            for word, postings in counts.items()
        ]
        # Most frequent first, then alphabetical — the export order
        # build_content_summary produces.
        entries.sort(key=lambda entry: (-entry.postings, entry.word))
        summaries[f"Source-{index:04d}"] = SContentSummary(
            num_docs=num_docs,
            sections=(SummarySection("body-of-text", "en", tuple(entries)),),
        )
    return summaries
