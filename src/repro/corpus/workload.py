"""Query workloads and the relevance oracle.

With no human relevance judgments available (the paper has none), the
standard federated-search surrogate applies: queries are *drawn from
documents*, and relevance is defined by the generating process — a
document is relevant to a query iff it contains every query term in its
body.  This oracle is transparent, deterministic, and independent of
any engine's ranking algorithm, so it cannot favour one selection or
merging strategy over another.

For rank-merging experiments the module also provides the
*single-collection reference ranking*: the ranking a lone engine over
the union of all collections would produce.  Section 4.2 frames merging
quality exactly this way ("rank documents as if they all belonged in a
single, large document source").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.query import ListQuery, TermQuery
from repro.engine.ranking import Bm25
from repro.engine.search import SearchEngine
from repro.starts.ast import SList, STerm
from repro.starts.attributes import FieldRef
from repro.starts.lstring import LString
from repro.starts.query import SQuery
from repro.text.stopwords import ENGLISH_STOP_WORDS
from repro.text.tokenize import UnicodeTokenizer

__all__ = ["GeneratedQuery", "Workload", "build_workload", "zipf_replay"]


@dataclass(frozen=True)
class GeneratedQuery:
    """One workload query with its oracle answer.

    Attributes:
        terms: the query words.
        relevant: linkages of all documents (across every collection)
            containing every query word in their body.
        relevant_by_source: source name → count of relevant documents,
            the "goodness" input of GlOSS-style evaluation.
    """

    terms: tuple[str, ...]
    relevant: frozenset[str]
    relevant_by_source: dict[str, int]

    def to_squery(self, max_documents: int = 20) -> SQuery:
        """The STARTS query: a flat ranking list over body-of-text."""
        ranking = SList(
            tuple(
                STerm(LString(term), FieldRef(F.BODY_OF_TEXT)) for term in self.terms
            )
        )
        return SQuery(ranking_expression=ranking, max_number_documents=max_documents)

    def to_engine_query(self) -> ListQuery:
        return ListQuery(tuple(TermQuery(F.BODY_OF_TEXT, term) for term in self.terms))


class Workload:
    """A set of generated queries plus the reference ranking machinery."""

    def __init__(
        self,
        collections: dict[str, list[Document]],
        queries: list[GeneratedQuery],
    ) -> None:
        self.collections = collections
        self.queries = queries
        self._reference_engine: SearchEngine | None = None

    @property
    def all_documents(self) -> list[Document]:
        documents: list[Document] = []
        for name in sorted(self.collections):
            documents.extend(self.collections[name])
        return documents

    def reference_engine(self) -> SearchEngine:
        """A lazily-built BM25 engine over the union of all collections."""
        if self._reference_engine is None:
            engine = SearchEngine(ranking=Bm25())
            engine.add_all(self.all_documents)
            self._reference_engine = engine
        return self._reference_engine

    def reference_ranking(self, query: GeneratedQuery) -> list[str]:
        """Linkages ranked as one big collection would rank them."""
        engine = self.reference_engine()
        hits = engine.search(ranking_query=query.to_engine_query())
        return [engine.store[hit.doc_id].linkage for hit in hits]


_TOKENIZER = UnicodeTokenizer()


def _content_words(document: Document) -> list[str]:
    """Body words as engines see them: Unicode-tokenized, no stops.

    Using a real tokenizer here keeps the oracle consistent with the
    engines — a hyphenated vocabulary word like "object-oriented" is
    two index terms everywhere, so it must be two oracle terms too.
    """
    words = []
    for word in _TOKENIZER.words(document.body):
        if len(word) > 3 and not ENGLISH_STOP_WORDS.is_stop_word(word):
            words.append(word)
    return words


def build_workload(
    collections: dict[str, list[Document]],
    n_queries: int = 50,
    terms_per_query: tuple[int, int] = (1, 3),
    seed: int = 0,
) -> Workload:
    """Generate ``n_queries`` queries with oracle relevance.

    Terms are sampled from a randomly chosen document's body (so every
    query has at least one relevant document); relevance is containment
    of *all* terms in a document body, evaluated across every
    collection.
    """
    rng = random.Random(seed)
    source_names = sorted(collections)
    documents = [(name, doc) for name in source_names for doc in collections[name]]
    if not documents:
        raise ValueError("cannot build a workload over empty collections")

    # Precompute body token sets once: the oracle is pure containment.
    token_sets = [
        (name, doc.linkage, frozenset(_content_words(doc))) for name, doc in documents
    ]

    queries: list[GeneratedQuery] = []
    attempts = 0
    while len(queries) < n_queries and attempts < n_queries * 20:
        attempts += 1
        _, seed_doc = rng.choice(documents)
        pool = sorted(set(_content_words(seed_doc)))
        if not pool:
            continue
        count = rng.randint(*terms_per_query)
        count = min(count, len(pool))
        terms = tuple(sorted(rng.sample(pool, count)))

        relevant: set[str] = set()
        by_source: dict[str, int] = {name: 0 for name in source_names}
        wanted = set(terms)
        for name, linkage, tokens in token_sets:
            if wanted <= tokens:
                relevant.add(linkage)
                by_source[name] += 1
        if not relevant:
            continue
        queries.append(GeneratedQuery(terms, frozenset(relevant), by_source))

    return Workload(collections, queries)


def zipf_replay(
    queries: list[GeneratedQuery],
    n_requests: int,
    skew: float = 1.0,
    seed: int = 0,
) -> list[GeneratedQuery]:
    """A Zipf-skewed request stream over a query set.

    Real search traffic repeats itself: a few head queries dominate
    while the tail is seen once — exactly the distribution a result
    cache lives or dies on.  Query ``i`` (0-based, in the given order)
    is drawn with probability proportional to ``1 / (i + 1) ** skew``;
    with ``skew=0`` the replay is uniform.  Deterministic for a given
    ``(queries, n_requests, skew, seed)``.
    """
    if not queries:
        raise ValueError("cannot replay an empty query set")
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(queries))]
    return rng.choices(queries, weights=weights, k=n_requests)
