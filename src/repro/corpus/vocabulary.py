"""Topic vocabularies for the synthetic corpus generator.

Source-selection and rank-merging behaviour hinge on *skewed term
statistics across topically focused collections* (the paper's §3.2
example: "databases" is common in a CS source, rare in an unrelated
one).  Each topic below is a pool of content words; collections draw
most of their text from their own topics and a little from the shared
general pool, producing exactly that skew.  A Spanish pool supports
the bilingual source of the paper's examples.
"""

from __future__ import annotations

__all__ = [
    "TOPICS",
    "GENERAL_WORDS",
    "SPANISH_WORDS",
    "AUTHOR_POOL",
    "TITLE_TEMPLATES",
]

TOPICS: dict[str, list[str]] = {
    "databases": """
        database databases relational query queries transaction transactions
        index indexing schema tuple tuples join joins normalization deductive
        object-oriented distributed concurrency locking recovery logging
        optimizer optimization storage btree hashing partition replication
        consistency serializability commit rollback cursor view views trigger
        warehouse mining datalog algebra calculus dependency keys integrity
        metadata catalog buffer paging deadlock snapshot isolation
    """.split(),
    "retrieval": """
        retrieval search ranking relevance precision recall vector boolean
        term terms frequency weighting tfidf stemming stopword thesaurus
        metasearch metasearcher collection collections corpus document
        documents crawler crawlers internet protocol sources source merging
        federation interoperability heterogeneous summary summaries gloss
        selection discovery digital library libraries soundex proximity
        tokenizer scoring similarity feedback
    """.split(),
    "networking": """
        network networks packet packets routing router routers congestion
        bandwidth latency throughput ethernet tcp udp socket sockets
        multicast broadcast switching protocol protocols gateway firewall
        topology wireless cellular queueing buffer retransmission checksum
        datagram fragmentation encapsulation addressing subnet lan wan
        backbone peering flow control handshake session transport
    """.split(),
    "medicine": """
        patient patients diagnosis treatment clinical therapy drug drugs
        disease diseases symptom symptoms infection vaccine antibody immune
        cardiology oncology surgery anesthesia pathology radiology dosage
        trial trials placebo chronic acute syndrome prescription physician
        hospital epidemiology virus bacteria tumor cancer insulin diabetes
        cardiac pulmonary hepatic renal neural cortex
    """.split(),
    "astronomy": """
        galaxy galaxies star stars stellar planet planets orbit orbital
        telescope spectrum spectra luminosity redshift supernova nebula
        cosmology cosmic quasar pulsar asteroid comet meteor gravitational
        photometry parallax magnitude constellation eclipse solar lunar
        interstellar radiation spectroscopy observatory celestial
        astrophysics universe expansion inflation
    """.split(),
    "law": """
        court courts judge judges ruling statute statutes contract contracts
        liability plaintiff defendant appeal appellate jurisdiction tort
        negligence copyright patent trademark litigation arbitration
        testimony evidence verdict jury counsel attorney prosecution
        constitutional legislative regulatory compliance precedent damages
        injunction settlement deposition brief
    """.split(),
    "cooking": """
        recipe recipes ingredient ingredients baking roasting simmer saute
        flavor seasoning spice spices herbs garlic onion butter flour sugar
        dough pastry sauce broth marinade grill oven skillet whisk knead
        caramelize braise poach vinaigrette dessert appetizer entree cuisine
        culinary kitchen chef tasting savory
    """.split(),
}

#: Shared, topic-neutral content words that appear in every collection.
GENERAL_WORDS = """
    analysis approach system systems method methods result results problem
    problems study studies model models design development evaluation
    performance experiment experiments implementation framework technique
    techniques theory practice application applications structure process
    overview survey introduction comparison effective efficient general
    novel proposed improved related important significant standard
""".split()

#: Spanish content words (CS-flavoured) for bilingual sources.
SPANISH_WORDS = """
    algoritmo algoritmos datos consulta consultas sistema sistemas
    distribuido distribuida red redes documento documentos fuente fuentes
    busqueda recuperacion indice indices modelo modelos resultado
    resultados analisis estudio estudios problema problemas biblioteca
    digital protocolo servidor cliente archivo archivos palabra palabras
    lenguaje idioma texto textos coleccion colecciones
""".split()

#: Author name pool (first + last sampled independently).
AUTHOR_POOL = {
    "first": """
        Jeffrey Luis Hector Andreas Chen Maria James Ellen Carl Susan
        Michael Laura David Anna Robert Carmen Thomas Julia Steven Grace
        Peter Diana Kevin Alice Martin Elena Oscar Irene Victor Nora
    """.split(),
    "last": """
        Ullman Gravano Garcia-Molina Paepcke Chang Callan Voorhees Lagoze
        Salton Croft Selberg Etzioni Bowman Danzig Hardy Manber Schwartz
        Wessels Kirsch Baldonado Winograd Hassan Ketchpel Cousins Stone
        Rivera Navarro Fuentes Morales Herrera
    """.split(),
}

#: Title skeletons; ``{w1}``/``{w2}`` are topic words.
TITLE_TEMPLATES = [
    "On {w1} and {w2}",
    "A Study of {w1} in {w2}",
    "{w1} for {w2}",
    "Efficient {w1} with {w2}",
    "The {w1} Approach to {w2}",
    "{w1}: Principles and Practice of {w2}",
    "Towards Scalable {w1} over {w2}",
    "Revisiting {w1} under {w2}",
]

#: Spanish title skeletons, used for Spanish-language documents so
#: their title vocabulary is actually Spanish.
SPANISH_TITLE_TEMPLATES = [
    "Sobre {w1} y {w2}",
    "Un estudio de {w1} en {w2}",
    "{w1} para {w2}",
    "Hacia {w1} con {w2}",
    "El modelo {w1} de {w2}",
]
