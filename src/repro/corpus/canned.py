"""Canned mini-collections reproducing the paper's running examples.

The paper's worked examples revolve around two Stanford documents — the
Ullman "deductive vs. object-oriented databases" comparison at Source-1
and the Lagunita report at Source-2 — plus a bilingual source with
English and Spanish titles (Example 11).  These fixtures let the golden
tests (EX1–EX12 in DESIGN.md) run the full stack over exactly the
paper's scenario.
"""

from __future__ import annotations

from repro.engine import fields as F
from repro.engine.documents import Document

__all__ = [
    "ullman_dood_document",
    "lagunita_document",
    "source1_documents",
    "source2_documents",
    "bilingual_documents",
]


def ullman_dood_document() -> Document:
    """The Example 8 document at Source-1 (score 0.82 in the paper)."""
    body = (
        "This report compares deductive databases with object-oriented "
        "database systems. Distributed evaluation of datalog programs is "
        "discussed, and distributed databases are contrasted with "
        "centralized databases. The databases community has studied "
        "recursive query processing in deductive databases, while the "
        "object-oriented databases community emphasizes modeling. We survey "
        "distributed query optimization for databases and summarize open "
        "problems for databases research."
    )
    return Document(
        "http://www-db.stanford.edu/~ullman/pub/dood.ps",
        {
            F.TITLE: "A Comparison Between Deductive and Object-Oriented Database Systems",
            F.AUTHOR: "Jeffrey D. Ullman",
            F.BODY_OF_TEXT: body,
            F.DATE_LAST_MODIFIED: "1995-06-12",
            F.LINKAGE_TYPE: "application/postscript",
        },
    )


def lagunita_document() -> Document:
    """The Example 9 document at Source-2 (score 0.27 in the paper).

    Its body repeats the query words more often than the Source-1
    document's (the paper gives tf 20 and 34 vs. 10 and 15), so a
    statistics-based re-ranking flips the order — the exact scenario of
    Example 9.
    """
    sentences = [
        "Database research achievements and opportunities are surveyed.",
        "Distributed databases remain central to the research agenda.",
    ]
    # Make "distributed" and "databases" genuinely frequent.
    sentences.extend(
        "Distributed databases and distributed systems for databases "
        "pose new challenges for databases researchers working on "
        "distributed query processing over databases."
        .split(". ")
    )
    body = " ".join(sentences * 4)
    return Document(
        "http://elib.stanford.edu/lagunita.ps",
        {
            F.TITLE: "Database Research: Achievements and Opportunities into the 21st. Century",
            F.AUTHOR: "Avi Silberschatz, Mike Stonebraker, Jeff Ullman",
            F.BODY_OF_TEXT: body,
            F.DATE_LAST_MODIFIED: "1996-01-20",
            F.LINKAGE_TYPE: "application/postscript",
        },
    )


def source1_documents() -> list[Document]:
    """Source-1: the Ullman document plus topical distractors."""
    distractors = [
        Document(
            "http://www-db.stanford.edu/pub/gravano95.ps",
            {
                F.TITLE: "Generalizing GlOSS for Vector-Space Databases",
                F.AUTHOR: "Luis Gravano",
                F.BODY_OF_TEXT: (
                    "Text database discovery chooses promising databases for a "
                    "query. GlOSS summarizes sources with word statistics and "
                    "ranks the sources for each query."
                ),
                F.DATE_LAST_MODIFIED: "1995-09-01",
            },
        ),
        Document(
            "http://www-db.stanford.edu/pub/chang96.ps",
            {
                F.TITLE: "Boolean Query Mapping Across Heterogeneous Systems",
                F.AUTHOR: "Chen-Chuan K. Chang",
                F.BODY_OF_TEXT: (
                    "Translating boolean queries across heterogeneous information "
                    "sources requires mapping predicates between query models and "
                    "rewriting unsupported filters."
                ),
                F.DATE_LAST_MODIFIED: "1996-04-18",
            },
        ),
    ]
    return [ullman_dood_document(), *distractors]


def source2_documents() -> list[Document]:
    """Source-2: the Lagunita report plus a distractor."""
    distractor = Document(
        "http://elib.stanford.edu/infobus.ps",
        {
            F.TITLE: "The Stanford InfoBus: Interoperability for Digital Libraries",
            F.AUTHOR: "Andreas Paepcke",
            F.BODY_OF_TEXT: (
                "The InfoBus hosts metasearchers and wraps heterogeneous services "
                "behind uniform protocols for digital library interoperability."
            ),
            F.DATE_LAST_MODIFIED: "1996-05-30",
        },
    )
    return [lagunita_document(), distractor]


def bilingual_documents() -> list[Document]:
    """An English/Spanish mini-collection for the Example 11 summary."""
    english = [
        Document(
            f"http://bilingual.example.org/en{i}.html",
            {
                F.TITLE: title,
                F.AUTHOR: "Maria Rivera",
                F.BODY_OF_TEXT: body,
                F.DATE_LAST_MODIFIED: "1996-02-10",
            },
            language="en",
        )
        for i, (title, body) in enumerate(
            [
                ("Algorithm Analysis", "An algorithm for analysis of sorting."),
                ("Graph Algorithm Survey", "Every algorithm surveyed with analysis."),
            ]
        )
    ]
    spanish = [
        Document(
            f"http://bilingual.example.org/es{i}.html",
            {
                F.TITLE: title,
                F.AUTHOR: "Oscar Navarro",
                F.BODY_OF_TEXT: body,
                F.DATE_LAST_MODIFIED: "1996-03-05",
            },
            language="es",
        )
        for i, (title, body) in enumerate(
            [
                ("Algoritmo y datos", "Un algoritmo para datos distribuidos."),
                ("Datos y consultas", "Consultas sobre datos en redes."),
            ]
        )
    ]
    return english + spanish
