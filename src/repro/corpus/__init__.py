"""Synthetic corpora, query workloads, and the relevance oracle.

Replaces the paper's proprietary document sources (Dialog, CS-TR, web
crawls) with seeded, reproducible collections whose skewed term
statistics exercise the same protocol machinery.  See DESIGN.md's
substitution table.
"""

from repro.corpus.canned import (
    bilingual_documents,
    lagunita_document,
    source1_documents,
    source2_documents,
    ullman_dood_document,
)
from repro.corpus.generator import (
    CollectionSpec,
    SummaryPopulationSpec,
    generate_collection,
    generate_source_summaries,
    zipf_weights,
)
from repro.corpus.workload import (
    GeneratedQuery,
    Workload,
    build_workload,
    zipf_replay,
)

__all__ = [
    "bilingual_documents",
    "lagunita_document",
    "source1_documents",
    "source2_documents",
    "ullman_dood_document",
    "CollectionSpec",
    "SummaryPopulationSpec",
    "generate_collection",
    "generate_source_summaries",
    "zipf_weights",
    "GeneratedQuery",
    "Workload",
    "build_workload",
    "zipf_replay",
]
