"""Text-analysis substrate for the STARTS reproduction.

This package supplies everything a 1990s-era text search engine needs and
that the STARTS protocol talks about by name:

* RFC-1766 language tags (``langtags``) — the ``en-US`` qualifiers that
  adorn l-strings and content summaries.
* Named tokenizers (``tokenize``) — STARTS sources advertise their
  tokenizers through the ``TokenizerIDList`` metadata attribute, so
  tokenizers here are registered under stable identifiers.
* The Porter stemmer (``porter``) and a light Spanish stemmer
  (``spanish``) — the ``stem`` modifier of the Basic-1 attribute set.
* Stop-word lists (``stopwords``) — the ``StopWordList`` /
  ``TurnOffStopWords`` metadata attributes and the ``DropStopWords``
  query property.
* Soundex (``soundex``) — the ``phonetic`` modifier.
* A small thesaurus (``thesaurus``) — the ``thesaurus`` modifier.
"""

from repro.text.analysis import AnalyzedToken, Analyzer, default_analyzer
from repro.text.langtags import LanguageTag, parse_language_tag
from repro.text.porter import PorterStemmer, porter_stem
from repro.text.soundex import soundex
from repro.text.spanish import spanish_stem
from repro.text.stopwords import StopWordList, ENGLISH_STOP_WORDS, SPANISH_STOP_WORDS
from repro.text.thesaurus import Thesaurus, DEFAULT_THESAURUS
from repro.text.tokenize import (
    Tokenizer,
    SimpleTokenizer,
    WhitespaceTokenizer,
    UnicodeTokenizer,
    TokenizerRegistry,
    default_registry,
    get_tokenizer,
)

__all__ = [
    "AnalyzedToken",
    "Analyzer",
    "default_analyzer",
    "LanguageTag",
    "parse_language_tag",
    "PorterStemmer",
    "porter_stem",
    "soundex",
    "spanish_stem",
    "StopWordList",
    "ENGLISH_STOP_WORDS",
    "SPANISH_STOP_WORDS",
    "Thesaurus",
    "DEFAULT_THESAURUS",
    "Tokenizer",
    "SimpleTokenizer",
    "WhitespaceTokenizer",
    "UnicodeTokenizer",
    "TokenizerRegistry",
    "default_registry",
    "get_tokenizer",
]
