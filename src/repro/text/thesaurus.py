"""Thesaurus expansion — the Basic-1 ``thesaurus`` modifier (marked *new*).

The paper adds ``Thesaurus`` to the modifier table (default: "no
thesaurus expansion").  A source that supports it expands a query term
into its synonym set before matching.  The reproduction ships a small
domain thesaurus covering the computer-science vocabulary the synthetic
corpus generator uses, so the modifier is exercisable end to end.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

__all__ = ["Thesaurus", "DEFAULT_THESAURUS"]


class Thesaurus:
    """Symmetric synonym groups with lookup by any member.

    Groups are closed under symmetry: if "car" and "automobile" share a
    group, ``expand("car")`` returns both.  Lookups are case-insensitive
    and the queried word itself is always included in the expansion.
    """

    def __init__(self, groups: Iterable[Iterable[str]] = ()) -> None:
        self._groups: dict[str, frozenset[str]] = {}
        for group in groups:
            self.add_group(group)

    def add_group(self, words: Iterable[str]) -> None:
        """Register a synonym group, merging with any overlapping group."""
        normalized = {word.lower() for word in words}
        merged = set(normalized)
        for word in normalized:
            existing = self._groups.get(word)
            if existing:
                merged |= existing
        group = frozenset(merged)
        for word in group:
            self._groups[word] = group

    def expand(self, word: str) -> frozenset[str]:
        """All synonyms of ``word`` including itself."""
        key = word.lower()
        return self._groups.get(key, frozenset((key,)))

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._groups

    def __len__(self) -> int:
        return len({id(group) for group in self._groups.values()})

    def as_mapping(self) -> Mapping[str, frozenset[str]]:
        """Read-only view of the word → group mapping (for metadata export)."""
        return dict(self._groups)


#: Small CS-flavoured thesaurus matching the synthetic corpus vocabulary.
DEFAULT_THESAURUS = Thesaurus(
    [
        ("database", "databank", "datastore"),
        ("distributed", "decentralized", "federated"),
        ("search", "retrieval", "lookup"),
        ("document", "text", "record"),
        ("index", "catalog", "directory"),
        ("query", "request"),
        ("ranking", "scoring", "ordering"),
        ("network", "internet", "web"),
        ("algorithm", "method", "procedure"),
        ("metadata", "schema"),
        ("server", "host"),
        ("protocol", "standard"),
        ("car", "automobile", "vehicle"),
        ("illness", "disease", "ailment"),
        ("medicine", "drug", "pharmaceutical"),
    ]
)
