"""RFC-1766 language tags, as used by STARTS l-strings.

STARTS qualifies strings with their language and, optionally, country:
``[en-US "behavior"]`` means the string "behavior" is American English.
The qualification format follows RFC 1766: a primary language tag (two
letters for ISO-639 codes) followed by optional subtags separated by
hyphens, the first of which is conventionally an ISO-3166 country code.

The paper makes English (``en``) the default language so that plain
ASCII queries need no qualification at all.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["LanguageTag", "parse_language_tag", "InvalidLanguageTag"]

_TAG_RE = re.compile(r"^[A-Za-z]{1,8}(-[A-Za-z0-9]{1,8})*$")


class InvalidLanguageTag(ValueError):
    """Raised when a string is not a well-formed RFC-1766 language tag."""


@dataclass(frozen=True, slots=True)
class LanguageTag:
    """An RFC-1766 language tag: a language code plus optional subtags.

    Instances are immutable and hashable so they can key dictionaries
    (e.g. per-language content-summary sections).

    Attributes:
        language: lowercase primary tag, e.g. ``"en"``.
        subtags: tuple of subtags; the first is usually a country code
            and is normalized to uppercase (``"US"``), the rest are kept
            lowercase per RFC-1766 convention.
    """

    language: str
    subtags: tuple[str, ...] = ()

    @property
    def country(self) -> str | None:
        """The country subtag, if the first subtag looks like one."""
        if self.subtags and len(self.subtags[0]) == 2:
            return self.subtags[0]
        return None

    def matches(self, other: "LanguageTag") -> bool:
        """True if ``self`` covers ``other``.

        A bare language tag covers every country variant of the same
        language: ``en`` matches ``en-US`` and ``en-GB``, but ``en-US``
        only matches ``en-US``.  This is the matching rule sources use
        when deciding whether a query term's language qualifier is
        compatible with a field's language list.
        """
        if self.language != other.language:
            return False
        if not self.subtags:
            return True
        return self.subtags == other.subtags[: len(self.subtags)]

    def __str__(self) -> str:
        return "-".join((self.language,) + self.subtags)


def parse_language_tag(text: str) -> LanguageTag:
    """Parse an RFC-1766 tag such as ``en-US`` into a :class:`LanguageTag`.

    Raises:
        InvalidLanguageTag: if the text is empty or malformed.
    """
    if not text or not _TAG_RE.match(text):
        raise InvalidLanguageTag(f"not an RFC-1766 language tag: {text!r}")
    parts = text.split("-")
    language = parts[0].lower()
    subtags: list[str] = []
    for index, part in enumerate(parts[1:]):
        if index == 0 and len(part) == 2:
            subtags.append(part.upper())
        else:
            subtags.append(part.lower())
    return LanguageTag(language, tuple(subtags))


#: The protocol-wide default: plain strings are English.
DEFAULT_LANGUAGE = LanguageTag("en")

#: American English, the tag used throughout the paper's examples.
EN_US = LanguageTag("en", ("US",))

#: Spanish, the second language in the paper's content-summary example.
SPANISH = LanguageTag("es")
