"""Named tokenizers and the tokenizer registry.

STARTS abandoned earlier designs (exporting separator characters or
token regular expressions) in favour of simply *naming* tokenizers: a
source's ``TokenizerIDList`` metadata attribute maps languages to
tokenizer identifiers such as ``(Acme-1 en-US) (Acme-2 es)``.  A
metasearcher learns how a named tokenizer behaves once — by probing any
source that uses it and inspecting the actual query the source reports —
rather than per source.

This module provides the tokenizer abstraction, three concrete families
with genuinely different behaviour (so that the paper's "Z39.50" → is
it one token or two? question has different answers at different
sources), and a registry keyed by tokenizer id.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass

__all__ = [
    "Token",
    "Tokenizer",
    "SimpleTokenizer",
    "WhitespaceTokenizer",
    "UnicodeTokenizer",
    "TokenizerRegistry",
    "default_registry",
    "get_tokenizer",
]


@dataclass(frozen=True, slots=True)
class Token:
    """A token with its position (word offset) and character span."""

    text: str
    position: int
    start: int
    end: int


class Tokenizer:
    """Base class: subclasses define how raw text becomes tokens.

    Every tokenizer has a stable ``tokenizer_id`` suitable for the
    ``TokenizerIDList`` metadata attribute.
    """

    tokenizer_id = "base"

    def tokenize(self, text: str) -> list[Token]:
        """Split ``text`` into tokens.  Subclasses must override."""
        raise NotImplementedError

    def words(self, text: str) -> list[str]:
        """Convenience: just the token texts, in order."""
        return [token.text for token in self.tokenize(text)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.tokenizer_id!r})"


class _RegexTokenizer(Tokenizer):
    """Shared machinery for tokenizers defined by a token pattern."""

    _pattern: re.Pattern[str]
    lowercase = True

    def tokenize(self, text: str) -> list[Token]:
        tokens: list[Token] = []
        for position, match in enumerate(self._pattern.finditer(text)):
            word = match.group(0)
            if self.lowercase:
                word = word.lower()
            tokens.append(Token(word, position, match.start(), match.end()))
        return tokens


class SimpleTokenizer(_RegexTokenizer):
    """Alphanumeric runs only; punctuation always separates.

    Under this tokenizer "Z39.50" becomes the two tokens "z39" and "50" —
    the behaviour the paper warns metasearchers about.
    """

    tokenizer_id = "Acme-1"
    _pattern = re.compile(r"[A-Za-z0-9]+")


class WhitespaceTokenizer(_RegexTokenizer):
    """Split on whitespace only; interior punctuation is preserved.

    Under this tokenizer "Z39.50" stays a single token "z39.50".
    Trailing sentence punctuation is stripped so "systems." matches
    "systems".
    """

    tokenizer_id = "Acme-2"
    _pattern = re.compile(r"\S+")

    def tokenize(self, text: str) -> list[Token]:
        tokens = []
        for token in super().tokenize(text):
            word = token.text.strip(".,;:!?\"'()[]{}")
            if word:
                tokens.append(Token(word, token.position, token.start, token.end))
        # Re-number positions after dropping empty tokens.
        return [
            Token(token.text, position, token.start, token.end)
            for position, token in enumerate(tokens)
        ]


class UnicodeTokenizer(_RegexTokenizer):
    """Unicode-aware word tokenizer with NFKC normalization.

    Letters and digits in any script form tokens; accents are preserved
    (so Spanish "algoritmo"/"algorítmo" remain distinct tokens and the
    per-language stemmer decides how to fold them).  This is the
    tokenizer the multilingual vendor sources use.
    """

    tokenizer_id = "Uni-1"
    _pattern = re.compile(r"\w+", re.UNICODE)

    def tokenize(self, text: str) -> list[Token]:
        return super().tokenize(unicodedata.normalize("NFKC", text))


class TokenizerRegistry:
    """Registry of tokenizers keyed by their ``tokenizer_id``.

    Mirrors the role of ``TokenizerIDList`` on the wire: given an id from
    source metadata, a metasearcher (or a source implementation) obtains
    the concrete tokenizer here.
    """

    def __init__(self) -> None:
        self._tokenizers: dict[str, Tokenizer] = {}

    def register(self, tokenizer: Tokenizer) -> None:
        """Register under ``tokenizer.tokenizer_id``; last write wins."""
        self._tokenizers[tokenizer.tokenizer_id] = tokenizer

    def get(self, tokenizer_id: str) -> Tokenizer:
        """Look up a tokenizer.

        Raises:
            KeyError: if no tokenizer has that id.
        """
        try:
            return self._tokenizers[tokenizer_id]
        except KeyError:
            raise KeyError(f"unknown tokenizer id: {tokenizer_id!r}") from None

    def known_ids(self) -> list[str]:
        return sorted(self._tokenizers)


_DEFAULT = TokenizerRegistry()
_DEFAULT.register(SimpleTokenizer())
_DEFAULT.register(WhitespaceTokenizer())
_DEFAULT.register(UnicodeTokenizer())


def default_registry() -> TokenizerRegistry:
    """The process-wide registry pre-loaded with the built-in tokenizers."""
    return _DEFAULT


def get_tokenizer(tokenizer_id: str) -> Tokenizer:
    """Shortcut for ``default_registry().get(tokenizer_id)``."""
    return _DEFAULT.get(tokenizer_id)
