"""The Porter stemming algorithm (Porter, 1980), implemented in full.

The Basic-1 attribute set's ``stem`` modifier ("no stemming" by default)
is defined against English stemming; the classic reference algorithm for
that era — and the one bundled with the engines STARTS federates — is
Porter's.  This is a faithful implementation of the original five-step
algorithm, including the m() measure, *o rule and all published suffix
lists, with no "Porter2" revisions.
"""

from __future__ import annotations

__all__ = ["PorterStemmer", "porter_stem"]

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer; ``stem()`` is the only public entry point.

    The implementation follows the structure of the original paper: a
    word is classified as a sequence of consonant/vowel runs of the form
    [C](VC)^m[V], and each rule fires only when the measure ``m`` of the
    stem meets the rule's condition.
    """

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (lowercased first).

        Words of length <= 2 are returned unchanged, as in the original
        algorithm.
        """
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- consonant/vowel machinery -------------------------------------

    def _is_consonant(self, word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            if i == 0:
                return True
            return not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem: str) -> int:
        """The m() measure: number of VC sequences in [C](VC)^m[V]."""
        m = 0
        i = 0
        n = len(stem)
        # Skip the optional initial consonant run.
        while i < n and self._is_consonant(stem, i):
            i += 1
        while i < n:
            # Vowel run.
            while i < n and not self._is_consonant(stem, i):
                i += 1
            if i >= n:
                break
            # Consonant run closes one VC pair.
            while i < n and self._is_consonant(stem, i):
                i += 1
            m += 1
        return m

    def _contains_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        if len(word) < 2:
            return False
        if word[-1] != word[-2]:
            return False
        return self._is_consonant(word, len(word) - 1)

    def _ends_cvc(self, word: str) -> bool:
        """*o: stem ends CVC where the final C is not w, x or y."""
        if len(word) < 3:
            return False
        if not self._is_consonant(word, len(word) - 3):
            return False
        if self._is_consonant(word, len(word) - 2):
            return False
        if not self._is_consonant(word, len(word) - 1):
            return False
        return word[-1] not in "wxy"

    def _replace(self, word: str, suffix: str, replacement: str, min_m: int) -> str | None:
        """Replace ``suffix`` with ``replacement`` if m(stem) > min_m.

        Returns the new word, or None if the rule did not fire.
        """
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > min_m:
            return stem + replacement
        return word  # Suffix matched but condition failed: stop this step.

    # -- the five steps --------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed"):
            stem = word[:-2]
            if self._contains_vowel(stem):
                word = stem
                flag = True
        elif word.endswith("ing"):
            stem = word[:-3]
            if self._contains_vowel(stem):
                word = stem
                flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_RULES:
            result = self._replace(word, suffix, replacement, 0)
            if result is not None:
                return result
        return word

    _STEP3_RULES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_RULES:
            result = self._replace(word, suffix, replacement, 0)
            if result is not None:
                return result
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        # "ion" requires the stem to end in s or t.
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
            if stem and stem[-1] in "st":
                return word
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1:
                return stem
            if m == 1 and not self._ends_cvc(stem):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            word.endswith("l")
            and self._ends_double_consonant(word)
            and self._measure(word) > 1
        ):
            return word[:-1]
        return word


_SHARED = PorterStemmer()


def porter_stem(word: str) -> str:
    """Stem a single word with a shared :class:`PorterStemmer` instance."""
    return _SHARED.stem(word)
