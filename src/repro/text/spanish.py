"""A light Spanish suffix-stripping stemmer.

STARTS is multilingual: sources advertise, per language, which modifiers
(including ``stem``) they support.  The paper's running example source
indexes American English and Spanish documents, so the reproduction
needs a Spanish stemmer alongside Porter's English one.  This is a
compact rule-based stemmer in the spirit of Snowball's Spanish stemmer:
it removes plural endings, then common derivational and verb suffixes,
longest match first.  It is intentionally lighter than full Snowball —
the goal is distinct, deterministic per-language stemming behaviour, not
linguistic perfection.
"""

from __future__ import annotations

__all__ = ["spanish_stem"]

_VOWELS = "aeiouáéíóúü"

# Derivational suffixes, longest first so the longest match wins.
_DERIVATIONAL = (
    "amientos", "imientos", "amiento", "imiento", "aciones", "uciones",
    "adoras", "adores", "ancias", "logías", "idades", "ativas", "ativos",
    "antes", "ación", "ución", "adora", "antes", "ancia", "logía",
    "mente", "idad", "ble", "ista", "oso", "osa", "iva", "ivo",
)

# Verb suffixes for -ar / -er / -ir conjugations.
_VERB = (
    "aríamos", "eríamos", "iríamos", "iéramos", "iésemos",
    "aremos", "eremos", "iremos", "ábamos", "áramos", "ásemos",
    "arían", "arías", "erían", "erías", "irían", "irías",
    "aban", "aran", "asen", "aron", "ando", "iendo",
    "aría", "ería", "iría", "aste", "iste", "amos", "emos", "imos",
    "ará", "erá", "irá", "aba", "ada", "ado", "ida", "ido",
    "ía", "ar", "er", "ir", "as", "es", "an", "en", "ó", "é", "a", "e", "o",
)


def _strip_accents(word: str) -> str:
    table = str.maketrans("áéíóúü", "aeiouu")
    return word.translate(table)


def _remove_plural(word: str) -> str:
    if len(word) >= 5 and word.endswith("ces"):
        return word[:-3] + "z"
    if len(word) > 4 and word.endswith("es"):
        return word[:-2]
    if len(word) > 3 and word.endswith("s"):
        return word[:-1]
    return word


def spanish_stem(word: str) -> str:
    """Return a light stem for a Spanish ``word`` (lowercased first).

    Words of length <= 3 are returned unchanged (accent-stripped), which
    keeps short function words stable.
    """
    word = word.lower()
    if len(word) <= 3:
        return _strip_accents(word)
    word = _remove_plural(word)
    for suffix in _DERIVATIONAL:
        if word.endswith(suffix) and len(word) - len(suffix) >= 3:
            word = word[: len(word) - len(suffix)]
            break
    else:
        for suffix in _VERB:
            if word.endswith(suffix) and len(word) - len(suffix) >= 3:
                word = word[: len(word) - len(suffix)]
                break
    return _strip_accents(word)
