"""Stop-word lists, per-language, exportable as STARTS metadata.

Each STARTS source must export its ``StopWordList`` and whether stop-word
elimination can be turned off (``TurnOffStopWords``).  Queries in turn
carry a ``DropStopWords`` property.  This module provides the mutable
:class:`StopWordList` container sources use, plus the default English
and Spanish lists the simulated vendors are configured with.

The paper's motivating example — a user searching for the rock group
"The Who" — is exactly the case where a metasearcher needs to know that
a source's stop-word processing can be disabled; the English list below
deliberately contains both "the" and "who" so tests can exercise it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.text.langtags import LanguageTag, parse_language_tag

__all__ = ["StopWordList", "ENGLISH_STOP_WORDS", "SPANISH_STOP_WORDS"]

_ENGLISH = """
a about above after again against all am an and any are as at be because
been before being below between both but by can did do does doing down
during each few for from further had has have having he her here hers
him his how i if in into is it its itself just me more most my myself no
nor not now of off on once only or other our ours out over own same she
should so some such than that the their theirs them then there these
they this those through to too under until up very was we were what when
where which while who whom why will with you your yours
""".split()

_SPANISH = """
a al algo algunas algunos ante antes como con contra cual cuando de del
desde donde durante e el ella ellas ellos en entre era erais eran eras
eres es esa esas ese eso esos esta estas este esto estos fue fueron fui
ha han hasta hay la las le les lo los mas me mi mis mucho muchos muy nada
ni no nos nosotros o os otra otros para pero poco por porque que quien
se ser si sin sobre son su sus también te tiene todo todos tu tus un una
uno unos vosotros y ya
""".split()


class StopWordList:
    """A named, per-language stop-word list.

    Sources export this verbatim through the ``StopWordList`` metadata
    attribute; the analysis pipeline consults it during indexing and,
    when the query says ``DropStopWords: T``, during query processing.
    """

    def __init__(
        self,
        words: Iterable[str] = (),
        language: LanguageTag | str = "en",
        name: str = "default",
    ) -> None:
        if isinstance(language, str):
            language = parse_language_tag(language)
        self.language = language
        self.name = name
        self._words = frozenset(word.lower() for word in words)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._words

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._words))

    def __len__(self) -> int:
        return len(self._words)

    def __repr__(self) -> str:
        return f"StopWordList({self.name!r}, {self.language}, {len(self)} words)"

    def is_stop_word(self, word: str) -> bool:
        """Alias for ``word in self`` that reads well at call sites."""
        return word in self

    def union(self, other: "StopWordList") -> "StopWordList":
        """A combined list (used by multi-language sources)."""
        return StopWordList(
            set(self._words) | set(other._words),
            language=self.language,
            name=f"{self.name}+{other.name}",
        )


#: Default English list (contains "the" and "who" — see module docstring).
ENGLISH_STOP_WORDS = StopWordList(_ENGLISH, language="en", name="english")

#: Default Spanish list.
SPANISH_STOP_WORDS = StopWordList(_SPANISH, language="es", name="spanish")
