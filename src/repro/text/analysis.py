"""Analysis pipelines: tokenizer + stop words + stemmer, per language.

A search engine's observable "query model" in STARTS terms is exactly an
analysis pipeline: which tokenizer it names in ``TokenizerIDList``,
which stop words it eliminates (``StopWordList``), whether that can be
turned off (``TurnOffStopWords``), and how it stems.  The engines in
``repro.engine`` and the vendor simulations in ``repro.vendors`` are
parameterized by an :class:`Analyzer` so each vendor's heterogeneous
behaviour comes from configuration, not special-cased code.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.text.langtags import LanguageTag, parse_language_tag
from repro.text.porter import porter_stem
from repro.text.spanish import spanish_stem
from repro.text.stopwords import ENGLISH_STOP_WORDS, SPANISH_STOP_WORDS, StopWordList
from repro.text.tokenize import Tokenizer, UnicodeTokenizer

__all__ = ["AnalyzedToken", "Analyzer", "default_analyzer"]

#: A stemming function: word -> stem.
Stemmer = Callable[[str], str]

_STEMMERS: dict[str, Stemmer] = {"en": porter_stem, "es": spanish_stem}


@dataclass(frozen=True, slots=True)
class AnalyzedToken:
    """A post-analysis token: surface form, index form, and position."""

    surface: str
    term: str
    position: int


@dataclass
class Analyzer:
    """A configurable tokenize → stop → stem pipeline.

    Args:
        tokenizer: the named tokenizer (its id is what the source exports).
        stop_words: per-language stop lists; keyed by primary language.
        stem: whether stemming is applied at *index* time.  STARTS
            engines differ here: some index stems, some index surface
            forms and stem only when the query carries the ``stem``
            modifier.
        case_sensitive: if False (the common case), terms are lowercased.
        can_disable_stop_words: the ``TurnOffStopWords`` capability.
        index_stop_words: whether stop words are kept in the *index*.
            A source that lets clients turn off query-side stop-word
            elimination must index stop words, or "The Who" could never
            match; sources that cannot turn it off usually do not.
    """

    tokenizer: Tokenizer = field(default_factory=UnicodeTokenizer)
    stop_words: dict[str, StopWordList] = field(
        default_factory=lambda: {"en": ENGLISH_STOP_WORDS, "es": SPANISH_STOP_WORDS}
    )
    stem: bool = False
    case_sensitive: bool = False
    can_disable_stop_words: bool = True
    index_stop_words: bool = False

    def signature(self) -> dict[str, object]:
        """The pipeline settings that define index compatibility.

        Two engines can serve the same saved index exactly when their
        signatures match — persistence (JSON and segment manifests
        alike) records this and refuses to load across a mismatch.
        """
        return {
            "tokenizer": self.tokenizer.tokenizer_id,
            "stem": self.stem,
            "case_sensitive": self.case_sensitive,
            "index_stop_words": self.index_stop_words,
        }

    def stemmer_for(self, language: LanguageTag) -> Stemmer:
        """The stemming function for ``language`` (identity if unknown)."""
        return _STEMMERS.get(language.language, lambda word: word)

    def stop_list_for(self, language: LanguageTag) -> StopWordList | None:
        return self.stop_words.get(language.language)

    def normalize(
        self,
        word: str,
        language: LanguageTag | str = "en",
        stem: bool | None = None,
    ) -> str:
        """Normalize one word the way this pipeline indexes it.

        ``stem`` overrides the pipeline default — this is how the query
        side applies the Basic-1 ``stem`` modifier to a single term even
        when the index stores surface forms.
        """
        if isinstance(language, str):
            language = parse_language_tag(language)
        if not self.case_sensitive:
            word = word.lower()
        use_stem = self.stem if stem is None else stem
        if use_stem:
            word = self.stemmer_for(language)(word)
        return word

    def analyze(
        self,
        text: str,
        language: LanguageTag | str = "en",
        drop_stop_words: bool = True,
    ) -> list[AnalyzedToken]:
        """Run the full pipeline over ``text``.

        Stop words are *removed but positions preserved*, so proximity
        constraints still measure true word distance across removed stop
        words — the behaviour intersection with ``prox`` that real
        engines exhibit.
        """
        if isinstance(language, str):
            language = parse_language_tag(language)
        if not self.can_disable_stop_words:
            drop_stop_words = True
        stop_list = self.stop_list_for(language) if drop_stop_words else None
        stemmer = self.stemmer_for(language) if self.stem else None

        analyzed: list[AnalyzedToken] = []
        for token in self.tokenizer.tokenize(text):
            surface = token.text
            if stop_list is not None and stop_list.is_stop_word(surface):
                continue
            term = surface if self.case_sensitive else surface.lower()
            if stemmer is not None:
                term = stemmer(term)
            analyzed.append(AnalyzedToken(surface, term, token.position))
        return analyzed

    def vocabulary(self, text: str, language: LanguageTag | str = "en") -> set[str]:
        """The set of index terms ``text`` produces."""
        return {token.term for token in self.analyze(text, language)}


def default_analyzer() -> Analyzer:
    """A fresh analyzer with the library defaults (Uni-1, en+es stops)."""
    return Analyzer()
