"""Soundex phonetic codes — the Basic-1 ``phonetic`` modifier.

The modifier table in the paper reads "Phonetic — default: no soundex",
i.e. the recommended phonetic algorithm is classic American Soundex.
This is the standard algorithm: keep the first letter, map the rest to
digit classes, collapse adjacent duplicates (including across h/w),
drop vowels, pad/truncate to four characters.
"""

from __future__ import annotations

__all__ = ["soundex"]

_CODES = {
    "b": "1", "f": "1", "p": "1", "v": "1",
    "c": "2", "g": "2", "j": "2", "k": "2", "q": "2", "s": "2",
    "x": "2", "z": "2",
    "d": "3", "t": "3",
    "l": "4",
    "m": "5", "n": "5",
    "r": "6",
}

# h and w are transparent: they do not break a run of same-coded letters.
_TRANSPARENT = frozenset("hw")


def soundex(word: str) -> str:
    """Return the 4-character Soundex code of ``word`` (e.g. ``"R163"``).

    Non-alphabetic characters are ignored; an empty or fully
    non-alphabetic input yields ``"0000"``.
    """
    # Classic Soundex is defined over the 26 ASCII letters only.
    letters = [ch for ch in word.lower() if "a" <= ch <= "z"]
    if not letters:
        return "0000"

    first = letters[0]
    code = first.upper()
    previous = _CODES.get(first, "")

    for ch in letters[1:]:
        if ch in _TRANSPARENT:
            continue  # Transparent, and keeps `previous` so duplicates collapse.
        digit = _CODES.get(ch, "")
        if digit and digit != previous:
            code += digit
            if len(code) == 4:
                return code
        previous = digit

    return (code + "000")[:4]
