"""Client-side query translation (§3.1, §4.1; ref [3]).

"A metasearcher would have to translate the original query to adjust it
to each source's syntax.  To do this translation, the metasearcher
needs to know the characteristics of each source."  With STARTS those
characteristics arrive as MBasic-1 metadata, so translation becomes
mechanical: rebuild the source's capability declaration from its
metadata and prune the query the same way the source itself would —
but *before* sending it, so the metasearcher knows exactly what will
run, can decide a source is not worth querying at all, and can route
"The Who"-style queries only to sources whose stop-word processing can
be disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field, replace

from repro.source.capabilities import SourceCapabilities
from repro.source.execution import QueryTranslator
from repro.starts.attributes import BASIC1, canonical_field_name
from repro.starts.metadata import SMetaAttributes
from repro.starts.query import SQuery
from repro.text.analysis import Analyzer
from repro.text.stopwords import StopWordList

__all__ = ["capabilities_from_metadata", "TranslationReport", "ClientTranslator"]


def capabilities_from_metadata(metadata: SMetaAttributes) -> SourceCapabilities:
    """Reconstruct a capability declaration from MBasic-1 metadata.

    Required Basic-1 fields are always included (sources "must
    recognize" them even when not listed under FieldsSupported).
    Prox support is not an MBasic-1 attribute, so it is assumed; an
    unsupporting source degrades it server-side and reports the actual
    query.
    """
    fields: dict[str, tuple[str, ...]] = {
        canonical_field_name(name): () for name in BASIC1.required_fields()
    }
    for ref, languages in metadata.fields_supported:
        fields[ref.name] = languages
    modifiers = {ref.name: languages for ref, languages in metadata.modifiers_supported}
    combinations: frozenset[tuple[str, str]] | None = None
    if metadata.field_modifier_combinations:
        combinations = frozenset(
            (field_ref.name, modifier_ref.name)
            for field_ref, modifier_ref in metadata.field_modifier_combinations
        )
    return SourceCapabilities(
        fields=fields,
        modifiers=modifiers,
        combinations=combinations,
        query_parts=metadata.query_parts_supported or "RF",
        supports_prox=True,
        turn_off_stop_words=metadata.turn_off_stop_words,
    )


@dataclass
class TranslationReport:
    """What the client-side translation changed for one source."""

    source_id: str
    dropped: list[str] = dataclass_field(default_factory=list)
    filter_survived: bool = True
    ranking_survived: bool = True
    stop_words_preserved: bool = True

    @property
    def feature_loss(self) -> int:
        """How many pruning decisions were made (0 = lossless)."""
        return len(self.dropped)

    def is_lossless(self) -> bool:
        return not self.dropped and self.stop_words_preserved


class ClientTranslator:
    """Pre-translates queries for each source from its metadata.

    Args:
        rewriter: optional predicate rewriter (ref [3]/[4] of the
            paper).  When provided and a content summary is available,
            modifiers the source does not support are *emulated* by
            expansion over the summary vocabulary instead of dropped.
    """

    def __init__(self, rewriter=None) -> None:
        self._rewriter = rewriter

    def translate(
        self,
        query: SQuery,
        metadata: SMetaAttributes,
        summary=None,
    ) -> tuple[SQuery, TranslationReport]:
        """The per-source query and a report of everything lost.

        The returned query is what the metasearcher actually sends; its
        expressions are already pruned to the source's declared
        capabilities, so the source's actual-query report should match
        it (tests assert exactly that).
        """
        capabilities = capabilities_from_metadata(metadata)
        report = TranslationReport(metadata.source_id)

        filter_expression = query.filter_expression
        ranking_expression = query.ranking_expression
        if self._rewriter is not None and summary is not None:
            filter_expression, filter_rewrites = self._rewriter.rewrite(
                filter_expression, metadata, summary
            )
            ranking_expression, ranking_rewrites = self._rewriter.rewrite(
                ranking_expression, metadata, summary
            )
            report.dropped.extend(
                f"rewritten: {note}"
                for note in filter_rewrites.rewritten + ranking_rewrites.rewritten
            )

        # The source's own stop list, reconstructed from metadata, so
        # the client can predict stop-word elimination.
        stop_list = StopWordList(metadata.stop_word_list, name=metadata.source_id)
        analyzer = Analyzer(stop_words={"en": stop_list, "es": stop_list})
        translator = QueryTranslator(capabilities, analyzer, query.default_language)

        drop_stop_words = query.drop_stop_words
        if not capabilities.turn_off_stop_words and not query.drop_stop_words:
            # The user asked to keep stop words but this source cannot.
            report.stop_words_preserved = False
            drop_stop_words = True

        filter_outcome = translator.translate_filter(
            filter_expression, drop_stop_words
        )
        ranking_outcome = translator.translate_ranking(
            ranking_expression, drop_stop_words
        )
        report.dropped.extend(filter_outcome.dropped)
        report.dropped.extend(ranking_outcome.dropped)
        report.filter_survived = (
            filter_expression is None or filter_outcome.actual is not None
        )
        report.ranking_survived = (
            ranking_expression is None or ranking_outcome.actual is not None
        )

        translated = replace(
            query,
            filter_expression=filter_outcome.actual,
            ranking_expression=ranking_outcome.actual,
            drop_stop_words=drop_stop_words,
        )
        return translated, report

    def worth_querying(self, query: SQuery, metadata: SMetaAttributes) -> bool:
        """False when nothing of the query would survive at the source."""
        translated, _ = self.translate(query, metadata)
        return (
            translated.filter_expression is not None
            or translated.ranking_expression is not None
        )
