"""Predicate rewriting: emulating unsupported modifiers client-side.

Reference [3]/[4] of the paper (Chang, García-Molina, Paepcke: "Boolean
query mapping across heterogeneous information sources" and "Predicate
rewriting for translating Boolean queries") study exactly this: when a
source does not support a predicate, the metasearcher can *rewrite* it
into predicates the source does support, rather than dropping it.

STARTS makes the rewriting concrete: the source's **content summary**
lists its vocabulary, so a ``stem`` term at a no-stem source can be
expanded into an ``or`` of the vocabulary words sharing the stem, a
``phonetic`` term into the words sharing its Soundex code, and a
``right-truncation`` term into the words with the prefix.  The rewritten
query is supported everywhere, at the cost of query size — an
upper-approximation in ref [4]'s terms, exact here because the summary
enumerates the vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.starts.ast import SAnd, SAndNot, SList, SNode, SOr, SProx, STerm
from repro.starts.lstring import LString
from repro.starts.metadata import SContentSummary, SMetaAttributes
from repro.text.porter import porter_stem
from repro.text.soundex import soundex
from repro.text.spanish import spanish_stem

__all__ = ["RewriteReport", "PredicateRewriter"]

#: Modifiers the rewriter can emulate from a vocabulary list.
_REWRITABLE = ("stem", "phonetic", "right-truncation", "left-truncation")

#: Cap on the expansion arity, to keep rewritten queries sane.
_MAX_EXPANSION = 25


@dataclass
class RewriteReport:
    """What the rewriter changed."""

    rewritten: list[str] = dataclass_field(default_factory=list)
    not_rewritable: list[str] = dataclass_field(default_factory=list)

    @property
    def rewrite_count(self) -> int:
        return len(self.rewritten)


class PredicateRewriter:
    """Rewrites unsupported modifiers against a source's summary."""

    def __init__(self, max_expansion: int = _MAX_EXPANSION) -> None:
        self._max_expansion = max_expansion

    def rewrite(
        self,
        expression: SNode | None,
        metadata: SMetaAttributes,
        summary: SContentSummary | None,
    ) -> tuple[SNode | None, RewriteReport]:
        """Rewrite ``expression`` for the source described by
        ``metadata``, using its ``summary`` vocabulary.

        Only modifiers the source does *not* support (or that are
        illegal with the term's field) are rewritten; everything the
        source handles natively is left alone.  Without a summary
        nothing can be rewritten and the expression is returned as is.
        """
        report = RewriteReport()
        if expression is None or summary is None:
            return expression, report
        return self._walk(expression, metadata, summary, report), report

    # -- traversal --------------------------------------------------------

    def _walk(self, node, metadata, summary, report):
        if isinstance(node, STerm):
            return self._rewrite_term(node, metadata, summary, report)
        if isinstance(node, SAnd):
            return SAnd(
                tuple(self._walk(c, metadata, summary, report) for c in node.children)
            )
        if isinstance(node, SOr):
            return SOr(
                tuple(self._walk(c, metadata, summary, report) for c in node.children)
            )
        if isinstance(node, SAndNot):
            return SAndNot(
                self._walk(node.positive, metadata, summary, report),
                self._walk(node.negative, metadata, summary, report),
            )
        if isinstance(node, SProx):
            # Rewriting a prox operand into an OR would break prox's
            # term-only arity; leave prox terms alone.
            return node
        if isinstance(node, SList):
            return SList(
                tuple(self._walk(c, metadata, summary, report) for c in node.children)
            )
        raise TypeError(f"cannot rewrite node: {type(node).__name__}")

    def _rewrite_term(self, term, metadata, summary, report):
        unsupported = [
            modifier.name
            for modifier in term.modifiers
            if modifier.name in _REWRITABLE
            and not metadata.combination_is_legal(term.field_name, modifier.name)
        ]
        if not unsupported:
            return term

        words = self._expand(term, unsupported[0], summary)
        if not words:
            report.not_rewritable.append(
                f"{unsupported[0]}({term.lstring.text!r}): no vocabulary match"
            )
            return term

        kept = tuple(
            modifier for modifier in term.modifiers if modifier.name != unsupported[0]
        )
        report.rewritten.append(
            f"{unsupported[0]}({term.lstring.text!r}) -> or of {len(words)} words"
        )
        variants = tuple(
            STerm(
                LString(word, term.lstring.language),
                term.field,
                kept,
                term.weight,
            )
            for word in words
        )
        if len(variants) == 1:
            return variants[0]
        return SOr(variants)

    # -- vocabulary expansion -----------------------------------------------

    def _expand(
        self, term: STerm, modifier_name: str, summary: SContentSummary
    ) -> list[str]:
        """Vocabulary words of the term's field matching the modifier."""
        text = term.lstring.text.lower()
        language = term.lstring.effective_language.language
        stemmer = spanish_stem if language == "es" else porter_stem

        if modifier_name == "stem":
            wanted_stem = stemmer(text)
            predicate = lambda word: stemmer(word) == wanted_stem
        elif modifier_name == "phonetic":
            wanted_code = soundex(text)
            predicate = lambda word: soundex(word) == wanted_code
        elif modifier_name == "right-truncation":
            predicate = lambda word: word.startswith(text)
        else:  # left-truncation
            predicate = lambda word: word.endswith(text)

        field_name = term.field_name
        matched: list[str] = []
        seen: set[str] = set()
        for section in summary.sections:
            if field_name != "any" and section.field != field_name:
                continue
            for entry in section.entries:
                word = entry.word if summary.case_sensitive else entry.word.lower()
                if word in seen:
                    continue
                if predicate(word):
                    matched.append(word)
                    seen.add(word)
        matched.sort()
        return matched[: self._max_expansion]
