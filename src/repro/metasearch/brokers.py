"""GlOSS broker hierarchies (ref [8] of the paper).

"Generalizing GlOSS for vector-space databases *and broker hierarchies*"
— with thousands of sources, a flat metasearcher cannot compare every
summary per query.  Instead, brokers aggregate the content summaries of
the sources (or brokers) below them; a query descends the hierarchy,
expanding only the most promising branches, and touches far fewer
summaries than a flat scan while selecting nearly the same sources.

Aggregation is exact for the statistics GlOSS uses: document
frequencies, postings counts and document counts are additive across
disjoint collections, so a broker's summary *is* the summary of the
union collection.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field as dataclass_field

from repro.metasearch.selection import SourceSelector, VGlossMax
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection

__all__ = ["merge_summaries", "BrokerNode", "HierarchicalSelector"]


def merge_summaries(summaries: Sequence[SContentSummary]) -> SContentSummary:
    """The exact content summary of the union of disjoint collections.

    Postings and document frequencies add per (field, language, word);
    ``NumDocs`` adds.  Header flags are taken as the *weakest* claims
    (e.g. the merged list is stemmed only if every input was), since a
    broker can only promise what all of its children provide — but only
    inputs that actually make a claim participate: an *empty* summary
    (no sections and no documents) describes nothing, so its default
    flags must not weaken the merge.  An empty-summary-only (or empty)
    input list yields the all-defaults empty summary.
    """
    totals: dict[tuple[str, str], dict[str, list[int]]] = defaultdict(
        lambda: defaultdict(lambda: [0, 0])
    )
    for summary in summaries:
        for section in summary.sections:
            bucket = totals[(section.field, section.language)]
            for entry in section.entries:
                bucket[entry.word][0] += max(entry.postings, 0)
                bucket[entry.word][1] += max(entry.document_frequency, 0)

    sections = []
    for (field_name, language), words in sorted(totals.items()):
        entries = tuple(
            SummaryEntryLine(word, postings, df)
            for word, (postings, df) in sorted(
                words.items(), key=lambda item: (-item[1][0], item[0])
            )
        )
        sections.append(SummarySection(field_name, language, entries))

    claiming = [
        summary
        for summary in summaries
        if summary.sections or summary.num_docs > 0
    ]
    if not claiming:
        return SContentSummary(
            num_docs=sum(summary.num_docs for summary in summaries),
            sections=tuple(sections),
        )

    return SContentSummary(
        num_docs=sum(summary.num_docs for summary in summaries),
        sections=tuple(sections),
        stemming=all(summary.stemming for summary in claiming),
        stop_words=all(summary.stop_words for summary in claiming),
        case_sensitive=all(summary.case_sensitive for summary in claiming),
        fields=all(summary.fields for summary in claiming),
        has_postings=all(summary.has_postings for summary in claiming),
        has_document_frequencies=all(
            summary.has_document_frequencies for summary in claiming
        ),
    )


@dataclass
class BrokerNode:
    """One node of a broker hierarchy.

    Leaves carry a source id and its summary; internal nodes carry
    children and lazily compute their aggregate summary.
    """

    name: str
    source_id: str | None = None
    summary: SContentSummary | None = None
    children: list["BrokerNode"] = dataclass_field(default_factory=list)
    _aggregate: SContentSummary | None = dataclass_field(default=None, repr=False)

    @classmethod
    def leaf(cls, source_id: str, summary: SContentSummary) -> "BrokerNode":
        return cls(name=source_id, source_id=source_id, summary=summary)

    @classmethod
    def broker(cls, name: str, children: list["BrokerNode"]) -> "BrokerNode":
        return cls(name=name, children=children)

    def is_leaf(self) -> bool:
        return self.source_id is not None

    def aggregate_summary(self) -> SContentSummary:
        """This node's summary: its own (leaf) or the merged children's."""
        if self.is_leaf():
            assert self.summary is not None
            return self.summary
        if self._aggregate is None:
            self._aggregate = merge_summaries(
                [child.aggregate_summary() for child in self.children]
            )
        return self._aggregate

    def leaves(self) -> list["BrokerNode"]:
        if self.is_leaf():
            return [self]
        found: list[BrokerNode] = []
        for child in self.children:
            found.extend(child.leaves())
        return found


class HierarchicalSelector:
    """Best-first descent of a broker hierarchy.

    Maintains a frontier ordered by the inner selector's goodness of
    each node's aggregate summary; repeatedly expands the best node
    until k leaves have been emitted.  Counts how many summaries were
    scored, the cost a hierarchy is meant to reduce.

    The inner selector must implement per-summary ``score`` (the GlOSS
    family and BySize do); rank-only selectors like CORI need the full
    summary set at once and cannot drive a descent.

    An optional tracer records one ``select:hierarchy`` span per descent
    with the number of summaries scored — the cost a hierarchy exists
    to reduce, now visible next to the query round it fed.
    """

    def __init__(
        self,
        root: BrokerNode,
        inner: SourceSelector | None = None,
        tracer=None,
    ) -> None:
        self._root = root
        self._inner = inner or VGlossMax()
        self.tracer = tracer
        self.summaries_scored = 0

    def select(self, terms: Sequence[str], k: int) -> list[str]:
        """The source ids of the k best leaves, best first."""
        if self.tracer is None:
            return self._descend(terms, k)
        with self.tracer.span(
            "select:hierarchy", selector=self._inner.name, k=k
        ) as span:
            selected = self._descend(terms, k)
            span.annotate(
                summaries_scored=self.summaries_scored,
                selected=" ".join(selected),
            )
        return selected

    def _descend(self, terms: Sequence[str], k: int) -> list[str]:
        counter = itertools.count()  # tie-breaker for equal goodness
        frontier: list[tuple[float, int, BrokerNode]] = []
        self.summaries_scored = 0

        def push(node: BrokerNode) -> None:
            goodness = self._inner.score(terms, node.aggregate_summary())
            self.summaries_scored += 1
            heapq.heappush(frontier, (-goodness, next(counter), node))

        push(self._root)
        selected: list[str] = []
        while frontier and len(selected) < k:
            _, _, node = heapq.heappop(frontier)
            if node.is_leaf():
                assert node.source_id is not None
                selected.append(node.source_id)
                continue
            for child in node.children:
                push(child)
        return selected
