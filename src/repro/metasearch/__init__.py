"""The metasearcher: discovery, selection, translation, merging, facade.

The query round itself — executors, per-source policies, outcomes —
lives in :mod:`repro.federation`; the most commonly used names are
re-exported here for convenience.
"""

from repro.federation import (
    AsyncExecutor,
    OutcomeStatus,
    ParallelExecutor,
    QueryPolicy,
    SerialExecutor,
    SourceOutcome,
)
from repro.metasearch.brokers import (
    BrokerNode,
    HierarchicalSelector,
    merge_summaries,
)
from repro.metasearch.client import Metasearcher, MetasearchResult, StreamEmission
from repro.metasearch.dedup import collapse_near_duplicates, jaccard, word_shingles
from repro.metasearch.discovery import DiscoveryService, KnownSource
from repro.metasearch.merging import (
    MERGE_STRATEGIES,
    CalibratedMerge,
    CoriMerge,
    MergeContext,
    MergedDocument,
    MergeStrategy,
    NormalizedScoreMerge,
    RawScoreMerge,
    RoundRobinMerge,
    StreamingMerge,
    TermFrequencyMerge,
    TfIdfRecomputeMerge,
)
from repro.metasearch.selection import (
    SELECTOR_REGISTRY,
    BGloss,
    BySize,
    Cori,
    CostAware,
    RandomSelector,
    SelectAll,
    SourceSelector,
    VGlossMax,
    VGlossSum,
    order_key,
)
from repro.metasearch.summary_index import SummaryIndex, TermColumns
from repro.metasearch.rewriting import PredicateRewriter, RewriteReport
from repro.metasearch.translation import (
    ClientTranslator,
    TranslationReport,
    capabilities_from_metadata,
)

__all__ = [
    "AsyncExecutor",
    "OutcomeStatus",
    "ParallelExecutor",
    "QueryPolicy",
    "SerialExecutor",
    "SourceOutcome",
    "BrokerNode",
    "HierarchicalSelector",
    "merge_summaries",
    "collapse_near_duplicates",
    "jaccard",
    "word_shingles",
    "Metasearcher",
    "MetasearchResult",
    "StreamEmission",
    "DiscoveryService",
    "KnownSource",
    "MERGE_STRATEGIES",
    "CalibratedMerge",
    "CoriMerge",
    "MergeContext",
    "MergedDocument",
    "MergeStrategy",
    "NormalizedScoreMerge",
    "RawScoreMerge",
    "RoundRobinMerge",
    "StreamingMerge",
    "TermFrequencyMerge",
    "TfIdfRecomputeMerge",
    "SELECTOR_REGISTRY",
    "BGloss",
    "BySize",
    "Cori",
    "CostAware",
    "RandomSelector",
    "SelectAll",
    "SourceSelector",
    "order_key",
    "SummaryIndex",
    "TermColumns",
    "VGlossMax",
    "VGlossSum",
    "PredicateRewriter",
    "RewriteReport",
    "ClientTranslator",
    "TranslationReport",
    "capabilities_from_metadata",
]
