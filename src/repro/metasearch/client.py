"""The metasearcher facade: select → translate → query → merge.

This is the end-to-end client the paper's Introduction promises: "users
have the illusion of a single combined document source."  One call to
:meth:`Metasearcher.search` performs all three §1 tasks over the
transport layer, using only what sources export through STARTS.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.metasearch.discovery import DiscoveryService, KnownSource
from repro.metasearch.merging import (
    MergeContext,
    MergedDocument,
    MergeStrategy,
    TfIdfRecomputeMerge,
)
from repro.metasearch.selection import SourceSelector, VGlossMax
from repro.metasearch.translation import ClientTranslator, TranslationReport
from repro.starts.errors import ProtocolError
from repro.starts.query import SQuery
from repro.starts.results import SQResults
from repro.transport.client import StartsClient
from repro.transport.network import SimulatedInternet

__all__ = ["MetasearchResult", "Metasearcher"]


@dataclass
class MetasearchResult:
    """Everything one metasearch produced, for inspection and display.

    Latency attributes model the two deployment styles: a serial client
    pays the *sum* of per-source round trips, a parallel fan-out client
    pays the *maximum* — the realistic figure for a metasearcher that
    issues its per-source queries concurrently.
    """

    documents: list[MergedDocument]
    selected_sources: list[str]
    per_source_results: dict[str, SQResults] = dataclass_field(default_factory=dict)
    translation_reports: dict[str, TranslationReport] = dataclass_field(
        default_factory=dict
    )
    query_latency_serial_ms: float = 0.0
    query_latency_parallel_ms: float = 0.0

    def linkages(self) -> list[str]:
        return [document.linkage for document in self.documents]

    def top(self, k: int) -> list[MergedDocument]:
        return self.documents[:k]


class Metasearcher:
    """A configurable metasearcher over a simulated internet.

    Args:
        internet: the network where sources are published.
        resource_urls: @SResource URLs to harvest on :meth:`refresh`.
        selector: source-selection strategy (default vGlOSS-Max).
        merger: rank-merging strategy (default tf·idf recompute).
    """

    def __init__(
        self,
        internet: SimulatedInternet,
        resource_urls: list[str] | None = None,
        selector: SourceSelector | None = None,
        merger: MergeStrategy | None = None,
    ) -> None:
        self.client = StartsClient(internet)
        self.discovery = DiscoveryService(self.client)
        self.selector = selector or VGlossMax()
        self.merger = merger or TfIdfRecomputeMerge()
        self.translator = ClientTranslator()
        self.resource_urls = list(resource_urls or [])

    # -- discovery ---------------------------------------------------------

    def refresh(self) -> list[KnownSource]:
        """Harvest every configured resource; returns all known sources."""
        for url in self.resource_urls:
            self.discovery.refresh_resource(url)
        return self.discovery.known_sources()

    def add_resource(self, resource_url: str) -> None:
        if resource_url not in self.resource_urls:
            self.resource_urls.append(resource_url)

    # -- the three metasearch tasks -------------------------------------------

    def search(
        self,
        query: SQuery,
        k_sources: int = 3,
        selector: SourceSelector | None = None,
        merger: MergeStrategy | None = None,
        group_by_resource: bool = False,
    ) -> MetasearchResult:
        """Run the full pipeline for one query.

        Args:
            group_by_resource: when True, selected sources that share a
                resource receive *one* query, posted to the first source
                with the siblings in the ``Sources`` attribute (Figure 1
                routing) — the resource then eliminates duplicates
                server-side.  Appropriate when a resource's sources
                share an engine, so their raw scores are comparable.

        Raises:
            ProtocolError: if the query has neither expression, or no
                sources have been discovered yet.
        """
        query.validate()
        known = self.discovery.known_sources()
        if not known:
            raise ProtocolError("no sources discovered; call refresh() first")

        selector = selector or self.selector
        merger = merger or self.merger
        terms = self._selection_terms(query)

        summaries = self.discovery.summaries()
        if summaries:
            selected_ids = selector.select(terms, summaries, k_sources)
        else:
            selected_ids = [source.source_id for source in known[:k_sources]]

        per_source_results: dict[str, SQResults] = {}
        reports: dict[str, TranslationReport] = {}
        query_round_start = len(self._internet_log())
        groups = self._route(selected_ids, group_by_resource)
        for entry_id, sibling_ids in groups:
            source = self.discovery.source(entry_id)
            translated, report = self.translator.translate(
                query, source.metadata, summary=summaries.get(entry_id)
            )
            reports[entry_id] = report
            if (
                translated.filter_expression is None
                and translated.ranking_expression is None
            ):
                continue  # Nothing would survive: skip the round trip.
            if sibling_ids:
                translated = translated.with_sources(*sibling_ids)
            per_source_results[entry_id] = self.client.query(
                source.query_url, translated
            )

        context = MergeContext(
            metadata={
                source_id: self.discovery.source(source_id).metadata
                for source_id in per_source_results
            },
            summaries={
                source_id: summary
                for source_id, summary in summaries.items()
                if source_id in per_source_results
            },
            samples={
                source_id: sample
                for source_id in per_source_results
                if (sample := self.discovery.source(source_id).sample_results)
                is not None
            },
            query_terms=tuple(terms),
        )
        documents = merger.merge(per_source_results, context)
        if query.max_number_documents:
            documents = documents[: query.max_number_documents]

        round_latencies = [
            record.latency_ms
            for record in self._internet_log()[query_round_start:]
        ]
        return MetasearchResult(
            documents,
            selected_ids,
            per_source_results,
            reports,
            query_latency_serial_ms=sum(round_latencies),
            query_latency_parallel_ms=max(round_latencies, default=0.0),
        )

    def _internet_log(self):
        return self.client._internet.log

    def explain_plan(
        self,
        query: SQuery,
        k_sources: int = 3,
        selector: SourceSelector | None = None,
    ) -> str:
        """A dry run: what *would* happen, without touching the network.

        Renders the selection ranking (with goodness and bGlOSS result
        estimates) and, for each source that would be contacted, the
        translated query and everything translation would drop.
        """
        from repro.metasearch.selection import BGloss

        query.validate()
        selector = selector or self.selector
        terms = self._selection_terms(query)
        summaries = self.discovery.summaries()

        lines = [f"plan for terms {terms} (selector {selector.name}, k={k_sources})"]
        ranked = selector.rank(terms, summaries) if summaries else []
        estimator = BGloss()
        for position, (source_id, goodness) in enumerate(ranked):
            chosen = "->" if position < k_sources else "  "
            estimate = estimator.score(terms, summaries[source_id])
            lines.append(
                f"{chosen} {source_id:<14} goodness={goodness:10.3f} "
                f"est. matches={estimate:6.1f}"
            )

        for source_id, _ in ranked[:k_sources]:
            known = self.discovery.source(source_id)
            translated, report = self.translator.translate(
                query, known.metadata, summary=summaries.get(source_id)
            )
            lines.append(f"\n{source_id}:")
            filter_text = (
                translated.filter_expression.serialize()
                if translated.filter_expression
                else "(none)"
            )
            ranking_text = (
                translated.ranking_expression.serialize()
                if translated.ranking_expression
                else "(none)"
            )
            lines.append(f"  filter:  {filter_text}")
            lines.append(f"  ranking: {ranking_text}")
            if report.dropped:
                for note in report.dropped:
                    lines.append(f"  note: {note}")
            else:
                lines.append("  note: lossless")
        return "\n".join(lines)

    def _route(
        self, selected_ids: list[str], group_by_resource: bool
    ) -> list[tuple[str, list[str]]]:
        """(entry source, sibling sources) pairs for the query round.

        Without grouping every source is its own entry.  With grouping,
        sources sharing a resource collapse into one entry (the
        best-ranked one) carrying the rest in ``Sources``.
        """
        if not group_by_resource:
            return [(source_id, []) for source_id in selected_ids]
        by_resource: dict[str | None, list[str]] = {}
        order: list[str | None] = []
        for source_id in selected_ids:
            resource_url = self.discovery.source(source_id).resource_url
            if resource_url not in by_resource:
                by_resource[resource_url] = []
                order.append(resource_url)
            by_resource[resource_url].append(source_id)
        return [
            (members[0], members[1:])
            for members in (by_resource[resource_url] for resource_url in order)
        ]

    @staticmethod
    def _selection_terms(query: SQuery) -> list[str]:
        """The words used for source selection: all expression terms."""
        seen: list[str] = []
        for term in query.expression_terms():
            if term.comparison_modifier_present():
                continue  # Dates and other comparisons say nothing topical.
            for word in term.lstring.text.split():
                lowered = word.lower()
                if lowered not in seen:
                    seen.append(lowered)
        return seen
