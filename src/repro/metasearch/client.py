"""The metasearcher facade: select → translate → query → merge.

This is the end-to-end client the paper's Introduction promises: "users
have the illusion of a single combined document source."  One call to
:meth:`Metasearcher.search` performs all three §1 tasks over the
transport layer, using only what sources export through STARTS.

The query round itself is delegated to the federation runtime
(:mod:`repro.federation`): an executor fans the translated per-source
requests out (serially or over a thread pool), per-source policies
bound how long a slow source is waited for and how often a flaky one is
retried, and a source that fails or times out becomes a recorded
:class:`~repro.federation.SourceOutcome` instead of an exception —
merging proceeds over the survivors.  Every phase is traced;
:meth:`MetasearchResult.explain_trace` renders the whole timeline.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field as dataclass_field

from repro.cache.core import FRESH, STALE
from repro.cache.keys import query_cache_key
from repro.cache.negative import NegativeSourceCache
from repro.cache.policy import CachePolicy
from repro.cache.results import QueryResultCache
from repro.federation.executor import Executor, SerialExecutor, submit_background
from repro.federation.outcomes import OutcomeStatus, SourceOutcome
from repro.federation.policy import QueryPolicy
from repro.federation.runner import QueryDispatcher, SourceRequest
from repro.metasearch.discovery import DiscoveryService, KnownSource
from repro.metasearch.merging import (
    MergeContext,
    MergedDocument,
    MergeStrategy,
    TfIdfRecomputeMerge,
)
from repro.metasearch.selection import SourceSelector, VGlossMax
from repro.metasearch.translation import ClientTranslator, TranslationReport
from repro.observability.health import HealthPolicy, SourceHealth
from repro.observability.metrics import get_registry
from repro.observability.querylog import QueryLogRecord, get_query_log
from repro.observability.render import render_trace
from repro.observability.tracing import Trace, Tracer
from repro.starts.errors import ProtocolError
from repro.starts.query import SQuery
from repro.starts.results import SQResults
from repro.transport.client import StartsClient
from repro.transport.network import SimulatedInternet

__all__ = ["MetasearchResult", "Metasearcher", "StreamEmission"]


def _observe_phase(phase: str, duration_ms: float) -> None:
    get_registry().histogram(
        "metasearch_phase_ms",
        "Wall-clock duration of each metasearch pipeline phase.",
        labels=("phase",),
    ).labels(phase=phase).observe(duration_ms)


def _count_search(result: str) -> None:
    get_registry().counter(
        "metasearch_searches_total",
        "Completed searches by how the answer was produced.",
        labels=("result",),
    ).labels(result=result).inc()


#: Pipeline phase names folded into the wide event's ``phase_ms``.
_LOGGED_PHASES = ("discover", "select", "translate", "query", "merge")


def _log_search(
    tracer: Tracer,
    terms: list[str],
    outcome: str,
    started_ms: float,
    selected_ids: Sequence[str] = (),
    result: "MetasearchResult | None" = None,
    error: str = "",
    terminated_early: bool = False,
) -> None:
    """Emit the one wide event a finished (or failed) search owes.

    Every exit path of ``search``/``search_stream`` funnels here: the
    whole-search histogram gets the wall-clock observation (with the
    trace id as its exemplar), and the process query log gets the flat
    record — query shape, per-phase times folded from the trace's
    spans, wire/cache tallies from the tracer's counters.
    """
    elapsed_ms = tracer.now_ms() - started_ms
    get_registry().histogram(
        "metasearch_search_ms",
        "Whole-search wall-clock milliseconds, every exit path included.",
    ).observe(elapsed_ms, exemplar=tracer.trace_id)
    log = get_query_log()
    if not log.enabled:
        return
    phase_ms: dict[str, float] = {}
    for span in tracer.trace().walk():
        phase = span.name.split(":", 1)[0]
        if phase in _LOGGED_PHASES:
            phase_ms[phase] = phase_ms.get(phase, 0.0) + span.duration_ms
    requests = retries = hedges = timeouts = failures = 0
    cost = 0.0
    for counters in tracer.counters.values():
        requests += counters.requests
        retries += counters.retries
        hedges += counters.hedges
        timeouts += counters.timeouts
        failures += counters.failures
        cost += counters.cost
    cache = tracer.cache
    log.record(
        QueryLogRecord(
            terms=" ".join(terms),
            outcome=outcome,
            total_ms=elapsed_ms,
            trace_id=tracer.trace_id,
            selected_sources=tuple(selected_ids),
            phase_ms=phase_ms,
            n_results=len(result.documents) if result is not None else 0,
            sources_ok=len(result.ok_sources()) if result is not None else 0,
            sources_failed=(
                len(result.failed_sources()) if result is not None else 0
            ),
            sources_skipped=(
                len(result.skipped_sources()) if result is not None else 0
            ),
            requests=requests,
            retries=retries,
            hedges=hedges,
            timeouts=timeouts,
            failures=failures,
            cache_hits=cache.hits if cache is not None else 0,
            cache_stale_hits=cache.stale_hits if cache is not None else 0,
            negative_skips=cache.negative_skips if cache is not None else 0,
            cost=cost,
            terminated_early=terminated_early,
            error=error,
        )
    )


def _failure_outcome(error: BaseException) -> str:
    """``shed`` for admission-control refusals, ``error`` otherwise."""
    return (
        "shed"
        if type(error).__name__ == "BrokerOverloadedError"
        else "error"
    )


@dataclass
class _CachedSearch:
    """What the result cache stores: the sanitized result + its wire cost.

    ``cost`` is the simulated monetary cost the original round paid
    (every attempt, failed or hedged, included) — it becomes
    ``cost_saved`` each time a hit avoids re-paying it.
    """

    result: "MetasearchResult"
    cost: float


@dataclass
class MetasearchResult:
    """Everything one metasearch produced, for inspection and display.

    Latency attributes model the two deployment styles over the
    *simulated* wire time each routed group occupied (attempts, backoff
    waits and hedges included): a serial client pays the *sum* across
    groups, a parallel fan-out client pays the *maximum* — requests
    within one group are sequential on the wire either way.
    """

    documents: list[MergedDocument]
    selected_sources: list[str]
    per_source_results: dict[str, SQResults] = dataclass_field(default_factory=dict)
    translation_reports: dict[str, TranslationReport] = dataclass_field(
        default_factory=dict
    )
    query_latency_serial_ms: float = 0.0
    query_latency_parallel_ms: float = 0.0
    outcomes: dict[str, SourceOutcome] = dataclass_field(default_factory=dict)
    trace: Trace | None = None
    #: ``None`` when the answer came off the wire (or caching is off);
    #: ``"hit"`` / ``"stale"`` when it was served from the result cache
    #: (``"stale"`` means a background revalidation was scheduled).
    cache_status: str | None = None

    def linkages(self) -> list[str]:
        return [document.linkage for document in self.documents]

    def top(self, k: int) -> list[MergedDocument]:
        return self.documents[:k]

    # -- outcome views -----------------------------------------------------

    def ok_sources(self) -> list[str]:
        return [sid for sid, outcome in self.outcomes.items() if outcome.ok]

    def failed_sources(self) -> list[str]:
        return [
            sid
            for sid, outcome in self.outcomes.items()
            if outcome.status in (OutcomeStatus.ERROR, OutcomeStatus.TIMEOUT)
        ]

    def skipped_sources(self) -> list[str]:
        return [
            sid
            for sid, outcome in self.outcomes.items()
            if outcome.status is OutcomeStatus.SKIPPED
        ]

    def outcome_counts(self) -> dict[str, int]:
        """``{status value: count}`` over every entry source's outcome."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes.values():
            counts[outcome.status.value] = counts.get(outcome.status.value, 0) + 1
        return counts

    def explain_trace(self) -> str:
        """The full query timeline: spans, attempts, retries, counters."""
        lines = []
        if self.cache_status is not None:
            lines.append(f"result cache: {self.cache_status}")
        if self.outcomes:
            lines.append("source outcomes:")
            lines.extend(
                f"  {self.outcomes[sid].describe()}" for sid in self.outcomes
            )
        if self.trace is not None:
            if lines:
                lines.append("")
            lines.append(render_trace(self.trace))
        if not lines:
            return "(no trace recorded)"
        return "\n".join(lines)


@dataclass
class StreamEmission:
    """One incremental answer from :meth:`Metasearcher.search_stream`.

    An emission is produced every time a source's outcome lands (and
    once, final, when the stream finishes): the merged rank so far, how
    much of the round has completed, and — on the last emission only —
    the assembled :class:`MetasearchResult`.
    """

    #: 0-based position of this emission in the stream.
    sequence: int
    #: The outcome that triggered this emission; ``None`` on the final
    #: wrap-up emission and on cache-served single-emission streams.
    outcome: SourceOutcome | None
    #: Merged rank over every source that has answered so far, already
    #: truncated to the query's ``MaxNumberDocuments``.
    documents: list[MergedDocument]
    #: Entry sources completed / still in flight after this emission.
    completed: int
    pending: int
    #: Wall-clock milliseconds since the stream started.
    elapsed_ms: float
    #: True once the stream decided to stop before every source
    #: answered (provably stable top-k, or the deadline expired).
    terminated_early: bool = False
    #: The final result; set only on the last emission.
    result: MetasearchResult | None = None

    @property
    def is_final(self) -> bool:
        return self.result is not None


class Metasearcher:
    """A configurable metasearcher over a simulated internet.

    Args:
        internet: the network where sources are published.
        resource_urls: @SResource URLs to harvest on :meth:`refresh`.
        selector: source-selection strategy (default vGlOSS-Max).
        merger: rank-merging strategy (default tf·idf recompute).
        executor: how the query round is driven — the default
            :class:`~repro.federation.SerialExecutor` is deterministic;
            pass :class:`~repro.federation.ParallelExecutor` for real
            concurrent fan-out.
        query_policy: default per-source execution policy (deadline,
            retries, backoff, hedging).
        query_policies: per-source-id policy overrides.
        cache_policy: configuration of the caching subsystem (result
            cache, negative source cache, summary TTLs).  Defaults to
            :class:`~repro.cache.CachePolicy` with everything on; pass
            ``CachePolicy.disabled()`` for the paper-faithful pipeline
            with no caching anywhere.
        health: opt-in source health scoring — pass a
            :class:`~repro.observability.SourceHealth` (or just a
            :class:`~repro.observability.HealthPolicy` to have one
            built).  When present, every query-round outcome feeds the
            scorer, unhealthy sources are deprioritized in selection
            and hedged immediately, and their negative-cache holds are
            scaled up.  ``None`` (the default) changes nothing.
    """

    def __init__(
        self,
        internet: SimulatedInternet,
        resource_urls: list[str] | None = None,
        selector: SourceSelector | None = None,
        merger: MergeStrategy | None = None,
        executor: Executor | None = None,
        query_policy: QueryPolicy | None = None,
        query_policies: dict[str, QueryPolicy] | None = None,
        cache_policy: CachePolicy | None = None,
        health: SourceHealth | HealthPolicy | None = None,
    ) -> None:
        self.client = StartsClient(internet)
        self.cache_policy = cache_policy or CachePolicy()
        self.discovery = DiscoveryService(
            self.client,
            ttl_policy=self.cache_policy.summary_ttl
            if self.cache_policy.enabled
            else None,
        )
        self.selector = selector or VGlossMax()
        self.merger = merger or TfIdfRecomputeMerge()
        self.translator = ClientTranslator()
        self.executor: Executor = executor or SerialExecutor()
        self.query_policy = query_policy or QueryPolicy()
        self.query_policies = dict(query_policies or {})
        self.health: SourceHealth | None = (
            SourceHealth(health) if isinstance(health, HealthPolicy) else health
        )
        self.resource_urls = list(resource_urls or [])
        self.result_cache: QueryResultCache | None = None
        self.negative_cache: NegativeSourceCache | None = None
        if self.cache_policy.enabled:
            self.result_cache = QueryResultCache(
                capacity=self.cache_policy.result_capacity,
                ttl_ms=self.cache_policy.result_ttl_ms,
                stale_grace_ms=self.cache_policy.stale_grace_ms,
                max_size=self.cache_policy.result_max_documents,
            )
            self.negative_cache = NegativeSourceCache(
                ttl_ms=self.cache_policy.negative_ttl_ms,
                failure_threshold=self.cache_policy.negative_failure_threshold,
            )
            self.discovery.add_purge_hook(self._purge_source)

    def _purge_source(self, source_id: str) -> None:
        """Source knowledge changed or was forgotten: drop derived caches."""
        if self.result_cache is not None:
            self.result_cache.invalidate_source(source_id)
        if self.negative_cache is not None:
            self.negative_cache.forget(source_id)

    # -- discovery ---------------------------------------------------------

    def refresh(self, tracer: Tracer | None = None) -> list[KnownSource]:
        """Harvest every configured resource; returns all known sources."""
        tracer = tracer or Tracer()
        self.client.tracer = tracer
        with tracer.span("discover", resources=len(self.resource_urls)) as span:
            for url in self.resource_urls:
                self.discovery.refresh_resource(url)
        _observe_phase("discover", span.duration_ms)
        return self.discovery.known_sources()

    def add_resource(self, resource_url: str) -> None:
        if resource_url not in self.resource_urls:
            self.resource_urls.append(resource_url)

    # -- the three metasearch tasks -------------------------------------------

    def search(
        self,
        query: SQuery,
        k_sources: int = 3,
        selector: SourceSelector | None = None,
        merger: MergeStrategy | None = None,
        group_by_resource: bool = False,
        executor: Executor | None = None,
        tracer: Tracer | None = None,
    ) -> MetasearchResult:
        """Run the full pipeline for one query.

        Args:
            group_by_resource: when True, selected sources that share a
                resource receive *one* query, posted to the first source
                with the siblings in the ``Sources`` attribute (Figure 1
                routing) — the resource then eliminates duplicates
                server-side.  Appropriate when a resource's sources
                share an engine, so their raw scores are comparable.
            executor: overrides the searcher's executor for this call.
            tracer: receives the phase spans and per-source counters; a
                fresh tracer backs each search when none is given, and
                its trace is attached to the result either way.

        Raises:
            ProtocolError: if the query has neither expression, or no
                sources have been discovered yet.
        """
        query.validate()
        known = self.discovery.known_sources()
        if not known:
            raise ProtocolError("no sources discovered; call refresh() first")

        selector = selector or self.selector
        merger = merger or self.merger
        executor = executor or self.executor
        tracer = tracer or Tracer()
        self.client.tracer = tracer
        terms = self._selection_terms(query)

        started_ms = tracer.now_ms()
        selected_ids: list[str] = []
        try:
            with tracer.span("search", terms=" ".join(terms)):
                selected_ids, summaries = self._select(
                    tracer, selector, terms, k_sources, known
                )
                key: str | None = None
                if self.result_cache is not None:
                    key = self._cache_key(
                        query, selected_ids, group_by_resource, merger
                    )
                    cached, state = self.result_cache.lookup(key)
                    if state == FRESH:
                        tracer.count_cache(hits=1, cost_saved=cached.cost)
                        tracer.event("cache", status="hit", saved_cost=cached.cost)
                        _count_search("hit")
                        served = self._serve_cached(cached.result, tracer, "hit")
                        _log_search(
                            tracer, terms, "hit", started_ms, selected_ids, served
                        )
                        return served
                    if state == STALE:
                        tracer.count_cache(stale_hits=1)
                        tracer.event("cache", status="stale")
                        self._schedule_revalidation(
                            key,
                            query,
                            list(selected_ids),
                            dict(summaries),
                            merger,
                            executor,
                            group_by_resource,
                            terms,
                        )
                        _count_search("stale")
                        served = self._serve_cached(cached.result, tracer, "stale")
                        _log_search(
                            tracer, terms, "stale", started_ms, selected_ids, served
                        )
                        return served
                    tracer.count_cache(misses=1)
                result = self._query_round(
                    self.client,
                    tracer,
                    query,
                    selected_ids,
                    summaries,
                    merger,
                    executor,
                    group_by_resource,
                    terms,
                )
        except Exception as error:
            outcome = _failure_outcome(error)
            _count_search(outcome)
            _log_search(
                tracer, terms, outcome, started_ms, selected_ids, error=repr(error)
            )
            raise
        if key is not None:
            self._store_result(key, result, selected_ids, tracer)
        _count_search("wire")
        result.trace = tracer.trace()
        _log_search(tracer, terms, "wire", started_ms, selected_ids, result)
        return result

    def search_stream(
        self,
        query: SQuery,
        k_sources: int = 3,
        selector: SourceSelector | None = None,
        merger: MergeStrategy | None = None,
        group_by_resource: bool = False,
        executor: Executor | None = None,
        tracer: Tracer | None = None,
        deadline_ms: float | None = None,
        early_stop: bool = True,
    ) -> Iterator[StreamEmission]:
        """The incremental :meth:`search`: emissions as sources answer.

        The same pipeline — select, cache, translate, dispatch, merge —
        but the query round streams: every completed source outcome
        yields a :class:`StreamEmission` carrying the merged rank so
        far, and the final emission carries the assembled
        :class:`MetasearchResult`.  The final rank is bit-identical to
        what batch :meth:`search` would return for the same world.

        The stream can end before every source answers:

        * ``early_stop`` (default on) terminates once the current top
          ``MaxNumberDocuments`` provably cannot change — the merge
          strategy's scores are arrival-order-stable and the k-th score
          strictly exceeds every pending source's score upper bound.
          Because the *kept* documents are exactly that stable top-k,
          the bit-identical guarantee survives early termination.
        * ``deadline_ms`` bounds the stream's wall-clock time.

        Sources still in flight at termination are cancelled (the
        executor abandons their tasks) and recorded as ``CANCELLED``
        outcomes — visible in the result, neutral to health scoring and
        the negative cache.  An early-terminated result is never stored
        in the result cache; cache hits and stale serves come back as a
        single final emission, exactly as :meth:`search` serves them.
        """
        query.validate()
        known = self.discovery.known_sources()
        if not known:
            raise ProtocolError("no sources discovered; call refresh() first")

        selector = selector or self.selector
        merger = merger or self.merger
        executor = executor or self.executor
        tracer = tracer or Tracer()
        self.client.tracer = tracer
        terms = self._selection_terms(query)
        started_ms = tracer.now_ms()
        selected_ids: list[str] = []

        search_span = tracer.open_span("search", terms=" ".join(terms))
        try:
            selected_ids, summaries = self._select(
                tracer, selector, terms, k_sources, known
            )
            key: str | None = None
            if self.result_cache is not None:
                key = self._cache_key(query, selected_ids, group_by_resource, merger)
                cached, state = self.result_cache.lookup(key)
                if state in (FRESH, STALE):
                    status = "hit" if state == FRESH else "stale"
                    if state == FRESH:
                        tracer.count_cache(hits=1, cost_saved=cached.cost)
                    else:
                        tracer.count_cache(stale_hits=1)
                        self._schedule_revalidation(
                            key,
                            query,
                            list(selected_ids),
                            dict(summaries),
                            merger,
                            executor,
                            group_by_resource,
                            terms,
                        )
                    tracer.event("cache", parent=search_span, status=status)
                    _count_search(status)
                    tracer.close_span(search_span)
                    served = self._serve_cached(cached.result, tracer, status)
                    _log_search(
                        tracer, terms, status, started_ms, selected_ids, served
                    )
                    yield StreamEmission(
                        sequence=0,
                        outcome=None,
                        documents=list(served.documents),
                        completed=0,
                        pending=0,
                        elapsed_ms=tracer.now_ms() - started_ms,
                        result=served,
                    )
                    return
                tracer.count_cache(misses=1)

            requests, outcomes, reports = self._translate(
                tracer, query, selected_ids, summaries, group_by_resource
            )
            requests = self._filter_negative_cached(tracer, requests, outcomes)
            dispatcher = QueryDispatcher(
                self.client,
                executor=executor,
                policy=self.query_policy,
                policies=self._adapted_policies(requests),
                tracer=tracer,
            )
            # The accumulator filters this down to the sources that
            # actually answer, mirroring what _merge_context builds for
            # the batch path — so the final rank matches the oracle.
            stream_merge = merger.start_stream(
                self._candidate_context(selected_ids, summaries, terms)
            )
            k = query.max_number_documents
            pending_ids = {request.source_id for request in requests}
            terminated_early = False
            termination_reason: str | None = None
            sequence = 0
            first_result_seen = False

            query_span = tracer.open_span(
                "query",
                parent=search_span,
                executor=executor.name,
                requests=len(requests),
                streaming=True,
            )
            outcome_stream = dispatcher.dispatch_stream(requests, parent=query_span)
            try:
                for outcome in outcome_stream:
                    outcomes[outcome.source_id] = outcome
                    pending_ids.discard(outcome.source_id)
                    if outcome.ok and outcome.results is not None:
                        stream_merge.feed(outcome.source_id, outcome.results)
                    documents = stream_merge.current_top_k(k or None)
                    elapsed_ms = tracer.now_ms() - started_ms
                    if documents and not first_result_seen:
                        first_result_seen = True
                        get_registry().histogram(
                            "stream_first_result_ms",
                            "Wall-clock time until a streamed search first "
                            "emitted merged documents.",
                        ).observe(elapsed_ms)
                    tracer.event(
                        f"emit:{sequence}",
                        parent=query_span,
                        source=outcome.source_id,
                        status=outcome.status.value,
                        documents=len(documents),
                        pending=len(pending_ids),
                    )
                    yield StreamEmission(
                        sequence=sequence,
                        outcome=outcome,
                        documents=list(documents),
                        completed=len(outcomes),
                        pending=len(pending_ids),
                        elapsed_ms=elapsed_ms,
                    )
                    sequence += 1
                    if not pending_ids:
                        break
                    if deadline_ms is not None and elapsed_ms >= deadline_ms:
                        terminated_early = True
                        termination_reason = "stream deadline expired"
                        break
                    if early_stop and k and stream_merge.is_stable_top_k(
                        k, pending_ids
                    ):
                        terminated_early = True
                        termination_reason = (
                            "top-k stable: no pending source can change the answer"
                        )
                        break
            finally:
                # Break or thrown-in close: abandon in-flight tasks now,
                # not at garbage collection.
                outcome_stream.close()
            if terminated_early:
                query_span.annotate(terminated_early=True, reason=termination_reason)
                tracer.event(
                    "early-termination", parent=query_span, reason=termination_reason
                )
                for source_id in sorted(pending_ids):
                    outcomes[source_id] = SourceOutcome.cancelled(
                        source_id, termination_reason
                    )
            tracer.close_span(query_span)
            _observe_phase("query", query_span.duration_ms)
            self._record_outcomes(outcomes)

            documents = stream_merge.current_top_k(k or None)
            per_source_results = {
                source_id: outcome.results
                for source_id, outcome in outcomes.items()
                if outcome.ok and outcome.results is not None
            }
            group_times = [outcome.elapsed_ms for outcome in outcomes.values()]
            result = MetasearchResult(
                list(documents),
                list(selected_ids),
                per_source_results,
                reports,
                query_latency_serial_ms=sum(group_times),
                query_latency_parallel_ms=max(group_times, default=0.0),
                outcomes=outcomes,
            )
            if key is not None and not terminated_early:
                # A cancelled round answered with fewer sources than the
                # key promises; only complete rounds are cacheable.
                self._store_result(key, result, selected_ids, tracer)
            _count_search("stream")
        except Exception as error:
            outcome = _failure_outcome(error)
            _count_search(outcome)
            _log_search(
                tracer, terms, outcome, started_ms, selected_ids, error=repr(error)
            )
            raise
        finally:
            tracer.close_span(search_span)
        result.trace = tracer.trace()
        _log_search(
            tracer,
            terms,
            "stream",
            started_ms,
            selected_ids,
            result,
            terminated_early=terminated_early,
        )
        yield StreamEmission(
            sequence=sequence,
            outcome=None,
            documents=list(documents),
            completed=len(outcomes),
            pending=len(pending_ids) if terminated_early else 0,
            elapsed_ms=tracer.now_ms() - started_ms,
            terminated_early=terminated_early,
            result=result,
        )

    def _candidate_context(
        self, selected_ids: list[str], summaries: dict, terms: list[str]
    ) -> MergeContext:
        """Merge raw material for every *candidate* source of a stream.

        The streaming accumulator narrows it to the sources that answer
        (see :meth:`StreamingMerge._context_for`), which reproduces the
        batch path's :meth:`_merge_context` exactly.
        """
        return MergeContext(
            metadata={
                source_id: self.discovery.source(source_id).metadata
                for source_id in selected_ids
            },
            summaries={
                source_id: summary
                for source_id, summary in summaries.items()
                if source_id in selected_ids
            },
            samples={
                source_id: sample
                for source_id in selected_ids
                if (sample := self.discovery.source(source_id).sample_results)
                is not None
            },
            query_terms=tuple(terms),
        )

    def _query_round(
        self,
        client: StartsClient,
        tracer: Tracer,
        query: SQuery,
        selected_ids: list[str],
        summaries: dict,
        merger: MergeStrategy,
        executor: Executor,
        group_by_resource: bool,
        terms: list[str],
    ) -> MetasearchResult:
        """Translate → dispatch → merge for an already-selected source set.

        Returns a result with ``trace=None``; the caller attaches the
        trace (searches) or stores the result as-is (revalidations).
        """
        requests, outcomes, reports = self._translate(
            tracer, query, selected_ids, summaries, group_by_resource
        )
        requests = self._filter_negative_cached(tracer, requests, outcomes)
        dispatcher = QueryDispatcher(
            client,
            executor=executor,
            policy=self.query_policy,
            policies=self._adapted_policies(requests),
            tracer=tracer,
        )
        with tracer.span(
            "query", executor=executor.name, requests=len(requests)
        ) as query_span:
            for outcome in dispatcher.dispatch(requests, parent=query_span):
                outcomes[outcome.source_id] = outcome
        _observe_phase("query", query_span.duration_ms)
        self._record_outcomes(outcomes)
        per_source_results = {
            source_id: outcome.results
            for source_id, outcome in outcomes.items()
            if outcome.ok and outcome.results is not None
        }
        with tracer.span(
            "merge",
            strategy=type(merger).__name__,
            sources=len(per_source_results),
        ) as merge_span:
            documents = merger.merge(
                per_source_results,
                self._merge_context(per_source_results, summaries, terms),
            )
            if query.max_number_documents:
                documents = documents[: query.max_number_documents]
        _observe_phase("merge", merge_span.duration_ms)

        # Each outcome is one routed group; its elapsed_ms already sums
        # the requests within the group (attempts, backoff, hedges are
        # sequential on that group's wire).  A serial client pays the
        # sum across groups, a fan-out client the slowest group.
        group_times = [outcome.elapsed_ms for outcome in outcomes.values()]
        return MetasearchResult(
            documents,
            list(selected_ids),
            per_source_results,
            reports,
            query_latency_serial_ms=sum(group_times),
            query_latency_parallel_ms=max(group_times, default=0.0),
            outcomes=outcomes,
        )

    # -- caching -----------------------------------------------------------

    def _cache_key(
        self,
        query: SQuery,
        selected_ids: list[str],
        group_by_resource: bool,
        merger: MergeStrategy,
    ) -> str:
        """The result-cache key: canonical query + everything else that
        changes the merged answer for a fixed source set."""
        return "|".join(
            (
                query_cache_key(query, selected_ids),
                f"grp={'T' if group_by_resource else 'F'}",
                f"merge={type(merger).__name__}",
            )
        )

    @staticmethod
    def _copy_result(
        source: MetasearchResult,
        trace: Trace | None = None,
        cache_status: str | None = None,
    ) -> MetasearchResult:
        """A fresh :class:`MetasearchResult` with shallow-copied containers,
        so cached master and served copies never share mutable state."""
        return MetasearchResult(
            documents=list(source.documents),
            selected_sources=list(source.selected_sources),
            per_source_results=dict(source.per_source_results),
            translation_reports=dict(source.translation_reports),
            query_latency_serial_ms=source.query_latency_serial_ms,
            query_latency_parallel_ms=source.query_latency_parallel_ms,
            outcomes=dict(source.outcomes),
            trace=trace,
            cache_status=cache_status,
        )

    def _serve_cached(
        self, cached: MetasearchResult, tracer: Tracer, status: str
    ) -> MetasearchResult:
        """Serve a copy of a cached result, trace attached, status marked.

        The latency fields keep the *original* wire cost on purpose —
        they model what the answer cost to compute; the trace and
        ``cache_status`` show it was not paid again.
        """
        return self._copy_result(cached, trace=tracer.trace(), cache_status=status)

    def _store_result(
        self,
        key: str,
        result: MetasearchResult,
        selected_ids: list[str],
        tracer: Tracer,
    ) -> None:
        wire_cost = sum(outcome.cost for outcome in result.outcomes.values())
        evictions = self.result_cache.store(
            key,
            _CachedSearch(self._copy_result(result), wire_cost),
            source_ids=tuple(selected_ids),
            size=len(result.documents),
            cost=wire_cost,
        )
        tracer.count_cache(stores=1, evictions=evictions)

    def _filter_negative_cached(
        self,
        tracer: Tracer,
        requests: list[SourceRequest],
        outcomes: dict[str, SourceOutcome],
    ) -> list[SourceRequest]:
        """Drop routed groups whose entry source is negative-cached.

        Each skip is recorded as a ``SKIPPED`` outcome carrying the
        negative-cache reason, counted on the tracer, and visible in
        ``explain_trace()`` — the probe simply never reaches the wire.
        """
        if self.negative_cache is None:
            return requests
        kept: list[SourceRequest] = []
        for request in requests:
            reason = self.negative_cache.skip_reason(request.source_id)
            if reason is None:
                kept.append(request)
                continue
            outcomes[request.source_id] = SourceOutcome.skip(
                request.source_id, reason, request.sibling_ids
            )
            tracer.count_cache(negative_skips=1)
            tracer.event("cache", source=request.source_id, status="negative-skip")
        return kept

    def _adapted_policies(
        self, requests: list[SourceRequest]
    ) -> dict[str, QueryPolicy]:
        """Per-source policies for this round, health adaptation applied.

        Without a health scorer this is just the configured overrides.
        With one, each entry source's effective policy is run through
        :meth:`~repro.observability.SourceHealth.adapt` — unhealthy
        sources get their hedge fired immediately.
        """
        if self.health is None:
            return self.query_policies
        policies = dict(self.query_policies)
        for request in requests:
            base = policies.get(request.source_id, self.query_policy)
            policies[request.source_id] = self.health.adapt(request.source_id, base)
        return policies

    def _record_outcomes(self, outcomes: dict[str, SourceOutcome]) -> None:
        """Feed query-round outcomes back into health and negative cache."""
        if self.health is not None:
            for outcome in outcomes.values():
                self.health.record_outcome(outcome)
        if self.negative_cache is None:
            return
        for source_id, outcome in outcomes.items():
            if outcome.ok:
                self.negative_cache.record_success(source_id)
            elif outcome.status in (OutcomeStatus.ERROR, OutcomeStatus.TIMEOUT):
                ttl_ms = None
                if self.health is not None:
                    ttl_ms = self.health.negative_ttl_ms(
                        source_id, self.negative_cache.ttl_ms
                    )
                self.negative_cache.record_failure(
                    source_id, outcome.status.value, outcome.error, ttl_ms=ttl_ms
                )

    def _schedule_revalidation(
        self,
        key: str,
        query: SQuery,
        selected_ids: list[str],
        summaries: dict,
        merger: MergeStrategy,
        executor: Executor,
        group_by_resource: bool,
        terms: list[str],
    ) -> None:
        """Refresh a stale entry off the caller's critical path.

        Single-flight per key; the refresh re-runs the query round for
        the *same* source set (the key binds them) on a private client
        and tracer, so it never races the caller's.  Scheduling goes
        through the executor's ``submit`` hook: the serial executor
        revalidates inline (deterministic), the parallel one on a
        daemon thread.
        """
        if not self.result_cache.begin_revalidation(key):
            return

        def refresh() -> None:
            try:
                tracer = Tracer()
                client = StartsClient(self.client.internet, tracer=tracer)
                result = self._query_round(
                    client,
                    tracer,
                    query,
                    selected_ids,
                    summaries,
                    merger,
                    executor,
                    group_by_resource,
                    terms,
                )
                self._store_result(key, result, selected_ids, tracer)
            finally:
                self.result_cache.finish_revalidation(key)

        if self.cache_policy.revalidate_in_background:
            submit_background(executor, refresh)
        else:
            refresh()

    # -- pipeline phases ---------------------------------------------------

    def _select(
        self,
        tracer: Tracer,
        selector: SourceSelector,
        terms: list[str],
        k_sources: int,
        known: list[KnownSource],
    ) -> tuple[list[str], dict]:
        with tracer.span("select", selector=selector.name, k=k_sources) as span:
            summaries = self.discovery.summaries()
            if summaries:
                # Score against the incrementally maintained summary
                # index — sparse term shards instead of a dense scan.
                # The selector's backend decides whether the fast path
                # or the byte-identical dense oracle actually runs.
                selected_ids = selector.select(
                    terms, self.discovery.summary_index(), k_sources
                )
            else:
                selected_ids = [source.source_id for source in known[:k_sources]]
            if self.health is not None:
                reordered = self.health.order_by_health(selected_ids)
                if reordered != selected_ids:
                    span.annotate(deprioritized=True)
                selected_ids = reordered
            span.annotate(
                summaries=len(summaries), selected=" ".join(selected_ids)
            )
        _observe_phase("select", span.duration_ms)
        return selected_ids, summaries

    def _translate(
        self,
        tracer: Tracer,
        query: SQuery,
        selected_ids: list[str],
        summaries: dict,
        group_by_resource: bool,
    ) -> tuple[list[SourceRequest], dict[str, SourceOutcome], dict]:
        requests: list[SourceRequest] = []
        outcomes: dict[str, SourceOutcome] = {}
        reports: dict[str, TranslationReport] = {}
        for entry_id, sibling_ids in self._route(selected_ids, group_by_resource):
            with tracer.span(f"translate:{entry_id}") as span:
                source = self.discovery.source(entry_id)
                translated, report = self.translator.translate(
                    query, source.metadata, summary=summaries.get(entry_id)
                )
                reports[entry_id] = report
                span.annotate(
                    lossless=report.is_lossless(), dropped=len(report.dropped)
                )
                if (
                    translated.filter_expression is None
                    and translated.ranking_expression is None
                ):
                    # Nothing would survive: skip the round trip, on record.
                    outcomes[entry_id] = SourceOutcome.skip(
                        entry_id,
                        "translation left neither filter nor ranking expression",
                        tuple(sibling_ids),
                    )
                    span.annotate(skipped=True)
                else:
                    if sibling_ids:
                        translated = translated.with_sources(*sibling_ids)
                    requests.append(
                        SourceRequest(
                            entry_id, source.query_url, translated, tuple(sibling_ids)
                        )
                    )
            _observe_phase("translate", span.duration_ms)
        return requests, outcomes, reports

    def _merge_context(
        self,
        per_source_results: dict[str, SQResults],
        summaries: dict,
        terms: list[str],
    ) -> MergeContext:
        return MergeContext(
            metadata={
                source_id: self.discovery.source(source_id).metadata
                for source_id in per_source_results
            },
            summaries={
                source_id: summary
                for source_id, summary in summaries.items()
                if source_id in per_source_results
            },
            samples={
                source_id: sample
                for source_id in per_source_results
                if (sample := self.discovery.source(source_id).sample_results)
                is not None
            },
            query_terms=tuple(terms),
        )

    def _internet_log(self):
        return self.client.access_log()

    def explain_plan(
        self,
        query: SQuery,
        k_sources: int = 3,
        selector: SourceSelector | None = None,
    ) -> str:
        """A dry run: what *would* happen, without touching the network.

        Renders the selection ranking (with goodness and bGlOSS result
        estimates) and, for each source that would be contacted, the
        translated query and everything translation would drop.
        """
        from repro.metasearch.selection import BGloss

        query.validate()
        selector = selector or self.selector
        terms = self._selection_terms(query)
        summaries = self.discovery.summaries()

        lines = [f"plan for terms {terms} (selector {selector.name}, k={k_sources})"]
        ranked = (
            selector.rank(terms, self.discovery.summary_index())
            if summaries
            else []
        )
        estimator = BGloss()
        for position, (source_id, goodness) in enumerate(ranked):
            chosen = "->" if position < k_sources else "  "
            estimate = estimator.score(terms, summaries[source_id])
            lines.append(
                f"{chosen} {source_id:<14} goodness={goodness:10.3f} "
                f"est. matches={estimate:6.1f}"
            )

        for source_id, _ in ranked[:k_sources]:
            known = self.discovery.source(source_id)
            translated, report = self.translator.translate(
                query, known.metadata, summary=summaries.get(source_id)
            )
            lines.append(f"\n{source_id}:")
            filter_text = (
                translated.filter_expression.serialize()
                if translated.filter_expression
                else "(none)"
            )
            ranking_text = (
                translated.ranking_expression.serialize()
                if translated.ranking_expression
                else "(none)"
            )
            lines.append(f"  filter:  {filter_text}")
            lines.append(f"  ranking: {ranking_text}")
            if report.dropped:
                for note in report.dropped:
                    lines.append(f"  note: {note}")
            else:
                lines.append("  note: lossless")
        return "\n".join(lines)

    def _route(
        self, selected_ids: list[str], group_by_resource: bool
    ) -> list[tuple[str, list[str]]]:
        """(entry source, sibling sources) pairs for the query round.

        Without grouping every source is its own entry.  With grouping,
        sources sharing a resource collapse into one entry (the
        best-ranked one) carrying the rest in ``Sources``.
        """
        if not group_by_resource:
            return [(source_id, []) for source_id in selected_ids]
        by_resource: dict[str | None, list[str]] = {}
        order: list[str | None] = []
        for source_id in selected_ids:
            resource_url = self.discovery.source(source_id).resource_url
            if resource_url not in by_resource:
                by_resource[resource_url] = []
                order.append(resource_url)
            by_resource[resource_url].append(source_id)
        return [
            (members[0], members[1:])
            for members in (by_resource[resource_url] for resource_url in order)
        ]

    @staticmethod
    def _selection_terms(query: SQuery) -> list[str]:
        """The words used for source selection: all expression terms."""
        seen: list[str] = []
        for term in query.expression_terms():
            if term.comparison_modifier_present():
                continue  # Dates and other comparisons say nothing topical.
            for word in term.lstring.text.split():
                lowered = word.lower()
                if lowered not in seen:
                    seen.append(lowered)
        return seen
