"""Rank merging (§3.2, §4.2; refs [5, 6]).

Merging per-source ranked results is the hardest metasearch task: raw
scores are incomparable across engines (one engine's 0.3 can beat
another's 1,000), and even a shared algorithm scores differently on
different collections.  STARTS does not prescribe a merge — it supplies
the "raw material": unnormalized scores, ``ScoreRange``,
``RankingAlgorithmID``, per-term statistics, document size/count, and
black-box sample results.  Each strategy below consumes a different
slice of that material, so experiment E2 can show what each piece buys:

* :class:`RawScoreMerge` — the naive baseline (what a metasearcher
  without STARTS is reduced to);
* :class:`NormalizedScoreMerge` — min-max normalization by the exported
  ``ScoreRange``;
* :class:`TermFrequencyMerge` — Example 9's "simple-minded" scheme:
  ignore scores, re-rank by term counts;
* :class:`TfIdfRecomputeMerge` — recompute a tf·idf score from
  ``TermStats`` with *global* document frequencies aggregated across
  sources ("more sophisticated schemes could also use the document
  frequencies");
* :class:`CoriMerge` — CORI-style result merging (ref [5]): normalized
  document scores weighted by the source's selection belief;
* :class:`RoundRobinMerge` — collection-fusion interleaving (ref [6]);
* :class:`CalibratedMerge` — §4.2's black-box calibration from the
  ``SampleDatabaseResults``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field

from repro.metasearch.selection import Cori
from repro.source.sample import SampleResults
from repro.starts.metadata import SContentSummary, SMetaAttributes
from repro.starts.results import SQRDocument, SQResults

__all__ = [
    "MergeContext",
    "MergedDocument",
    "MergeStrategy",
    "StreamingMerge",
    "RawScoreMerge",
    "NormalizedScoreMerge",
    "TermFrequencyMerge",
    "TfIdfRecomputeMerge",
    "CoriMerge",
    "RoundRobinMerge",
    "CalibratedMerge",
    "MERGE_STRATEGIES",
]


@dataclass
class MergeContext:
    """The STARTS raw material available at merge time."""

    metadata: dict[str, SMetaAttributes] = dataclass_field(default_factory=dict)
    summaries: dict[str, SContentSummary] = dataclass_field(default_factory=dict)
    samples: dict[str, SampleResults] = dataclass_field(default_factory=dict)
    query_terms: tuple[str, ...] = ()


@dataclass(frozen=True)
class MergedDocument:
    """One document in the merged rank."""

    linkage: str
    score: float
    source_id: str
    document: SQRDocument


class MergeStrategy:
    """Interface: per-source results → one merged, deduplicated rank."""

    name = "base"
    #: True when a document's merged score depends only on its *own*
    #: source's results and context slice — never on which other sources
    #: answered.  Stable strategies can merge incrementally (feed one
    #: source at a time) and support provably-sound early termination;
    #: unstable ones (CORI's belief normalization, tf·idf's global
    #: document frequencies) rescore as the answering set grows.
    stable_scores = False

    def merge(
        self, results: dict[str, SQResults], context: MergeContext
    ) -> list[MergedDocument]:
        """Merged rank, best first; duplicates collapse to the best copy."""
        scored: list[MergedDocument] = []
        for source_id in sorted(results):
            for document in results[source_id].documents:
                score = self.score(source_id, document, results, context)
                scored.append(
                    MergedDocument(document.linkage, score, source_id, document)
                )
        return _dedupe_and_sort(scored)

    def score(
        self,
        source_id: str,
        document: SQRDocument,
        results: dict[str, SQResults],
        context: MergeContext,
    ) -> float:
        raise NotImplementedError

    def score_upper_bound(self, source_id: str, context: MergeContext) -> float:
        """Largest merged score any document from ``source_id`` can get.

        ``inf`` (the default) means "no useful bound" — early
        termination then never fires for this strategy.  Bounds assume
        sources honor their advertised metadata (e.g. ``ScoreRange``),
        the same trust every strategy already places in it.
        """
        return math.inf

    def start_stream(self, context: MergeContext) -> "StreamingMerge":
        """An incremental accumulator over this strategy.

        Feed per-source results as they arrive; the accumulator's final
        rank is bit-identical to a batch :meth:`merge` over the same
        per-source results and (suitably filtered) context.
        """
        return StreamingMerge(self, context)


class StreamingMerge:
    """Incremental rank-merge: feed sources one at a time, read the rank.

    For stable-score strategies each source is scored exactly once on
    arrival (its per-source slice of a batch merge) and the global rank
    is a cheap dedupe-and-sort of the cached pieces.  For unstable
    strategies the accumulator re-runs the full batch merge over the
    sources fed so far, with the context filtered to the fed keys the
    way :class:`~repro.metasearch.client.Metasearcher` filters it —
    either way the final rank equals the batch oracle by construction.
    """

    def __init__(self, strategy: MergeStrategy, context: MergeContext) -> None:
        self.strategy = strategy
        self.context = context
        self._fed: dict[str, SQResults] = {}
        self._scored: list[MergedDocument] = []  # stable path's cache
        self._rank: list[MergedDocument] = []
        self._dirty = False

    @property
    def fed_source_ids(self) -> tuple[str, ...]:
        return tuple(self._fed)

    def feed(self, source_id: str, results: SQResults) -> None:
        """Add one source's results (at most once per source)."""
        if source_id in self._fed:
            raise ValueError(f"source {source_id!r} already fed")
        self._fed[source_id] = results
        if self.strategy.stable_scores:
            self._scored.extend(
                self.strategy.merge({source_id: results}, self._context_for())
            )
        self._dirty = True

    def merged(self) -> list[MergedDocument]:
        """The merged rank over every source fed so far, best first."""
        if self._dirty:
            if self.strategy.stable_scores:
                self._rank = _dedupe_and_sort(list(self._scored))
            else:
                self._rank = self.strategy.merge(
                    dict(self._fed), self._context_for()
                )
            self._dirty = False
        return self._rank

    def current_top_k(self, k: int | None = None) -> list[MergedDocument]:
        rank = self.merged()
        return rank if k is None else rank[:k]

    def is_stable_top_k(self, k: int, pending_source_ids) -> bool:
        """Can no pending source change the top ``k`` of the rank?

        Requires a stable-score strategy, ``k`` documents already
        merged, and the k-th score *strictly* above every pending
        source's score upper bound: at equal scores the ``(score,
        linkage)`` tie-break could still reorder, and a duplicate
        arriving at exactly the bound could not raise any held score
        past one strictly above it.
        """
        if not self.strategy.stable_scores:
            return False
        rank = self.merged()
        if len(rank) < k:
            return False
        bounds = [
            self.strategy.score_upper_bound(source_id, self.context)
            for source_id in pending_source_ids
        ]
        if not bounds:
            return True
        return rank[k - 1].score > max(bounds)

    def _context_for(self) -> MergeContext:
        """The context a batch merge over the fed sources would see.

        Mirrors ``Metasearcher._merge_context``: metadata, summaries and
        samples restricted to the sources that actually answered.
        """
        fed = self._fed
        return MergeContext(
            metadata={
                source_id: metadata
                for source_id, metadata in self.context.metadata.items()
                if source_id in fed
            },
            summaries={
                source_id: summary
                for source_id, summary in self.context.summaries.items()
                if source_id in fed
            },
            samples={
                source_id: sample
                for source_id, sample in self.context.samples.items()
                if source_id in fed
            },
            query_terms=self.context.query_terms,
        )


def _dedupe_and_sort(scored: list[MergedDocument]) -> list[MergedDocument]:
    best: dict[str, MergedDocument] = {}
    for merged in scored:
        existing = best.get(merged.linkage)
        if existing is None or merged.score > existing.score:
            best[merged.linkage] = merged
    ordered = list(best.values())
    ordered.sort(key=lambda merged: (-merged.score, merged.linkage))
    return ordered


class RawScoreMerge(MergeStrategy):
    """Baseline: trust the raw scores across engines (incorrectly)."""

    name = "raw-score"
    stable_scores = True

    def score(self, source_id, document, results, context) -> float:
        return document.raw_score

    def score_upper_bound(self, source_id, context) -> float:
        metadata = context.metadata.get(source_id)
        if metadata is None:
            return math.inf
        _, high = metadata.score_range
        return high if math.isfinite(high) else math.inf


class NormalizedScoreMerge(MergeStrategy):
    """Min-max normalize each score by the source's ScoreRange.

    Infinite bounds (allowed by the protocol) fall back to the largest
    raw score observed in that source's result, which is the best a
    client can do with an unbounded engine.
    """

    name = "range-normalized"
    stable_scores = True

    def score_upper_bound(self, source_id, context) -> float:
        return 1.0

    def score(self, source_id, document, results, context) -> float:
        metadata = context.metadata.get(source_id)
        low, high = metadata.score_range if metadata else (0.0, 1.0)
        if math.isinf(high) or high <= low:
            observed = [doc.raw_score for doc in results[source_id].documents]
            high = max(observed) if observed else 1.0
            low = 0.0
        if high <= low:
            return 0.0
        return (document.raw_score - low) / (high - low)


class TermFrequencyMerge(MergeStrategy):
    """Example 9: discard scores, rank by total query-term occurrences."""

    name = "term-frequency"
    stable_scores = True

    def score(self, source_id, document, results, context) -> float:
        return float(sum(stats.term_frequency for stats in document.term_stats))


class TfIdfRecomputeMerge(MergeStrategy):
    """Recompute tf·idf with globally aggregated document frequencies.

    For each query term: global df = Σ over sources of the source-local
    df (from content summaries, falling back to the TermStats df); the
    global collection size N = Σ NumDocs.  A document's score is
    Σ (tf / doc_count) · log(1 + N / df) — length-normalized tf times
    global idf, i.e. the "single large collection" view of §4.2.
    """

    name = "tfidf-recompute"

    def score(self, source_id, document, results, context) -> float:
        total_docs = sum(
            summary.num_docs for summary in context.summaries.values()
        )
        if total_docs <= 0:
            total_docs = sum(len(r.documents) for r in results.values()) or 1
        score = 0.0
        doc_length = max(document.doc_count, 1)
        for stats in document.term_stats:
            if stats.term_frequency <= 0:
                continue
            word = stats.term.lstring.text
            global_df = 0
            for summary in context.summaries.values():
                global_df += summary.document_frequency(word)
            if global_df == 0:
                global_df = max(stats.document_frequency, 1)
            idf = math.log(1.0 + total_docs / global_df)
            score += (stats.term_frequency / doc_length) * idf
        return score


class CoriMerge(MergeStrategy):
    """CORI result merging: normalized doc score × source belief.

    ``final = D · (1 + 0.4 · C) / 1.4`` with D the range-normalized
    document score and C the source's CORI belief normalized over the
    queried sources — the classic heuristic of ref [5].
    """

    name = "cori-weighted"

    def __init__(self) -> None:
        self._normalizer = NormalizedScoreMerge()

    def merge(self, results, context) -> list[MergedDocument]:
        beliefs = self._source_beliefs(results, context)
        scored: list[MergedDocument] = []
        for source_id in sorted(results):
            belief = beliefs.get(source_id, 0.0)
            for document in results[source_id].documents:
                normalized = self._normalizer.score(
                    source_id, document, results, context
                )
                score = normalized * (1.0 + 0.4 * belief) / 1.4
                scored.append(
                    MergedDocument(document.linkage, score, source_id, document)
                )
        return _dedupe_and_sort(scored)

    def _source_beliefs(self, results, context) -> dict[str, float]:
        summaries = {
            source_id: summary
            for source_id, summary in context.summaries.items()
            if source_id in results
        }
        if not summaries or not context.query_terms:
            return {source_id: 1.0 for source_id in results}
        ranked = Cori().rank(context.query_terms, summaries)
        if not ranked:
            return {source_id: 1.0 for source_id in results}
        top = max(goodness for _, goodness in ranked) or 1.0
        return {source_id: goodness / top for source_id, goodness in ranked}

    def score(self, source_id, document, results, context) -> float:
        raise NotImplementedError("CoriMerge overrides merge()")


class RoundRobinMerge(MergeStrategy):
    """Collection fusion baseline: interleave per-source ranks.

    The i-th document of each source gets score ``1 / (i + 1)``; ties
    across sources at the same depth break alphabetically.  Uses no
    score information at all — the floor any merge should beat.
    """

    name = "round-robin"
    stable_scores = True

    def score_upper_bound(self, source_id, context) -> float:
        return 1.0

    def merge(self, results, context) -> list[MergedDocument]:
        scored: list[MergedDocument] = []
        for source_id in sorted(results):
            for position, document in enumerate(results[source_id].documents):
                scored.append(
                    MergedDocument(
                        document.linkage,
                        1.0 / (position + 1),
                        source_id,
                        document,
                    )
                )
        return _dedupe_and_sort(scored)

    def score(self, source_id, document, results, context) -> float:
        raise NotImplementedError("RoundRobinMerge overrides merge()")


class CalibratedMerge(MergeStrategy):
    """§4.2 black-box calibration from SampleDatabaseResults.

    Each raw score is divided by the source's best score over the fixed
    sample collection — an empirical scale factor that needs neither
    TermStats nor ScoreRange, only the published sample results.
    """

    name = "sample-calibrated"
    stable_scores = True

    def score(self, source_id, document, results, context) -> float:
        sample = context.samples.get(source_id)
        if sample is None:
            return document.raw_score
        top_scores = sample.all_scores()
        scale = max(top_scores) if top_scores else 0.0
        if scale <= 0:
            return document.raw_score
        return document.raw_score / scale


#: Registry used by experiments to sweep every strategy.
MERGE_STRATEGIES: dict[str, type[MergeStrategy]] = {
    cls.name: cls
    for cls in (
        RawScoreMerge,
        NormalizedScoreMerge,
        TermFrequencyMerge,
        TfIdfRecomputeMerge,
        CoriMerge,
        RoundRobinMerge,
        CalibratedMerge,
    )
}
