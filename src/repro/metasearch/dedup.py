"""Near-duplicate collapsing across sources.

Resources eliminate duplicates *within* themselves by URL (Figure 1),
but the same document often exists at several resources under different
URLs — mirrors, preprints, proceedings copies.  A metasearcher can
collapse those too, using content similarity over whatever answer
fields it asked for.

Similarity is Jaccard overlap of word shingles; with only a title
available that is already discriminating (titles are near-unique), and
with the body requested it approaches true near-duplicate detection.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.metasearch.merging import MergedDocument

__all__ = ["word_shingles", "jaccard", "collapse_near_duplicates"]


def word_shingles(text: str, width: int = 2) -> frozenset[tuple[str, ...]]:
    """The set of ``width``-word shingles of ``text`` (lowercased).

    Texts shorter than ``width`` words yield a single short shingle so
    that identical short strings still compare equal.
    """
    words = text.lower().split()
    if not words:
        return frozenset()
    if len(words) < width:
        return frozenset({tuple(words)})
    return frozenset(
        tuple(words[i : i + width]) for i in range(len(words) - width + 1)
    )


def jaccard(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity; empty-vs-empty is 0 (nothing to compare)."""
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def _document_text(merged: MergedDocument, fields: Iterable[str]) -> str:
    pieces = [merged.document.get(name, "") for name in fields]
    return " ".join(piece for piece in pieces if piece)


def collapse_near_duplicates(
    documents: list[MergedDocument],
    threshold: float = 0.8,
    fields: tuple[str, ...] = ("title", "body-of-text"),
) -> list[MergedDocument]:
    """Collapse near-duplicates in a merged rank, keeping rank order.

    A document is absorbed by the highest-ranked earlier document whose
    shingle similarity reaches ``threshold``.  Documents without any
    text in ``fields`` are never collapsed (nothing to compare).

    Returns a new list; the input is untouched.
    """
    kept: list[MergedDocument] = []
    kept_shingles: list[frozenset] = []
    for merged in documents:
        text = _document_text(merged, fields)
        shingles = word_shingles(text)
        absorbed = False
        if shingles:
            for existing in kept_shingles:
                if jaccard(shingles, existing) >= threshold:
                    absorbed = True
                    break
        if not absorbed:
            kept.append(merged)
            kept_shingles.append(shingles)
    return kept
