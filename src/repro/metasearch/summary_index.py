"""Term-sharded summary index: sparse source selection at scale.

The selectors in :mod:`repro.metasearch.selection` are pure functions
of the harvested content summaries.  Scoring them source-by-source is a
dense scan: every source × every query term goes through a per-summary
dict lookup, and CORI additionally recomputes corpus statistics (per-
term collection frequency, mean word mass) from the full summary set on
every call.  At thousands of sources that dense scan *is* the cost of a
query's selection phase.

:class:`SummaryIndex` inverts the summaries once instead:

* **term shards** — ``term → packed columnar postings`` of
  ``(source ordinal, document frequency, total postings)`` held as
  parallel ``array('q')`` columns, so a query term touches only the
  sources that actually contain it;
* **source columns** — interned source ids plus ``num_docs`` /
  ``total word mass`` / case-sensitivity columns addressed by ordinal;
* **corpus statistics maintained incrementally** — per-term collection
  frequency (a counter riding on each shard), the total clamped word
  mass (an exact integer sum, so CORI's mean is bit-identical to the
  dense recomputation) and the live source count.

Mutations are deltas: :meth:`add` interns or re-harvests one source,
:meth:`remove` drops it, and every delta bumps :attr:`generation` so
downstream memos (sorted id order, selector caches) know to refresh.
The original summary objects are retained, which is what lets a
selector built with ``backend="dense"`` run the byte-identical oracle
path over the very same index.

Word keying follows each summary's own case rule, exactly as
:meth:`SContentSummary.lookup` does: a case-insensitive summary is
indexed under lowercased words, a case-sensitive one under raw words.
All-lowercase query terms (the metasearcher's normal case) resolve with
a single shard lookup; terms containing uppercase merge the raw-key
shard (case-sensitive sources only) with the lowered-key shard
(case-insensitive sources only).
"""

from __future__ import annotations

from array import array
from typing import NamedTuple

from repro.observability.metrics import get_registry
from repro.starts.metadata import SContentSummary

__all__ = ["SummaryIndex", "TermColumns"]


class TermColumns(NamedTuple):
    """One query term's postings, as parallel columns.

    ``positions`` maps source ordinal → slot in the columns, for O(1)
    membership tests (BGloss intersections) and df lookups.
    ``collection_frequency`` is the number of listed sources whose df is
    positive — CORI's ``cf_t``, maintained incrementally.
    """

    ordinals: "array[int] | list[int]"
    document_frequencies: "array[int] | list[int]"
    postings: "array[int] | list[int]"
    collection_frequency: int
    positions: dict[int, int]

    def __len__(self) -> int:
        return len(self.ordinals)


_EMPTY_COLUMNS = TermColumns(array("q"), array("q"), array("q"), 0, {})


class _TermShard:
    """The packed postings of one term: parallel append-only columns.

    Removal swaps the victim with the last slot, so the columns stay
    dense; order within a shard is not meaningful (selector output is
    totally ordered by ``(-score, source id)`` downstream).
    """

    __slots__ = ("ordinals", "document_frequencies", "postings", "positions",
                 "df_positive")

    def __init__(self) -> None:
        self.ordinals = array("q")
        self.document_frequencies = array("q")
        self.postings = array("q")
        self.positions: dict[int, int] = {}
        self.df_positive = 0

    def __len__(self) -> int:
        return len(self.ordinals)

    def add(self, ordinal: int, document_frequency: int, postings: int) -> None:
        self.positions[ordinal] = len(self.ordinals)
        self.ordinals.append(ordinal)
        self.document_frequencies.append(document_frequency)
        self.postings.append(postings)
        if document_frequency > 0:
            self.df_positive += 1

    def remove(self, ordinal: int) -> None:
        slot = self.positions.pop(ordinal)
        if self.document_frequencies[slot] > 0:
            self.df_positive -= 1
        last = len(self.ordinals) - 1
        if slot != last:
            moved = self.ordinals[last]
            self.ordinals[slot] = moved
            self.document_frequencies[slot] = self.document_frequencies[last]
            self.postings[slot] = self.postings[last]
            self.positions[moved] = slot
        self.ordinals.pop()
        self.document_frequencies.pop()
        self.postings.pop()


class SummaryIndex:
    """Inverted view of a set of content summaries, maintained by deltas."""

    def __init__(self) -> None:
        # Source columns, addressed by ordinal.  Removed ordinals go on
        # the free list and are recycled by later adds.
        self._source_ids: list[str | None] = []
        self._num_docs: list[int] = []
        self._word_mass: list[int] = []
        self._case_sensitive: list[bool] = []
        self._source_terms: list[tuple[str, ...]] = []
        self._free: list[int] = []
        self._ordinal_of: dict[str, int] = {}
        self._summaries: dict[str, SContentSummary] = {}
        # Term shards and incrementally maintained corpus statistics.
        self._shards: dict[str, _TermShard] = {}
        self._clamped_mass_total = 0  # exact integer sum of max(1, mass)
        #: bumped on every add/replace/remove; memo invalidation signal.
        self.generation = 0
        self._sorted_cache: tuple[int, list[tuple[str, int]]] | None = None

    @classmethod
    def from_summaries(
        cls, summaries: dict[str, SContentSummary]
    ) -> "SummaryIndex":
        index = cls()
        for source_id, summary in summaries.items():
            index.add(source_id, summary)
        return index

    # -- sizes -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ordinal_of)

    @property
    def source_count(self) -> int:
        return len(self._ordinal_of)

    @property
    def term_count(self) -> int:
        return len(self._shards)

    def __contains__(self, source_id: str) -> bool:
        return source_id in self._ordinal_of

    # -- mutation ----------------------------------------------------------

    def add(self, source_id: str, summary: SContentSummary) -> None:
        """Index (or re-index) one source's summary as a delta."""
        if source_id in self._ordinal_of:
            self.remove(source_id)
        if self._free:
            ordinal = self._free.pop()
            self._source_ids[ordinal] = source_id
            self._num_docs[ordinal] = summary.num_docs
            self._word_mass[ordinal] = summary.total_word_mass()
            self._case_sensitive[ordinal] = summary.case_sensitive
        else:
            ordinal = len(self._source_ids)
            self._source_ids.append(source_id)
            self._num_docs.append(summary.num_docs)
            self._word_mass.append(summary.total_word_mass())
            self._case_sensitive.append(summary.case_sensitive)
            self._source_terms.append(())
        statistics = summary.word_statistics()
        for word, (postings, document_frequency) in statistics.items():
            shard = self._shards.get(word)
            if shard is None:
                shard = self._shards[word] = _TermShard()
            shard.add(ordinal, document_frequency, postings)
        self._source_terms[ordinal] = tuple(statistics)
        self._ordinal_of[source_id] = ordinal
        self._summaries[source_id] = summary
        self._clamped_mass_total += max(1, self._word_mass[ordinal])
        self._bump()

    def remove(self, source_id: str) -> bool:
        """Drop one source; returns whether it was indexed at all.

        Every term shard the source contributed to sheds its entry (and
        its collection-frequency count, when df was positive); shards
        left empty are deleted outright so :attr:`term_count` tracks the
        live vocabulary.
        """
        ordinal = self._ordinal_of.pop(source_id, None)
        if ordinal is None:
            return False
        for word in self._source_terms[ordinal]:
            shard = self._shards[word]
            shard.remove(ordinal)
            if not len(shard):
                del self._shards[word]
        self._clamped_mass_total -= max(1, self._word_mass[ordinal])
        self._source_terms[ordinal] = ()
        self._source_ids[ordinal] = None
        self._num_docs[ordinal] = 0
        self._word_mass[ordinal] = 0
        self._free.append(ordinal)
        del self._summaries[source_id]
        self._bump()
        return True

    def update(self, source_id: str, summary: SContentSummary | None) -> None:
        """Apply one discovery delta: a fresh summary, or none at all."""
        if summary is None:
            self.remove(source_id)
        else:
            self.add(source_id, summary)

    def _bump(self) -> None:
        self.generation += 1
        self._sorted_cache = None
        registry = get_registry()
        registry.gauge(
            "summary_index_terms",
            "Distinct summary words currently held by the summary index.",
        ).set(len(self._shards))
        registry.gauge(
            "summary_index_sources",
            "Sources currently indexed for selection.",
        ).set(len(self._ordinal_of))

    # -- source columns ----------------------------------------------------

    def source_id(self, ordinal: int) -> str:
        identifier = self._source_ids[ordinal]
        assert identifier is not None
        return identifier

    def num_docs(self, ordinal: int) -> int:
        return self._num_docs[ordinal]

    def clamped_word_mass(self, ordinal: int) -> float:
        """``max(1.0, total word mass)`` — CORI's per-source ``cw``."""
        return max(1.0, float(self._word_mass[ordinal]))

    @property
    def clamped_mass_total(self) -> int:
        """The exact integer sum of ``max(1, word mass)`` over sources.

        Additive across disjoint shards: a broker root sums its leaves'
        totals and recovers the flat index's mean word mass bit for bit.
        """
        return self._clamped_mass_total

    def mean_clamped_word_mass(self) -> float:
        """Mean clamped word mass over live sources.

        The running total is an exact integer sum, so this equals the
        dense recomputation bit for bit.
        """
        if not self._ordinal_of:
            return 0.0
        return float(self._clamped_mass_total) / len(self._ordinal_of)

    def sorted_sources(self) -> list[tuple[str, int]]:
        """Live ``(source id, ordinal)`` pairs in id order (memoized)."""
        cached = self._sorted_cache
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        ordered = sorted(self._ordinal_of.items())
        self._sorted_cache = (self.generation, ordered)
        return ordered

    def source_ids(self) -> list[str]:
        return [source_id for source_id, _ in self.sorted_sources()]

    def summaries(self) -> dict[str, SContentSummary]:
        """The indexed summaries, for the dense-oracle selector path."""
        return dict(self._summaries)

    def summary(self, source_id: str) -> SContentSummary:
        return self._summaries[source_id]

    # -- term shards -------------------------------------------------------

    def term_columns(self, term: str) -> TermColumns:
        """The postings of one query term, per-summary case rules applied.

        An all-lowercase term is a single shard lookup.  A term with
        uppercase in it must honour each summary's own case rule — the
        raw-key shard contributes its case-sensitive sources, the
        lowered-key shard its case-insensitive ones — so that path
        filters and merges into fresh columns.
        """
        lowered = term.lower()
        if term == lowered:
            shard = self._shards.get(term)
            if shard is None:
                return _EMPTY_COLUMNS
            return TermColumns(
                shard.ordinals,
                shard.document_frequencies,
                shard.postings,
                shard.df_positive,
                shard.positions,
            )
        ordinals: list[int] = []
        document_frequencies: list[int] = []
        postings: list[int] = []
        collection_frequency = 0
        for key, want_case_sensitive in ((term, True), (lowered, False)):
            shard = self._shards.get(key)
            if shard is None:
                continue
            for slot, ordinal in enumerate(shard.ordinals):
                if self._case_sensitive[ordinal] is not want_case_sensitive:
                    continue
                ordinals.append(ordinal)
                document_frequency = shard.document_frequencies[slot]
                document_frequencies.append(document_frequency)
                postings.append(shard.postings[slot])
                if document_frequency > 0:
                    collection_frequency += 1
        positions = {ordinal: slot for slot, ordinal in enumerate(ordinals)}
        return TermColumns(
            ordinals, document_frequencies, postings,
            collection_frequency, positions,
        )

    def collection_frequency(self, term: str) -> int:
        """How many indexed sources contain ``term`` with positive df."""
        return self.term_columns(term).collection_frequency
