"""Source selection from content summaries (§3.3, refs [7, 8] — GlOSS).

Given a query and the content summaries harvested from every known
source, rank the sources by how promising they are.  Implemented
selectors:

* :class:`BGloss` — the Boolean GlOSS estimator of ref [7]: under a
  term-independence assumption, a source with N docs and per-term
  document frequencies df_t is estimated to hold
  ``N * prod(df_t / N)`` documents matching *all* query terms.
* :class:`VGlossSum` / :class:`VGlossMax` — vector-space GlOSS
  (ref [8]): goodness from aggregated term mass; Sum uses total
  postings, Max weights document frequency by average within-document
  tf.
* :class:`Cori` — the inference-network selector of ref [5] (CORI):
  a belief per term from a df-based T component and an ICF-based I
  component.
* Baselines: :class:`SelectAll`, :class:`RandomSelector`,
  :class:`BySize` — what a summary-less metasearcher could do.
* :class:`CostAware` — wraps any selector and discounts sources by
  their monetary cost/latency (the §3.3 motivation: some sources
  charge, some are slow).

All selectors are pure functions of the summaries: no document content
is touched, which is the protocol's whole point.

Every selector runs on one of two backends:

* ``backend="indexed"`` (the default) — when handed a
  :class:`~repro.metasearch.summary_index.SummaryIndex`, score
  *sparsely* against its term shards: only sources containing at least
  one query term are visited, per-term defaults (BGloss's zero product,
  CORI's 0.4 absent-term belief) are folded in analytically for
  everyone else, BGloss intersects shards rarest-first so zero products
  short-circuit, and :meth:`~SourceSelector.select` keeps a bounded
  heap instead of sorting the full ranking.
* ``backend="dense"`` — the original dict-of-summaries scan, kept
  byte-identical as the oracle the equivalence suite pins the sparse
  path against.  A selector built with this backend runs the dense
  path even when handed an index (over :meth:`SummaryIndex.summaries`).

A plain ``dict[str, SContentSummary]`` argument always takes the dense
path — there is nothing sparse to exploit — so existing callers see
unchanged behaviour.  Both entry points feed the ``selection_eval_ms``
histogram in the process metrics registry, labelled by selector and the
backend actually used; a disabled registry turns those observations
into no-ops.
"""

from __future__ import annotations

import heapq
import math
import random
import time
import zlib
from collections.abc import Sequence

from repro.metasearch.summary_index import SummaryIndex
from repro.observability.metrics import get_registry
from repro.starts.metadata import SContentSummary

__all__ = [
    "SourceSelector",
    "BGloss",
    "VGlossSum",
    "VGlossMax",
    "Cori",
    "SelectAll",
    "RandomSelector",
    "BySize",
    "CostAware",
    "INDEXED",
    "DENSE",
    "SELECTOR_REGISTRY",
    "order_key",
]

#: Backend names accepted by every selector's ``backend`` argument.
INDEXED = "indexed"
DENSE = "dense"

Summaries = "dict[str, SContentSummary] | SummaryIndex"


def order_key(pair: tuple[str, float]) -> tuple[float, str]:
    """The total order every ranking obeys: descending goodness, ties on id.

    Public because the broker root merges per-leaf candidate lists with
    the very same key — any other order would break bit-exactness with
    the flat oracle.
    """
    return (-pair[1], pair[0])


_order_key = order_key


def _observe_selection(selector: str, backend: str, duration_ms: float) -> None:
    get_registry().histogram(
        "selection_eval_ms",
        "Wall-clock duration of one source-selection evaluation.",
        labels=("selector", "backend"),
    ).labels(selector=selector, backend=backend).observe(duration_ms)


class SourceSelector:
    """Interface: score every source for a query, best first.

    Args:
        backend: ``"indexed"`` scores sparsely against a
            :class:`SummaryIndex` when one is passed; ``"dense"`` always
            runs the original per-summary scan (the bit-exact oracle).
    """

    name = "base"

    #: Whether per-source scores depend only on the source's own summary
    #: plus corpus-level statistics (source count, mean word mass,
    #: per-term collection frequencies).  Distributable selectors can be
    #: evaluated shard-by-shard in a broker hierarchy and merged into the
    #: exact flat ranking; selectors that need the whole id set at once
    #: (a global permutation, a cross-source discount) cannot.
    distributable = True

    #: Whether a shard containing none of the query terms can be skipped
    #: outright: every one of its sources then scores exactly
    #: :meth:`sparse_default`.  Only meaningful when ``distributable``.
    prunable = False

    def __init__(self, backend: str = INDEXED) -> None:
        if backend not in (INDEXED, DENSE):
            raise ValueError(f"unknown selection backend: {backend!r}")
        self.backend = backend

    # -- public entry points (timed) ---------------------------------------

    def rank(
        self,
        terms: Sequence[str],
        summaries: Summaries,
    ) -> list[tuple[str, float]]:
        """(source_id, goodness) sorted by descending goodness.

        Ties break on source id for determinism.
        """
        started = time.perf_counter()
        try:
            return self._rank_impl(terms, summaries)
        finally:
            _observe_selection(
                self.name,
                self._backend_used(summaries),
                (time.perf_counter() - started) * 1000.0,
            )

    def select(
        self,
        terms: Sequence[str],
        summaries: Summaries,
        k: int,
    ) -> list[str]:
        """The ids of the top-k sources."""
        started = time.perf_counter()
        try:
            return self._select_impl(terms, summaries, k)
        finally:
            _observe_selection(
                self.name,
                self._backend_used(summaries),
                (time.perf_counter() - started) * 1000.0,
            )

    def top_candidates(
        self,
        terms: Sequence[str],
        summaries: Summaries,
        k: int,
    ) -> list[tuple[str, float]]:
        """The top-k ``(source_id, goodness)`` pairs, best first.

        Exactly the pairs whose ids :meth:`select` returns, with the
        goodness riding along — what a leaf broker sends up so the root
        can merge per-shard candidate lists into the exact global top-k
        with :func:`order_key`.
        """
        started = time.perf_counter()
        try:
            if isinstance(summaries, SummaryIndex) and self.backend == INDEXED:
                pool = self._candidates_indexed(terms, summaries, k)
            else:
                pool = self._rank_impl(terms, summaries)
            return heapq.nsmallest(k, pool, key=order_key)
        finally:
            _observe_selection(
                self.name,
                self._backend_used(summaries),
                (time.perf_counter() - started) * 1000.0,
            )

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        raise NotImplementedError

    def sparse_default(self, terms: Sequence[str], n_sources: int) -> float:
        """The goodness of a source containing none of the query terms.

        Must equal the default half of :meth:`_sparse_scores` bit for
        bit: the broker root assigns it to every source of a leaf whose
        shards hold no query term, without descending into the leaf.
        """
        return 0.0

    def _backend_used(self, summaries: Summaries) -> str:
        if isinstance(summaries, SummaryIndex) and self.backend == INDEXED:
            return INDEXED
        return DENSE

    # -- dispatch ----------------------------------------------------------

    def _rank_impl(
        self, terms: Sequence[str], summaries: Summaries
    ) -> list[tuple[str, float]]:
        if isinstance(summaries, SummaryIndex):
            if self.backend == DENSE:
                return self._rank_dense(terms, summaries.summaries())
            return self._rank_indexed(terms, summaries)
        return self._rank_dense(terms, summaries)

    def _select_impl(
        self, terms: Sequence[str], summaries: Summaries, k: int
    ) -> list[str]:
        if isinstance(summaries, SummaryIndex) and self.backend == INDEXED:
            return self._select_indexed(terms, summaries, k)
        return [source_id for source_id, _ in self._rank_impl(terms, summaries)[:k]]

    # -- the dense oracle --------------------------------------------------

    def _rank_dense(
        self,
        terms: Sequence[str],
        summaries: dict[str, SContentSummary],
    ) -> list[tuple[str, float]]:
        scored = [
            (source_id, self.score(terms, summary))
            for source_id, summary in summaries.items()
        ]
        scored.sort(key=_order_key)
        return scored

    # -- the sparse indexed path -------------------------------------------

    def _sparse_scores(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> tuple[dict[int, float], float] | None:
        """``(ordinal → score, default score for everyone else)``.

        ``None`` means the selector has no sparse form; the indexed path
        then falls back to dense scoring over the index's summaries.
        """
        return None

    def _scored_indexed(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> list[tuple[str, float]]:
        sparse = self._sparse_scores(terms, index)
        if sparse is None:
            return [
                (source_id, self.score(terms, index.summary(source_id)))
                for source_id, _ in index.sorted_sources()
            ]
        touched, default = sparse
        return [
            (source_id, touched.get(ordinal, default))
            for source_id, ordinal in index.sorted_sources()
        ]

    def _rank_indexed(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> list[tuple[str, float]]:
        scored = self._scored_indexed(terms, index)
        scored.sort(key=_order_key)
        return scored

    def _candidates_indexed(
        self, terms: Sequence[str], index: SummaryIndex, k: int
    ) -> list[tuple[str, float]]:
        """An unsorted pool whose k best pairs are the exact top-k.

        Sources outside the touched set all carry the same default
        score, so only the first k of them (in id order — exactly how
        their ties break) can possibly make the cut.
        """
        sparse = self._sparse_scores(terms, index)
        if sparse is None:
            return self._scored_indexed(terms, index)
        touched, default = sparse
        pool = [
            (index.source_id(ordinal), goodness)
            for ordinal, goodness in touched.items()
        ]
        if len(touched) < len(index):
            filled = 0
            for source_id, ordinal in index.sorted_sources():
                if ordinal in touched:
                    continue
                pool.append((source_id, default))
                filled += 1
                if filled >= k:
                    break
        return pool

    def _select_indexed(
        self, terms: Sequence[str], index: SummaryIndex, k: int
    ) -> list[str]:
        """Top-k via a bounded heap, never materializing the full sort."""
        pool = self._candidates_indexed(terms, index, k)
        return [
            source_id for source_id, _ in heapq.nsmallest(k, pool, key=_order_key)
        ]


class BGloss(SourceSelector):
    """Boolean GlOSS: expected number of documents matching ALL terms."""

    name = "bGlOSS"
    prunable = True

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        n_docs = summary.num_docs
        if n_docs <= 0:
            return 0.0
        estimate = float(n_docs)
        for term in terms:
            df = summary.document_frequency(term)
            estimate *= df / n_docs
            if estimate == 0.0:
                return 0.0
        return estimate

    def _sparse_scores(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> tuple[dict[int, float], float]:
        if not terms:
            # No conjuncts: the estimate is the document count itself.
            return (
                {
                    ordinal: float(n_docs)
                    for _, ordinal in index.sorted_sources()
                    if (n_docs := index.num_docs(ordinal)) > 0
                },
                0.0,
            )
        columns = [index.term_columns(term) for term in terms]
        # Rarest term first: the candidate set can only shrink, and a
        # term absent everywhere zeroes every product immediately.
        by_rarity = sorted(columns, key=len)
        if not len(by_rarity[0]):
            return {}, 0.0
        candidates = set(by_rarity[0].positions)
        for shard in by_rarity[1:]:
            positions = shard.positions
            candidates = {
                ordinal for ordinal in candidates if ordinal in positions
            }
            if not candidates:
                return {}, 0.0
        touched: dict[int, float] = {}
        for ordinal in candidates:
            n_docs = index.num_docs(ordinal)
            if n_docs <= 0:
                continue
            estimate = float(n_docs)
            for shard in columns:  # original term order: float-exact
                df = shard.document_frequencies[shard.positions[ordinal]]
                estimate *= df / n_docs
                if estimate == 0.0:
                    break
            if estimate != 0.0:
                touched[ordinal] = estimate
        return touched, 0.0


class VGlossSum(SourceSelector):
    """Vector-space GlOSS, Sum variant: total postings mass of the terms."""

    name = "vGlOSS-Sum"
    prunable = True

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        return float(sum(summary.total_postings(term) for term in terms))

    def _sparse_scores(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> tuple[dict[int, float], float]:
        totals: dict[int, int] = {}
        for term in terms:
            shard = index.term_columns(term)
            for ordinal, postings in zip(shard.ordinals, shard.postings):
                totals[ordinal] = totals.get(ordinal, 0) + postings
        return (
            {ordinal: float(total) for ordinal, total in totals.items()},
            0.0,
        )


class VGlossMax(SourceSelector):
    """Vector-space GlOSS, Max variant: df weighted by average tf.

    High when the source has many documents that each use the term
    heavily — a proxy for the maximum similarity any single document
    could achieve.
    """

    name = "vGlOSS-Max"
    prunable = True

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        goodness = 0.0
        for term in terms:
            df = summary.document_frequency(term)
            postings = summary.total_postings(term)
            if df > 0:
                average_tf = postings / df
                goodness += df * (1.0 + math.log(max(average_tf, 1.0)))
        return goodness

    def _sparse_scores(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> tuple[dict[int, float], float]:
        n_terms = len(terms)
        if not n_terms:
            return {}, 0.0
        # Gather each touched source's (df, postings) per query position
        # into a flat row, then accumulate in query-term order so the
        # float sums match the dense path bit for bit.
        rows: dict[int, list[int]] = {}
        for position, term in enumerate(terms):
            shard = index.term_columns(term)
            offset = 2 * position
            dfs, postings = shard.document_frequencies, shard.postings
            for slot, ordinal in enumerate(shard.ordinals):
                row = rows.get(ordinal)
                if row is None:
                    row = rows[ordinal] = [0] * (2 * n_terms)
                row[offset] = dfs[slot]
                row[offset + 1] = postings[slot]
        touched: dict[int, float] = {}
        for ordinal, row in rows.items():
            goodness = 0.0
            for position in range(n_terms):
                df = row[2 * position]
                if df > 0:
                    average_tf = row[2 * position + 1] / df
                    goodness += df * (1.0 + math.log(max(average_tf, 1.0)))
            touched[ordinal] = goodness
        return touched, 0.0


class Cori(SourceSelector):
    """CORI (Callan et al., ref [5]): df.icf belief scoring of sources.

    Belief per term t for source s:
        T = df / (df + 50 + 150 * cw_s / mean_cw)
        I = log((C + 0.5) / cf_t) / log(C + 1.0)
        belief = 0.4 + 0.6 * T * I
    where cw_s is the source's total word mass, C the number of
    sources, and cf_t how many sources contain t.  Requires corpus-level
    statistics, so ``score`` alone cannot be computed: the dense path
    rescans the full summary set per call, while the indexed path reads
    the incrementally maintained corpus columns and visits only sources
    containing at least one query term — every absent term contributes
    the default 0.4 belief, folded in analytically for untouched
    sources.
    """

    name = "CORI"
    prunable = True

    def _rank_dense(
        self,
        terms: Sequence[str],
        summaries: dict[str, SContentSummary],
    ) -> list[tuple[str, float]]:
        if not summaries:
            return []
        n_sources = len(summaries)
        word_mass = {
            source_id: max(1.0, float(summary.total_word_mass()))
            for source_id, summary in summaries.items()
        }
        mean_mass = sum(word_mass.values()) / n_sources
        collection_frequency = {
            term: sum(
                1 for summary in summaries.values() if summary.document_frequency(term) > 0
            )
            for term in terms
        }

        scored: list[tuple[str, float]] = []
        for source_id, summary in summaries.items():
            beliefs = []
            for term in terms:
                df = summary.document_frequency(term)
                cf = collection_frequency[term]
                if df == 0 or cf == 0:
                    beliefs.append(0.4)
                    continue
                t_part = df / (df + 50.0 + 150.0 * word_mass[source_id] / mean_mass)
                i_part = math.log((n_sources + 0.5) / cf) / math.log(n_sources + 1.0)
                beliefs.append(0.4 + 0.6 * t_part * max(i_part, 0.0))
            goodness = sum(beliefs) / len(beliefs) if beliefs else 0.0
            scored.append((source_id, goodness))
        scored.sort(key=_order_key)
        return scored

    def _sparse_scores(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> tuple[dict[int, float], float]:
        n_sources = len(index)
        n_terms = len(terms)
        if not n_sources or not n_terms:
            return {}, 0.0
        mean_mass = index.mean_clamped_word_mass()
        columns = [index.term_columns(term) for term in terms]
        # Per-term I components depend only on maintained corpus stats.
        log_denominator = math.log(n_sources + 1.0)
        i_parts: list[float] = []
        for shard in columns:
            cf = shard.collection_frequency
            if cf == 0:
                i_parts.append(0.0)  # unused: every df is 0 for this term
            else:
                i_parts.append(
                    max(math.log((n_sources + 0.5) / cf) / log_denominator, 0.0)
                )
        rows: dict[int, list[int]] = {}
        for position, shard in enumerate(columns):
            dfs = shard.document_frequencies
            for slot, ordinal in enumerate(shard.ordinals):
                row = rows.get(ordinal)
                if row is None:
                    row = rows[ordinal] = [0] * n_terms
                row[position] = dfs[slot]
        # The all-absent belief profile, summed exactly as the dense
        # path sums a per-term list of 0.4s.
        default_sum = 0.0
        for _ in range(n_terms):
            default_sum += 0.4
        default = default_sum / n_terms
        touched: dict[int, float] = {}
        for ordinal, row in rows.items():
            # Hoisted per-source mass ratio: the dense path evaluates
            # the identical sub-expression per term; hoisting it is
            # bit-neutral because the operands never change mid-query.
            mass_ratio = 150.0 * index.clamped_word_mass(ordinal) / mean_mass
            belief_sum = 0.0
            for position in range(n_terms):
                df = row[position]
                if df == 0:
                    belief_sum += 0.4
                else:
                    t_part = df / (df + 50.0 + mass_ratio)
                    belief_sum += 0.4 + 0.6 * t_part * i_parts[position]
            touched[ordinal] = belief_sum / n_terms
        return touched, default

    def sparse_default(self, terms: Sequence[str], n_sources: int) -> float:
        if not n_sources or not terms:
            return 0.0
        # Summed exactly as the sparse path sums a per-term list of
        # 0.4s, so a pruned shard's sources match the flat default bit
        # for bit.
        default_sum = 0.0
        for _ in terms:
            default_sum += 0.4
        return default_sum / len(terms)

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        raise NotImplementedError("CORI needs the full summary set; use rank()")


class SelectAll(SourceSelector):
    """Baseline: every source is equally good (score 1)."""

    name = "all"
    prunable = True

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        return 1.0

    def sparse_default(self, terms: Sequence[str], n_sources: int) -> float:
        return 1.0

    def _sparse_scores(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> tuple[dict[int, float], float]:
        return {}, 1.0


class RandomSelector(SourceSelector):
    """Baseline: a seeded random permutation per query."""

    name = "random"
    #: The permutation is over the full id set at once — per-shard
    #: permutations merged at a root would be a different shuffle.
    distributable = False

    def __init__(self, seed: int = 0, backend: str = INDEXED) -> None:
        super().__init__(backend)
        self._seed = seed

    def _permute(
        self, terms: Sequence[str], ids: list[str]
    ) -> list[tuple[str, float]]:
        # zlib.crc32 rather than hash(): Python string hashing is
        # randomized per process, which would break reproducibility.
        digest = zlib.crc32(" ".join(terms).encode("utf-8"))
        rng = random.Random((self._seed * 2654435761 + digest) & 0xFFFFFFFF)
        rng.shuffle(ids)
        return [(source_id, float(len(ids) - index)) for index, source_id in enumerate(ids)]

    def _rank_dense(
        self,
        terms: Sequence[str],
        summaries: dict[str, SContentSummary],
    ) -> list[tuple[str, float]]:
        return self._permute(terms, sorted(summaries))

    def _scored_indexed(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> list[tuple[str, float]]:
        return self._permute(terms, index.source_ids())

    def _rank_indexed(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> list[tuple[str, float]]:
        # Already a full permutation; the order key would only re-derive it.
        return self._scored_indexed(terms, index)

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        raise NotImplementedError("RandomSelector ranks, it does not score")


class BySize(SourceSelector):
    """Baseline: bigger sources first (crawler intuition, no summaries)."""

    name = "by-size"

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        return float(summary.num_docs)

    def _sparse_scores(
        self, terms: Sequence[str], index: SummaryIndex
    ) -> tuple[dict[int, float], float]:
        return (
            {
                ordinal: float(n_docs)
                for _, ordinal in index.sorted_sources()
                if (n_docs := index.num_docs(ordinal)) != 0
            },
            0.0,
        )


class CostAware(SourceSelector):
    """Discount an inner selector's goodness by per-source cost.

    ``utility = goodness / (1 + tradeoff * cost)``; costs default to 0,
    so unspecified sources are unaffected.  The backend is the inner
    selector's business: the discount itself is the same scalar
    operation either way, so dense and indexed rankings stay bit-exact
    together.
    """

    name = "cost-aware"
    #: The discount can promote a source past the inner per-shard top-k,
    #: so a leaf cannot know its own exact candidates without the costs
    #: of every other leaf's sources.
    distributable = False

    def __init__(
        self,
        inner: SourceSelector,
        costs: dict[str, float],
        tradeoff: float = 1.0,
    ) -> None:
        super().__init__(inner.backend)
        self._inner = inner
        self._costs = costs
        self._tradeoff = tradeoff
        self.name = f"cost-aware({inner.name})"

    def _rank_impl(
        self,
        terms: Sequence[str],
        summaries: Summaries,
    ) -> list[tuple[str, float]]:
        ranked = self._inner._rank_impl(terms, summaries)
        discounted = [
            (
                source_id,
                goodness / (1.0 + self._tradeoff * self._costs.get(source_id, 0.0)),
            )
            for source_id, goodness in ranked
        ]
        discounted.sort(key=_order_key)
        return discounted

    def _select_impl(
        self, terms: Sequence[str], summaries: Summaries, k: int
    ) -> list[str]:
        # Discounting can promote a source past the inner top-k, so the
        # full discounted ranking is required either way; the heap only
        # skips the final sort.
        return [
            source_id
            for source_id, _ in heapq.nsmallest(
                k, self._rank_impl(terms, summaries), key=_order_key
            )
        ]

    def _candidates_indexed(
        self, terms: Sequence[str], index: SummaryIndex, k: int
    ) -> list[tuple[str, float]]:
        return self._rank_impl(terms, index)

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        raise NotImplementedError("CostAware wraps rank(), not score()")


#: CLI/wire names → zero-argument selector factories.  What the
#: ``python -m repro select``/``broker`` subcommands accept and what a
#: network leaf endpoint resolves a requested selector name against.
SELECTOR_REGISTRY: dict[str, type[SourceSelector]] = {
    "cori": Cori,
    "bgloss": BGloss,
    "vgloss-sum": VGlossSum,
    "vgloss-max": VGlossMax,
    "by-size": BySize,
    "select-all": SelectAll,
    "random": RandomSelector,
}
