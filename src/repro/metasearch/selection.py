"""Source selection from content summaries (§3.3, refs [7, 8] — GlOSS).

Given a query and the content summaries harvested from every known
source, rank the sources by how promising they are.  Implemented
selectors:

* :class:`BGloss` — the Boolean GlOSS estimator of ref [7]: under a
  term-independence assumption, a source with N docs and per-term
  document frequencies df_t is estimated to hold
  ``N * prod(df_t / N)`` documents matching *all* query terms.
* :class:`VGlossSum` / :class:`VGlossMax` — vector-space GlOSS
  (ref [8]): goodness from aggregated term mass; Sum uses total
  postings, Max weights document frequency by average within-document
  tf.
* :class:`Cori` — the inference-network selector of ref [5] (CORI):
  a belief per term from a df-based T component and an ICF-based I
  component.
* Baselines: :class:`SelectAll`, :class:`RandomSelector`,
  :class:`BySize` — what a summary-less metasearcher could do.
* :class:`CostAware` — wraps any selector and discounts sources by
  their monetary cost/latency (the §3.3 motivation: some sources
  charge, some are slow).

All selectors are pure functions of the summaries: no document content
is touched, which is the protocol's whole point.
"""

from __future__ import annotations

import math
import random
import zlib
from collections.abc import Sequence

from repro.starts.metadata import SContentSummary

__all__ = [
    "SourceSelector",
    "BGloss",
    "VGlossSum",
    "VGlossMax",
    "Cori",
    "SelectAll",
    "RandomSelector",
    "BySize",
    "CostAware",
]


class SourceSelector:
    """Interface: score every source for a query, best first."""

    name = "base"

    def rank(
        self,
        terms: Sequence[str],
        summaries: dict[str, SContentSummary],
    ) -> list[tuple[str, float]]:
        """(source_id, goodness) sorted by descending goodness.

        Ties break on source id for determinism.
        """
        scored = [
            (source_id, self.score(terms, summary))
            for source_id, summary in summaries.items()
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    def select(
        self,
        terms: Sequence[str],
        summaries: dict[str, SContentSummary],
        k: int,
    ) -> list[str]:
        """The ids of the top-k sources."""
        return [source_id for source_id, _ in self.rank(terms, summaries)[:k]]

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        raise NotImplementedError


class BGloss(SourceSelector):
    """Boolean GlOSS: expected number of documents matching ALL terms."""

    name = "bGlOSS"

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        n_docs = summary.num_docs
        if n_docs <= 0:
            return 0.0
        estimate = float(n_docs)
        for term in terms:
            df = summary.document_frequency(term)
            estimate *= df / n_docs
            if estimate == 0.0:
                return 0.0
        return estimate


class VGlossSum(SourceSelector):
    """Vector-space GlOSS, Sum variant: total postings mass of the terms."""

    name = "vGlOSS-Sum"

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        return float(sum(summary.total_postings(term) for term in terms))


class VGlossMax(SourceSelector):
    """Vector-space GlOSS, Max variant: df weighted by average tf.

    High when the source has many documents that each use the term
    heavily — a proxy for the maximum similarity any single document
    could achieve.
    """

    name = "vGlOSS-Max"

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        goodness = 0.0
        for term in terms:
            df = summary.document_frequency(term)
            postings = summary.total_postings(term)
            if df > 0:
                average_tf = postings / df
                goodness += df * (1.0 + math.log(max(average_tf, 1.0)))
        return goodness


class Cori(SourceSelector):
    """CORI (Callan et al., ref [5]): df.icf belief scoring of sources.

    Belief per term t for source s:
        T = df / (df + 50 + 150 * cw_s / mean_cw)
        I = log((C + 0.5) / cf_t) / log(C + 1.0)
        belief = 0.4 + 0.6 * T * I
    where cw_s is the source's total word mass, C the number of
    sources, and cf_t how many sources contain t.  Requires the full
    summary set, so ``rank`` is overridden; ``score`` alone cannot be
    computed without corpus-level statistics.
    """

    name = "CORI"

    def rank(
        self,
        terms: Sequence[str],
        summaries: dict[str, SContentSummary],
    ) -> list[tuple[str, float]]:
        if not summaries:
            return []
        n_sources = len(summaries)
        word_mass = {
            source_id: max(1.0, float(summary.total_word_mass()))
            for source_id, summary in summaries.items()
        }
        mean_mass = sum(word_mass.values()) / n_sources
        collection_frequency = {
            term: sum(
                1 for summary in summaries.values() if summary.document_frequency(term) > 0
            )
            for term in terms
        }

        scored: list[tuple[str, float]] = []
        for source_id, summary in summaries.items():
            beliefs = []
            for term in terms:
                df = summary.document_frequency(term)
                cf = collection_frequency[term]
                if df == 0 or cf == 0:
                    beliefs.append(0.4)
                    continue
                t_part = df / (df + 50.0 + 150.0 * word_mass[source_id] / mean_mass)
                i_part = math.log((n_sources + 0.5) / cf) / math.log(n_sources + 1.0)
                beliefs.append(0.4 + 0.6 * t_part * max(i_part, 0.0))
            goodness = sum(beliefs) / len(beliefs) if beliefs else 0.0
            scored.append((source_id, goodness))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        raise NotImplementedError("CORI needs the full summary set; use rank()")


class SelectAll(SourceSelector):
    """Baseline: every source is equally good (score 1)."""

    name = "all"

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        return 1.0


class RandomSelector(SourceSelector):
    """Baseline: a seeded random permutation per query."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def rank(
        self,
        terms: Sequence[str],
        summaries: dict[str, SContentSummary],
    ) -> list[tuple[str, float]]:
        # zlib.crc32 rather than hash(): Python string hashing is
        # randomized per process, which would break reproducibility.
        digest = zlib.crc32(" ".join(terms).encode("utf-8"))
        rng = random.Random((self._seed * 2654435761 + digest) & 0xFFFFFFFF)
        ids = sorted(summaries)
        rng.shuffle(ids)
        return [(source_id, float(len(ids) - index)) for index, source_id in enumerate(ids)]

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        raise NotImplementedError("RandomSelector ranks, it does not score")


class BySize(SourceSelector):
    """Baseline: bigger sources first (crawler intuition, no summaries)."""

    name = "by-size"

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        return float(summary.num_docs)


class CostAware(SourceSelector):
    """Discount an inner selector's goodness by per-source cost.

    ``utility = goodness / (1 + tradeoff * cost)``; costs default to 0,
    so unspecified sources are unaffected.
    """

    name = "cost-aware"

    def __init__(
        self,
        inner: SourceSelector,
        costs: dict[str, float],
        tradeoff: float = 1.0,
    ) -> None:
        self._inner = inner
        self._costs = costs
        self._tradeoff = tradeoff
        self.name = f"cost-aware({inner.name})"

    def rank(
        self,
        terms: Sequence[str],
        summaries: dict[str, SContentSummary],
    ) -> list[tuple[str, float]]:
        ranked = self._inner.rank(terms, summaries)
        discounted = [
            (
                source_id,
                goodness / (1.0 + self._tradeoff * self._costs.get(source_id, 0.0)),
            )
            for source_id, goodness in ranked
        ]
        discounted.sort(key=lambda pair: (-pair[1], pair[0]))
        return discounted

    def score(self, terms: Sequence[str], summary: SContentSummary) -> float:
        raise NotImplementedError("CostAware wraps rank(), not score()")
