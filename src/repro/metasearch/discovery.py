"""Discovery and metadata harvesting (§3.4's periodic tasks).

A metasearcher must "extract the list of sources from the resources
periodically" and "extract metadata and content summaries from the
sources periodically".  :class:`DiscoveryService` does both over the
transport layer, caching everything it fetches and honouring the
``DateExpires`` metadata attribute so stale entries are re-fetched.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field as dataclass_field

from repro.cache.summaries import SummaryTtlPolicy
from repro.metasearch.summary_index import SummaryIndex
from repro.source.sample import SampleResults
from repro.starts.metadata import SContentSummary, SMetaAttributes
from repro.transport.client import StartsClient
from repro.transport.network import TransportError

__all__ = ["KnownSource", "DiscoveryService"]


@dataclass
class KnownSource:
    """Everything a metasearcher knows about one discovered source."""

    source_id: str
    metadata: SMetaAttributes
    summary: SContentSummary | None = None
    sample_results: SampleResults | None = None
    resource_url: str | None = None

    @property
    def query_url(self) -> str:
        return self.metadata.linkage

    @property
    def num_docs(self) -> int:
        return self.summary.num_docs if self.summary is not None else 0


@dataclass
class DiscoveryService:
    """Harvests resources → sources → metadata/summaries/samples.

    Attributes:
        client: the transport client.
        clock: a monotonically advancing date string (``YYYY-MM-DD``);
            entries whose ``DateExpires`` precedes the clock are
            considered stale and re-fetched on the next refresh.
        ttl_policy: optional staleness policy; when set, sources
            without an explicit ``DateExpires`` still go stale on a
            per-source heuristic TTL derived from ``DateChanged`` (see
            :class:`~repro.cache.SummaryTtlPolicy`).  ``None`` keeps
            the historic expires-only rule.
    """

    client: StartsClient
    clock: str = "1996-08-01"
    ttl_policy: SummaryTtlPolicy | None = None
    _sources: dict[str, KnownSource] = dataclass_field(default_factory=dict)
    #: source_id → metadata URL for sources skipped on the last refresh
    #: because their host was unreachable.
    unreachable: dict[str, str] = dataclass_field(default_factory=dict)
    #: source_id → clock date of the last successful harvest; feeds the
    #: heuristic TTL ("age at harvest") when :attr:`ttl_policy` is set.
    fetched_on: dict[str, str] = dataclass_field(default_factory=dict)
    #: callbacks fired with a source id whenever its cached knowledge is
    #: dropped or replaced, so downstream caches (query results,
    #: negative entries) can purge anything derived from it.
    _purge_hooks: list[Callable[[str], None]] = dataclass_field(default_factory=list)
    #: callbacks fired with ``(source_id, summary | None)`` on every
    #: summary-index delta — the same stream that maintains
    #: :attr:`_summary_index`, so a broker hierarchy subscribing here
    #: sees add/replace/remove in the exact order the flat index did.
    _delta_hooks: list[Callable[[str, SContentSummary | None], None]] = dataclass_field(
        default_factory=list
    )
    #: the inverted view of every harvested summary, maintained as
    #: deltas: harvest adds, re-harvest replaces, :meth:`forget` drops.
    #: Selection scores against this instead of rescanning the dict.
    _summary_index: SummaryIndex = dataclass_field(default_factory=SummaryIndex)

    def refresh_resource(self, resource_url: str) -> list[KnownSource]:
        """Fetch a resource's source list and harvest each new source.

        Returns the known sources belonging to this resource.  A source
        whose metadata cannot be fetched (dead or flaky host) is skipped
        for this round — a stale entry from an earlier harvest is kept
        rather than dropped, and the source id is recorded in
        :attr:`unreachable` so callers can see what was missed.
        """
        resource = self.client.fetch_resource(resource_url)
        harvested: list[KnownSource] = []
        for source_id, metadata_url in resource.source_list:
            known = self._sources.get(source_id)
            if known is None or self._is_stale(known):
                refreshing = known is not None
                try:
                    known = self._harvest(source_id, metadata_url, resource_url)
                except TransportError:
                    self.unreachable[source_id] = metadata_url
                    if known is None:
                        continue
                else:
                    self.unreachable.pop(source_id, None)
                    self._sources[source_id] = known
                    self.fetched_on[source_id] = self.clock
                    self._summary_index.update(source_id, known.summary)
                    self._fire_delta(source_id, known.summary)
                    if refreshing:
                        # The source's metadata/summary just changed out
                        # from under anything derived from the old copy.
                        self._fire_purge(source_id)
            harvested.append(known)
        return harvested

    def _is_stale(self, known: KnownSource) -> bool:
        if self.ttl_policy is not None:
            return self.ttl_policy.is_stale(
                known.metadata, self.fetched_on.get(known.source_id), self.clock
            )
        expires = known.metadata.date_expires
        return bool(expires) and expires < self.clock

    def _harvest(
        self, source_id: str, metadata_url: str, resource_url: str
    ) -> KnownSource:
        metadata = self.client.fetch_metadata(metadata_url)
        known = KnownSource(source_id, metadata, resource_url=resource_url)
        if metadata.content_summary_linkage:
            try:
                known.summary = self.client.fetch_summary(
                    metadata.content_summary_linkage
                )
            except TransportError:
                known.summary = None
        if metadata.sample_database_results:
            try:
                known.sample_results = self.client.fetch_sample_results(
                    metadata.sample_database_results
                )
            except TransportError:
                known.sample_results = None
        return known

    # -- lookups -------------------------------------------------------------

    def known_sources(self) -> list[KnownSource]:
        return [self._sources[source_id] for source_id in sorted(self._sources)]

    def source(self, source_id: str) -> KnownSource:
        return self._sources[source_id]

    def summaries(self) -> dict[str, SContentSummary]:
        return {
            source_id: known.summary
            for source_id, known in self._sources.items()
            if known.summary is not None
        }

    def summary_index(self) -> SummaryIndex:
        """The incrementally maintained inverted summary index.

        Coherent with :meth:`summaries` by construction: every harvest,
        stale re-harvest and :meth:`forget` applies the matching
        add/replace/remove delta, alongside the same purge hooks the
        derived caches listen on.
        """
        return self._summary_index

    # -- invalidation --------------------------------------------------------

    def add_purge_hook(self, hook: Callable[[str], None]) -> None:
        """Call ``hook(source_id)`` whenever a source's cached knowledge
        is forgotten or replaced by a fresh harvest."""
        self._purge_hooks.append(hook)

    def _fire_purge(self, source_id: str) -> None:
        for hook in self._purge_hooks:
            hook(source_id)

    def add_delta_hook(
        self, hook: Callable[[str, SContentSummary | None], None]
    ) -> None:
        """Call ``hook(source_id, summary)`` on every summary delta.

        ``summary`` is the freshly harvested summary (add or replace) or
        ``None`` when the source is forgotten — exactly the arguments
        :meth:`SummaryIndex.update` just received, in the same order."""
        self._delta_hooks.append(hook)

    def _fire_delta(
        self, source_id: str, summary: SContentSummary | None
    ) -> None:
        for hook in self._delta_hooks:
            hook(source_id, summary)

    def forget(self, source_id: str) -> None:
        """Drop *everything* cached for a source, not just its entry.

        Purges the known-source record (metadata, content summary and
        sample results ride along with it), the harvest date that
        feeds the TTL heuristic, and the unreachable marker, then fires
        the purge hooks so derived caches drop their entries too.
        """
        known = self._sources.pop(source_id, None)
        if known is not None:
            # Sever the heavyweight references even if a caller still
            # holds the KnownSource record.
            known.summary = None
            known.sample_results = None
        if self._summary_index.remove(source_id):
            self._fire_delta(source_id, None)
        self.fetched_on.pop(source_id, None)
        self.unreachable.pop(source_id, None)
        self._fire_purge(source_id)
