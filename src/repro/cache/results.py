"""The query-result cache: canonical keys, stale-while-revalidate.

The hot tier.  Keys come from :func:`repro.cache.keys.query_cache_key`
(canonical filter/ranking ASTs + the selected source set + the answer
spec), values are whole merged search results, and reads distinguish
three states:

* **fresh** — serve it, the wire is never touched;
* **stale** — the TTL has passed but the entry is inside the
  ``stale_grace_ms`` window: serve the old answer *immediately* and
  let the caller schedule a background refresh (single-flight — only
  one revalidation per key runs at a time);
* **miss** — run the query for real and store the outcome.

Entries are tagged with every source id that contributed, so
forgetting a source (or learning it changed) can surgically invalidate
exactly the results it took part in.
"""

from __future__ import annotations

import threading

from repro.cache.core import CacheStats, LruTtlCache

__all__ = ["QueryResultCache"]


class QueryResultCache:
    """A bounded result cache with stale-while-revalidate bookkeeping.

    Args:
        capacity: maximum cached results.
        ttl_ms: freshness lifetime of an entry (``None`` = forever).
        stale_grace_ms: how far past expiry an entry may still be
            served while a revalidation runs.
        max_size: optional bound on the sum of entry sizes (callers
            pass result document counts, so this bounds memory by
            payload rather than entry count).
        clock: millisecond clock, injectable for tests.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_ms: float | None = 300_000.0,
        stale_grace_ms: float = 600_000.0,
        max_size: int | None = None,
        clock=None,
    ) -> None:
        self.ttl_ms = ttl_ms
        self.stale_grace_ms = stale_grace_ms
        self._cache = LruTtlCache(
            capacity=capacity,
            max_size=max_size,
            default_ttl_ms=ttl_ms,
            clock=clock,
            tier="result",
        )
        self._revalidating: set[str] = set()
        self._lock = threading.Lock()

    # -- the read/write surface -------------------------------------------

    def lookup(self, key: str) -> tuple[object | None, str]:
        """``(value, state)`` with state ``fresh`` / ``stale`` / ``miss``."""
        return self._cache.get(key, stale_grace_ms=self.stale_grace_ms)

    def store(
        self,
        key: str,
        value: object,
        source_ids: tuple[str, ...] | list[str] = (),
        size: int = 1,
        cost: float = 0.0,
    ) -> int:
        """Cache ``value``; returns the number of evictions it forced."""
        return self._cache.put(
            key,
            value,
            size=max(size, 1),
            cost=cost,
            tags=frozenset(source_ids),
        )

    def invalidate_source(self, source_id: str) -> int:
        """Drop every cached result the source contributed to."""
        return self._cache.invalidate_tagged(source_id)

    def clear(self) -> None:
        self._cache.clear()

    # -- checkpointing -----------------------------------------------------

    def save_checkpoint(self, path) -> int:
        """Persist live entries (atomic write); returns the count."""
        from repro.storage.checkpoint import save_cache

        return save_cache(self._cache, path)

    def load_checkpoint(self, path) -> int:
        """Restore entries into this (empty) cache; returns the count.

        Remaining TTLs survive the restart: entry ages are re-anchored
        to this process's clock, so stale-while-revalidate behaves as
        if the process had never died.
        """
        from repro.storage.checkpoint import load_cache

        return load_cache(self._cache, path)

    # -- single-flight revalidation ---------------------------------------

    def begin_revalidation(self, key: str) -> bool:
        """Claim the revalidation of ``key``; False if already claimed."""
        with self._lock:
            if key in self._revalidating:
                return False
            self._revalidating.add(key)
            return True

    def finish_revalidation(self, key: str) -> None:
        with self._lock:
            self._revalidating.discard(key)

    # -- introspection -----------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: str) -> bool:
        return key in self._cache
