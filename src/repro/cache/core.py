"""The bounded LRU+TTL cache every caching tier is built on.

A production metasearcher lives or dies by what it can avoid re-doing:
ZBroker-style brokers cache routing state, result caches absorb the
Zipf head of real query traffic, and summary caches keep discovery off
the wire.  All of those tiers share one mechanism, so it lives here
once: an :class:`LruTtlCache` with

* a **capacity bound** (entry count) and an optional **size bound**
  (sum of per-entry ``size`` units), evicting least-recently-used
  entries when either is exceeded;
* **per-entry TTLs** with an explicit three-state read — ``fresh``,
  ``stale`` (expired but within a caller-supplied grace window, the
  raw material of stale-while-revalidate) or ``miss``;
* **per-entry cost** (whatever producing the value cost: simulated
  wire milliseconds, money) so hits can report how much they saved;
* **tags** for group invalidation (e.g. drop every cached result that
  involved a forgotten source);
* a :class:`CacheStats` ledger — hits, misses, stale hits, stores,
  evictions, expirations, invalidations, cost saved.

The clock is injectable (milliseconds, monotonic by default) so tests
and simulations control time; everything is thread safe.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field

from repro.observability.metrics import get_registry

__all__ = ["CacheStats", "CacheEntry", "LruTtlCache"]

#: Read states returned by :meth:`LruTtlCache.get`.
FRESH = "fresh"
STALE = "stale"
MISS = "miss"


@dataclass
class CacheStats:
    """Counters accumulated over a cache's lifetime."""

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    stores: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    cost_saved: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.stale_hits

    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (stale serves count)."""
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.hits + self.stale_hits) / lookups

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "stores": self.stores,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "cost_saved": round(self.cost_saved, 3),
            "hit_rate": round(self.hit_rate(), 4),
        }


@dataclass
class CacheEntry:
    """One cached value with its accounting metadata."""

    key: str
    value: object
    stored_at_ms: float
    ttl_ms: float | None = None
    size: int = 1
    cost: float = 0.0
    tags: frozenset[str] = dataclass_field(default_factory=frozenset)

    def expires_at_ms(self) -> float | None:
        if self.ttl_ms is None:
            return None
        return self.stored_at_ms + self.ttl_ms

    def age_ms(self, now_ms: float) -> float:
        return now_ms - self.stored_at_ms

    def state_at(self, now_ms: float, stale_grace_ms: float) -> str:
        """``fresh``/``stale``/``miss`` for a read at ``now_ms``."""
        expires = self.expires_at_ms()
        if expires is None or now_ms <= expires:
            return FRESH
        if now_ms <= expires + stale_grace_ms:
            return STALE
        return MISS


def _monotonic_ms() -> float:
    return time.monotonic() * 1000.0


#: Distinguishes "ttl not given" from an explicit ``ttl_ms=None``.
_UNSET = object()


class LruTtlCache:
    """A thread-safe bounded LRU cache with TTLs, sizes, costs and tags.

    Args:
        capacity: maximum number of entries; the least recently used
            entry is evicted when a store would exceed it.
        max_size: optional bound on the *sum of entry sizes* (units are
            the caller's — bytes, documents, result rows).
        default_ttl_ms: TTL applied when ``put`` gives none; ``None``
            means entries never expire.
        clock: a zero-argument callable returning milliseconds;
            defaults to a monotonic wall clock.
        tier: when set, this cache also reports reads/stores/evictions
            to the process-wide metrics registry under that tier label
            (``cache_reads_total{tier,result}`` and friends).
    """

    def __init__(
        self,
        capacity: int = 256,
        max_size: int | None = None,
        default_ttl_ms: float | None = None,
        clock=None,
        tier: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.capacity = capacity
        self.max_size = max_size
        self.default_ttl_ms = default_ttl_ms
        self.tier = tier
        self._clock = clock or _monotonic_ms
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._size = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # -- reads -------------------------------------------------------------

    def get(
        self, key: str, stale_grace_ms: float = 0.0
    ) -> tuple[object | None, str]:
        """Look up ``key``; returns ``(value, state)``.

        ``state`` is ``"fresh"`` (counted as a hit, entry promoted to
        most recently used), ``"stale"`` (expired but within
        ``stale_grace_ms`` — the value is returned so the caller can
        serve it while revalidating) or ``"miss"`` (absent, or expired
        beyond the grace window — the entry is dropped and counted as
        an expiration).
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                value, state = None, MISS
            else:
                state = entry.state_at(now, stale_grace_ms)
                if state == MISS:
                    self._drop(entry)
                    self.stats.expirations += 1
                    self.stats.misses += 1
                    value = None
                elif state == STALE:
                    self.stats.stale_hits += 1
                    value = entry.value
                else:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    self.stats.cost_saved += entry.cost
                    value = entry.value
        if self.tier is not None:
            get_registry().counter(
                "cache_reads_total",
                "Cache lookups per tier and read result (fresh/stale/miss).",
                labels=("tier", "result"),
            ).labels(tier=self.tier, result=state).inc()
        return value, state

    def peek_entry(self, key: str) -> CacheEntry | None:
        """The entry for ``key`` without touching LRU order or stats."""
        with self._lock:
            return self._entries.get(key)

    # -- writes ------------------------------------------------------------

    def put(
        self,
        key: str,
        value: object,
        ttl_ms: object = _UNSET,
        size: int = 1,
        cost: float = 0.0,
        tags: frozenset[str] | tuple[str, ...] = (),
    ) -> int:
        """Store ``key``; returns how many entries were evicted for room.

        ``ttl_ms`` defaults to the cache's ``default_ttl_ms``; pass
        ``None`` explicitly for a never-expiring entry.
        """
        if size < 0:
            raise ValueError("entry size must be >= 0")
        effective_ttl = self.default_ttl_ms if ttl_ms is _UNSET else ttl_ms
        entry = CacheEntry(
            key,
            value,
            self._clock(),
            ttl_ms=effective_ttl,
            size=size,
            cost=cost,
            tags=frozenset(tags),
        )
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self._drop(old)
            self._entries[key] = entry
            self._size += entry.size
            self.stats.stores += 1
            evicted = self._evict_over_bounds(keep=key)
            live = len(self._entries)
        if self.tier is not None:
            registry = get_registry()
            registry.counter(
                "cache_stores_total",
                "Entries written per cache tier.",
                labels=("tier",),
            ).labels(tier=self.tier).inc()
            if evicted:
                registry.counter(
                    "cache_evictions_total",
                    "LRU evictions forced by capacity or size bounds, per tier.",
                    labels=("tier",),
                ).labels(tier=self.tier).inc(evicted)
            registry.gauge(
                "cache_entries",
                "Live entries per cache tier.",
                labels=("tier",),
            ).labels(tier=self.tier).set(live)
        return evicted

    def _evict_over_bounds(self, keep: str) -> int:
        evicted = 0
        while len(self._entries) > self.capacity or (
            self.max_size is not None and self._size > self.max_size
        ):
            oldest_key = next(iter(self._entries))
            if oldest_key == keep and len(self._entries) == 1:
                break  # never evict the entry just stored to emptiness
            if oldest_key == keep:
                self._entries.move_to_end(oldest_key)
                continue
            self._drop(self._entries[oldest_key])
            self.stats.evictions += 1
            evicted += 1
        return evicted

    def _drop(self, entry: CacheEntry) -> None:
        """Remove ``entry`` (lock held); size accounting follows."""
        if self._entries.get(entry.key) is entry:
            del self._entries[entry.key]
            self._size -= entry.size

    # -- invalidation ------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            self._drop(entry)
            self.stats.invalidations += 1
            return True

    def invalidate_tagged(self, tag: str) -> int:
        """Drop every entry carrying ``tag``; returns how many fell."""
        with self._lock:
            doomed = [e for e in self._entries.values() if tag in e.tags]
            for entry in doomed:
                self._drop(entry)
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self._size = 0

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def size(self) -> int:
        """Sum of the sizes of every live entry."""
        with self._lock:
            return self._size

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)
