"""CachePolicy: one switchboard for every caching tier.

The paper-faithful experiments need the pipeline exactly as §4 defines
it — every search on the wire — while the production path wants every
tier on.  A single frozen :class:`CachePolicy` makes both spellings
trivial: the default enables everything with sane bounds, and
:meth:`CachePolicy.disabled` turns the whole subsystem into dead code
(no key computed, no counter ticked, outputs byte-identical to the
uncached pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.cache.summaries import SummaryTtlPolicy

__all__ = ["CachePolicy"]


@dataclass(frozen=True)
class CachePolicy:
    """Configuration of the metasearch caching subsystem.

    Attributes:
        enabled: master switch; ``False`` bypasses every tier.
        result_capacity: maximum cached query results.
        result_ttl_ms: result freshness lifetime; ``None`` never
            expires (only LRU pressure evicts).
        stale_grace_ms: window past expiry in which a stale result is
            still served while a background refresh runs; ``0``
            disables stale-while-revalidate (expired = miss).
        revalidate_in_background: schedule the refresh of a
            stale-served entry through the executor's ``submit`` hook
            (the :class:`~repro.federation.ParallelExecutor` refreshes
            on a background thread; the serial executor revalidates
            inline, keeping single-threaded runs deterministic).
        result_max_documents: optional bound on the *sum* of cached
            result sizes, in documents.
        negative_ttl_ms: how long an unreachable source is skipped
            before it earns a new probe.
        negative_failure_threshold: failed rounds before a source is
            negative-cached.
        summary_ttl: staleness policy for harvested metadata and
            content summaries (per-source TTLs from MBasic-1 dates).
    """

    enabled: bool = True
    result_capacity: int = 256
    result_ttl_ms: float | None = 300_000.0
    stale_grace_ms: float = 600_000.0
    revalidate_in_background: bool = True
    result_max_documents: int | None = None
    negative_ttl_ms: float = 30_000.0
    negative_failure_threshold: int = 1
    summary_ttl: SummaryTtlPolicy = dataclass_field(default_factory=SummaryTtlPolicy)

    @classmethod
    def disabled(cls) -> "CachePolicy":
        """The paper-faithful configuration: no caching anywhere."""
        return cls(enabled=False)
