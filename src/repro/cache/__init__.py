"""Multi-tier caching for the STARTS metasearcher.

A metasearcher pays for the same answers over and over: the same
popular queries hit the same popular sources, harvested metadata and
content summaries drift stale at source-specific rates, and dead
sources burn a full timeout budget per probe.  This package caches at
all three tiers:

* :class:`LruTtlCache` — the bounded core: LRU eviction, per-entry
  TTLs, size/cost accounting and full hit/miss/eviction statistics;
* :class:`QueryResultCache` + :func:`query_cache_key` — whole merged
  results keyed on the *canonical* query (order-insensitive where
  order carries no meaning), with stale-while-revalidate semantics;
* :class:`SummaryTtlPolicy` — staleness for harvested MBasic-1
  metadata, deriving per-source TTLs from ``DateExpires`` /
  ``DateChanged``;
* :class:`NegativeSourceCache` — remembers unreachable sources so the
  federation layer skips them instead of re-probing every search.

:class:`CachePolicy` configures the whole subsystem in one object;
``CachePolicy.disabled()`` restores the paper-faithful uncached
pipeline byte-for-byte.
"""

from repro.cache.core import (
    FRESH,
    MISS,
    STALE,
    CacheEntry,
    CacheStats,
    LruTtlCache,
)
from repro.cache.keys import canonical_expression, canonical_text, query_cache_key
from repro.cache.negative import NegativeEntry, NegativeSourceCache
from repro.cache.policy import CachePolicy
from repro.cache.results import QueryResultCache
from repro.cache.summaries import SummaryTtlPolicy, parse_protocol_date

__all__ = [
    "FRESH",
    "STALE",
    "MISS",
    "CacheEntry",
    "CacheStats",
    "LruTtlCache",
    "canonical_expression",
    "canonical_text",
    "query_cache_key",
    "NegativeEntry",
    "NegativeSourceCache",
    "CachePolicy",
    "QueryResultCache",
    "SummaryTtlPolicy",
    "parse_protocol_date",
]
