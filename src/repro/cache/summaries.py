"""Staleness-aware TTLs for cached source metadata and summaries.

MBasic-1 exports exactly the attributes a metasearcher needs to know
*when* its cached knowledge of a source goes bad: ``DateExpires`` is an
explicit promise, and ``DateChanged`` is an update hint — a source that
last changed two years ago will not suddenly churn daily, while one
that changed yesterday might.  :class:`SummaryTtlPolicy` turns those
into a per-source TTL instead of one global staleness knob:

1. ``DateExpires``, when present and well-formed, wins outright: the
   entry is stale exactly when the clock passes it (the behaviour the
   discovery layer always had).
2. Otherwise, with a ``DateChanged`` hint, the TTL is *heuristic
   freshness* (the HTTP rule of thumb): a fraction of the entry's age
   at harvest time — ``ttl_days = fraction × (fetched_on −
   date_changed)`` — clamped to ``[min_ttl_days, max_ttl_days]``.
   A clock-skewed **future** ``DateChanged`` is treated as "changed
   just now" (age zero → minimum TTL), never as a licence to cache
   forever.
3. With no usable date hints at all the entry never goes stale on its
   own (callers can still `forget()` it).

All dates are the protocol's day-granular ``YYYY-MM-DD`` strings;
malformed values are ignored rather than trusted.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.starts.metadata import SMetaAttributes

__all__ = ["parse_protocol_date", "SummaryTtlPolicy"]


def parse_protocol_date(text: str | None) -> datetime.date | None:
    """A ``YYYY-MM-DD`` string as a date; None when absent or malformed."""
    if not text:
        return None
    try:
        return datetime.date.fromisoformat(text.strip())
    except ValueError:
        return None


@dataclass(frozen=True, slots=True)
class SummaryTtlPolicy:
    """Derives per-source cache TTLs from MBasic-1 date attributes.

    Attributes:
        heuristic_fraction: how much of the age-at-harvest becomes TTL
            when only ``DateChanged`` is known (0.1 mirrors the HTTP
            heuristic-freshness convention).
        min_ttl_days: floor on any heuristic TTL; ``0`` means an entry
            can go stale the very next day.
        max_ttl_days: cap on any heuristic TTL, so an ancient source is
            still re-checked occasionally.
    """

    heuristic_fraction: float = 0.1
    min_ttl_days: int = 1
    max_ttl_days: int = 60

    def __post_init__(self) -> None:
        if self.heuristic_fraction < 0:
            raise ValueError("heuristic_fraction must be >= 0")
        if self.min_ttl_days < 0 or self.max_ttl_days < self.min_ttl_days:
            raise ValueError("need 0 <= min_ttl_days <= max_ttl_days")

    def ttl_days(self, metadata: SMetaAttributes, fetched_on: str) -> int | None:
        """The heuristic TTL for an entry harvested on ``fetched_on``.

        ``None`` means "no usable hint — no heuristic expiry".
        """
        changed = parse_protocol_date(metadata.date_changed)
        fetched = parse_protocol_date(fetched_on)
        if changed is None or fetched is None:
            return None
        age_days = max((fetched - changed).days, 0)  # future date ⇒ age 0
        ttl = int(age_days * self.heuristic_fraction)
        return min(max(ttl, self.min_ttl_days), self.max_ttl_days)

    def is_stale(
        self, metadata: SMetaAttributes, fetched_on: str | None, clock: str
    ) -> bool:
        """Should a cached entry for this source be re-harvested?

        ``DateExpires`` decides when present (day-granular string
        comparison, matching the discovery layer's historic rule);
        otherwise the heuristic TTL against ``fetched_on`` applies.  An
        entry with no harvest date on record and no explicit expiry is
        never stale — there is nothing to measure its age against.
        """
        expires = metadata.date_expires
        if expires:
            return expires < clock
        if fetched_on is None:
            return False
        ttl = self.ttl_days(metadata, fetched_on)
        if ttl is None:
            return False
        fetched = parse_protocol_date(fetched_on)
        now = parse_protocol_date(clock)
        if fetched is None or now is None:
            return False
        return now > fetched + datetime.timedelta(days=ttl)
