"""Negative caching of unreachable sources.

§3.3's dead and hanging sources are the most expensive kind of cache
miss: every probe costs a full timeout budget (deadline × retries ×
backoff) and returns nothing.  The federation layer already bounds one
search's patience per source; the :class:`NegativeSourceCache`
remembers the verdict *across* searches, so a source that just burned
its retry budget is skipped — on record, as a ``SKIPPED``
:class:`~repro.federation.SourceOutcome` — instead of re-probed, until
its entry expires and the source earns a fresh probe.

The cache is deliberately forgiving: entries expire after
``ttl_ms`` (a dead source gets re-probed eventually), a success wipes
the slate, and a ``failure_threshold`` above one tolerates isolated
flakes before declaring a source down.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.observability.metrics import get_registry

__all__ = ["NegativeEntry", "NegativeSourceCache"]


@dataclass
class NegativeEntry:
    """The remembered failure state of one source."""

    source_id: str
    failures: int
    last_status: str
    last_error: str | None
    down_until_ms: float | None  # None until the threshold is reached


class NegativeSourceCache:
    """Remembers which sources are down, and for how long to believe it.

    Args:
        ttl_ms: how long a source stays negative-cached after reaching
            the failure threshold (wall-clock; clock injectable).
        failure_threshold: consecutive failed *searches* (not wire
            attempts — the federation layer's retries happen below
            this) before the source is declared down.
    """

    def __init__(
        self, ttl_ms: float = 30_000.0, failure_threshold: int = 1, clock=None
    ) -> None:
        if ttl_ms <= 0:
            raise ValueError("ttl_ms must be > 0")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.ttl_ms = ttl_ms
        self.failure_threshold = failure_threshold
        self._clock = clock or (lambda: time.monotonic() * 1000.0)
        self._entries: dict[str, NegativeEntry] = {}
        self._lock = threading.Lock()
        self.skips = 0  #: probes avoided because the source was down

    def record_failure(
        self,
        source_id: str,
        status: str = "error",
        error: str | None = None,
        ttl_ms: float | None = None,
    ) -> NegativeEntry:
        """One more failed round for ``source_id``; returns its entry.

        ``ttl_ms`` overrides the cache-wide TTL for this hold — health
        scoring passes a longer one for sources with bad track records.
        """
        hold_ms = self.ttl_ms if ttl_ms is None else ttl_ms
        with self._lock:
            entry = self._entries.get(source_id)
            if entry is None:
                entry = NegativeEntry(source_id, 0, status, error, None)
                self._entries[source_id] = entry
            entry.failures += 1
            entry.last_status = status
            entry.last_error = error
            held = entry.failures >= self.failure_threshold
            if held:
                entry.down_until_ms = self._clock() + hold_ms
        if held:
            get_registry().gauge(
                "negative_cache_ttl_ms",
                "Current negative-cache hold applied to each down source.",
                labels=("source_id",),
            ).labels(source_id=source_id).set(hold_ms)
        return entry

    def record_success(self, source_id: str) -> None:
        """A good answer clears the source's record entirely."""
        with self._lock:
            self._entries.pop(source_id, None)

    def forget(self, source_id: str) -> None:
        """Drop the record without implying health (e.g. on forget())."""
        with self._lock:
            self._entries.pop(source_id, None)

    def skip_reason(self, source_id: str) -> str | None:
        """Why ``source_id`` should be skipped right now, or ``None``.

        A non-``None`` return increments :attr:`skips`.  An entry whose
        hold has expired is dropped — the source gets a fresh probe and
        a clean failure count.
        """
        with self._lock:
            entry = self._entries.get(source_id)
            if entry is None or entry.down_until_ms is None:
                return None
            if self._clock() >= entry.down_until_ms:
                del self._entries[source_id]
                return None
            self.skips += 1
            detail = f" ({entry.last_error})" if entry.last_error else ""
            reason = (
                f"negative-cached: {entry.last_status} on "
                f"{entry.failures} recent round(s){detail}"
            )
        get_registry().counter(
            "cache_negative_skips_total",
            "Wire probes avoided because the source was negative-cached.",
            labels=("source_id",),
        ).labels(source_id=source_id).inc()
        return reason

    def down_sources(self) -> list[str]:
        """Sources currently held down (expired entries excluded)."""
        now = self._clock()
        with self._lock:
            return sorted(
                source_id
                for source_id, entry in self._entries.items()
                if entry.down_until_ms is not None and now < entry.down_until_ms
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
