"""Canonical, order-insensitive serialization of STARTS queries.

Two queries that mean the same thing must share one cache key, or the
result cache leaks hit rate to syntactic noise: ``(a and b)`` versus
``(b and a)``, ``list(x y)`` versus ``list(y x)``, the same source set
selected in a different order.  This module canonicalizes the parts of
an :class:`~repro.starts.query.SQuery` whose order carries no meaning:

* children of ``and`` / ``or`` are commutative (boolean semantics) and
  are sorted by their canonical serialization;
* ``list`` is the flat vector-space grouping — bag semantics, so its
  items sort too;
* ``and-not`` and ``prox`` are **not** commutative and keep their
  operand order (``prox[d,T]`` is explicitly ordered; ``and-not``
  distinguishes positive from negative);
* answer fields and the routed source set are sets in disguise and
  sort; **sort keys keep their order** — sort priority is meaning.

``canonical_expression`` returns a real AST node (so the canonical
form re-parses: parse → canonicalize → serialize → parse is the
identity on canonical forms), and :func:`query_cache_key` folds every
semantically relevant query attribute plus the selected source ids
into one stable string.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.starts.ast import SAnd, SAndNot, SList, SNode, SOr, SProx, STerm
from repro.starts.query import SQuery

__all__ = ["canonical_expression", "canonical_text", "query_cache_key"]


def canonical_expression(node: SNode | None) -> SNode | None:
    """The canonical form of an expression: same meaning, one spelling.

    Commutative operators (``and``, ``or``, ``list``) get their
    children canonicalized recursively and sorted by serialization;
    order-sensitive operators (``and-not``, ``prox``) keep operand
    order.  Atomic terms are already canonical (the AST stores
    modifiers as written, which *are* meaningful — ``stem`` before
    ``case-sensitive`` is the same constraint set, but MBasic-1 treats
    the modifier list as ordered on the wire, so we leave it alone).
    """
    if node is None or isinstance(node, STerm):
        return node
    if isinstance(node, SAnd):
        return SAnd(_sorted_children(node.children))
    if isinstance(node, SOr):
        return SOr(_sorted_children(node.children))
    if isinstance(node, SList):
        return SList(_sorted_children(node.children))
    if isinstance(node, SAndNot):
        return SAndNot(
            canonical_expression(node.positive), canonical_expression(node.negative)
        )
    if isinstance(node, SProx):
        return node  # both operands are atomic terms; order is meaning
    return node


def _sorted_children(children: tuple[SNode, ...]) -> tuple[SNode, ...]:
    canonical = [canonical_expression(child) for child in children]
    return tuple(sorted(canonical, key=lambda child: child.serialize()))


def canonical_text(node: SNode | None) -> str:
    """The canonical serialization; ``"-"`` for an absent expression."""
    if node is None:
        return "-"
    return canonical_expression(node).serialize()


def query_cache_key(query: SQuery, source_ids: Iterable[str]) -> str:
    """A stable cache/dedup key for one query against one source set.

    Covers everything that changes the answer: both expressions
    (canonicalized), the selected source ids (sorted — routing order
    is an execution detail), the answer fields (sorted — the response
    carries fields by name), the sort specification (order kept — it
    is priority), score floor, document limit, stop-word handling and
    the default attribute set / language that scope bare terms.
    """
    sort_text = ",".join(key.serialize() for key in query.sort_keys)
    return "|".join(
        (
            "f=" + canonical_text(query.filter_expression),
            "r=" + canonical_text(query.ranking_expression),
            "src=" + ",".join(sorted(set(source_ids))),
            "af=" + ",".join(sorted(set(query.answer_fields))),
            "sort=" + sort_text,
            f"min={query.min_document_score:g}",
            f"max={query.max_number_documents}",
            "stop=" + ("T" if query.drop_stop_words else "F"),
            "attr=" + query.default_attribute_set,
            "lang=" + query.default_language,
        )
    )
