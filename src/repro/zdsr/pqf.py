"""PQF (Prefix Query Format) encoding of STARTS expressions.

Z39.50 type-101 queries are RPN trees; their standard textual notation
is PQF: ``@and @attr 1=1003 "Ullman" @attr 1=4 @attr 2=101 "databases"``.
This module converts between the STARTS AST (which §4.1.1 says is "a
simple subset of the type-101 queries") and PQF, using the ZDSR
attribute mappings of :mod:`repro.zdsr.bib1`.

Supported constructs — exactly the Basic-1 operator set:

* ``@and`` / ``@or`` / ``@not`` (binary; n-ary STARTS nodes are folded
  left-associatively, and ``@not`` is Z39.50's and-not);
* ``@prox exclusion distance ordered relation known-unit 2`` with the
  two operands following (word unit = 2, relation <= = 2);
* ``@attr`` lists on terms for use/relation/truncation attributes.
"""

from __future__ import annotations

import re

from repro.starts.ast import SAnd, SAndNot, SList, SNode, SOr, SProx, STerm
from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.errors import QuerySyntaxError
from repro.starts.lstring import LString
from repro.zdsr import bib1

__all__ = ["starts_to_pqf", "pqf_to_starts"]


def starts_to_pqf(node: SNode) -> str:
    """Render a STARTS expression as a PQF string.

    Raises:
        KeyError: if a field has no ZDSR attribute number.
    """
    if isinstance(node, STerm):
        return _term_to_pqf(node)
    if isinstance(node, (SAnd, SOr)):
        operator = "@and" if isinstance(node, SAnd) else "@or"
        rendered = starts_to_pqf(node.children[0])
        for child in node.children[1:]:
            rendered = f"{operator} {rendered} {starts_to_pqf(child)}"
        return rendered
    if isinstance(node, SAndNot):
        return f"@not {starts_to_pqf(node.positive)} {starts_to_pqf(node.negative)}"
    if isinstance(node, SProx):
        ordered = 1 if node.ordered else 0
        return (
            f"@prox 0 {node.distance} {ordered} 2 k 2 "
            f"{_term_to_pqf(node.left)} {_term_to_pqf(node.right)}"
        )
    if isinstance(node, SList):
        # ZDSR represents flat ranking lists as a chain of @or with the
        # relevance relation; the simple subset folds to @or.
        if len(node.children) == 1:
            return starts_to_pqf(node.children[0])
        rendered = starts_to_pqf(node.children[0])
        for child in node.children[1:]:
            rendered = f"@or {rendered} {starts_to_pqf(child)}"
        return rendered
    raise TypeError(f"cannot render {type(node).__name__} as PQF")


def _term_to_pqf(term: STerm) -> str:
    attrs: list[str] = []
    if term.field is not None:
        attrs.append(f"@attr 1={bib1.use_number(term.field.name)}")
    for modifier in term.modifiers:
        relation = bib1.relation_number(modifier.name)
        if relation is not None:
            attrs.append(f"@attr 2={relation}")
            continue
        truncation = bib1.truncation_number(modifier.name)
        if truncation is not None:
            attrs.append(f"@attr 5={truncation}")
    quoted = '"' + term.lstring.text.replace('"', '\\"') + '"'
    return " ".join(attrs + [quoted])


_PQF_TOKEN = re.compile(r'"(?:[^"\\]|\\.)*"|\S+')


def pqf_to_starts(text: str) -> SNode:
    """Parse a PQF string back into a STARTS expression.

    Raises:
        QuerySyntaxError: on malformed PQF or unknown attributes.
    """
    tokens = _PQF_TOKEN.findall(text)
    if not tokens:
        raise QuerySyntaxError("empty PQF query")
    node, position = _parse(tokens, 0)
    if position != len(tokens):
        raise QuerySyntaxError(f"trailing PQF tokens: {tokens[position:]}")
    return node


def _parse(tokens: list[str], position: int) -> tuple[SNode, int]:
    if position >= len(tokens):
        raise QuerySyntaxError("PQF query ended unexpectedly")
    token = tokens[position]
    if token in ("@and", "@or", "@not"):
        left, position = _parse(tokens, position + 1)
        right, position = _parse(tokens, position)
        if token == "@and":
            return SAnd((left, right)), position
        if token == "@or":
            return SOr((left, right)), position
        return SAndNot(left, right), position
    if token == "@prox":
        if position + 6 >= len(tokens):
            raise QuerySyntaxError("@prox needs six parameters")
        # exclusion distance ordered relation which-code unit
        distance = int(tokens[position + 2])
        ordered = tokens[position + 3] == "1"
        left, after_left = _parse(tokens, position + 7)
        right, after_right = _parse(tokens, after_left)
        if not isinstance(left, STerm) or not isinstance(right, STerm):
            raise QuerySyntaxError("@prox operands must be terms")
        return SProx(left, right, distance, ordered), after_right
    return _parse_term(tokens, position)


def _parse_term(tokens: list[str], position: int) -> tuple[STerm, int]:
    field: FieldRef | None = None
    modifiers: list[ModifierRef] = []
    while position < len(tokens) and tokens[position] == "@attr":
        if position + 1 >= len(tokens):
            raise QuerySyntaxError("@attr needs type=value")
        spec = tokens[position + 1]
        try:
            attr_type, value = spec.split("=")
            attr_type_num, value_num = int(attr_type), int(value)
        except ValueError:
            raise QuerySyntaxError(f"bad @attr spec: {spec!r}") from None
        if attr_type_num == 1:
            field = FieldRef(bib1.field_for_use(value_num))
        elif attr_type_num == 2:
            modifiers.append(ModifierRef(bib1.modifier_for_relation(value_num)))
        elif attr_type_num == 5:
            modifiers.append(ModifierRef(bib1.modifier_for_truncation(value_num)))
        else:
            raise QuerySyntaxError(f"unsupported @attr type: {attr_type_num}")
        position += 2
    if position >= len(tokens):
        raise QuerySyntaxError("PQF term without a search string")
    raw = tokens[position]
    if raw.startswith('"'):
        word = raw[1:-1].replace('\\"', '"')
    else:
        word = raw
    return STerm(LString(word), field, tuple(modifiers)), position + 1
