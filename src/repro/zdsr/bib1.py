"""Bib-1/ZDSR attribute mappings for the Z39.50 bridge.

Section 2 of the paper: "the Z39.50 community is designing a profile of
their Z39.50-1995 standard based on STARTS ... ZDSR, for Z39.50 Profile
for Simple Distributed Search and Ranked Retrieval."  This module
records the attribute-number mappings such a profile needs: Basic-1
fields to Bib-1 *use* attributes (type 1), Basic-1 modifiers to Bib-1
*relation* attributes (type 2) and *truncation* attributes (type 5).

Registered Bib-1 numbers are used where they exist (Title = 4,
Author = 1003, Any = 1016, Date/time-last-modified = 1012,
Body-of-text = 1010); the fields STARTS added (marked *new* in the
paper's table) take numbers from the private range 5000+, as profiles
conventionally do.
"""

from __future__ import annotations

__all__ = [
    "USE",
    "RELATION",
    "TRUNCATION",
    "use_number",
    "field_for_use",
    "relation_number",
    "modifier_for_relation",
]

#: Basic-1 field → Bib-1 use attribute (type 1).
USE: dict[str, int] = {
    "title": 4,
    "author": 1003,
    "body-of-text": 1010,
    "date/time-last-modified": 1012,
    "any": 1016,
    "linkage": 1032,            # Bib-1 "doc-id"-adjacent; GILS linkage
    "linkage-type": 5001,       # private range: STARTS-new fields
    "cross-reference-linkage": 5002,
    "languages": 54,            # Bib-1 code--language
    "document-text": 5003,
    "free-form-text": 5004,
    "abstract": 62,             # Bib-1 abstract
}

_USE_REVERSE = {number: name for name, number in USE.items()}

#: Comparison modifiers → Bib-1 relation attribute (type 2).
RELATION: dict[str, int] = {
    "<": 1,
    "<=": 2,
    "=": 3,
    ">=": 4,
    ">": 5,
    "!=": 6,
    "phonetic": 100,  # Bib-1 relation 100 = phonetic
    "stem": 101,      # Bib-1 relation 101 = stem
    "thesaurus": 102,  # Bib-1 relation 102 = relevance; ZDSR reuses it
    "case-sensitive": 5100,  # private: no Bib-1 equivalent
}

_RELATION_REVERSE = {number: name for name, number in RELATION.items()}

#: Truncation modifiers → Bib-1 truncation attribute (type 5).
TRUNCATION: dict[str, int] = {
    "right-truncation": 1,
    "left-truncation": 2,
}

_TRUNCATION_REVERSE = {number: name for name, number in TRUNCATION.items()}


def use_number(field_name: str) -> int:
    """The type-1 attribute value for a Basic-1 field.

    Raises:
        KeyError: for fields outside the ZDSR mapping.
    """
    return USE[field_name]


def field_for_use(number: int) -> str:
    """Inverse of :func:`use_number`."""
    return _USE_REVERSE[number]


def relation_number(modifier_name: str) -> int | None:
    """Type-2 value for a modifier, or None if it maps to truncation."""
    return RELATION.get(modifier_name)


def modifier_for_relation(number: int) -> str:
    return _RELATION_REVERSE[number]


def truncation_number(modifier_name: str) -> int | None:
    return TRUNCATION.get(modifier_name)


def modifier_for_truncation(number: int) -> str:
    return _TRUNCATION_REVERSE[number]
