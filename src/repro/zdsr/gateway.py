"""The ZDSR gateway: Z39.50-style access to a STARTS source.

The bridge the paper anticipates (§2, §5): a Z39.50 client speaks PQF
type-101 queries and expects Explain-like capability records; the
gateway translates both onto a STARTS source.  Like ZDSR itself, the
gateway is deliberately thin — it demonstrates that the STARTS data
model is a clean subset of Z39.50-1995 plus the ranked-retrieval
statistics Z39.50 lacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.source.source import StartsSource
from repro.starts.query import SQuery
from repro.starts.results import SQResults
from repro.zdsr import bib1
from repro.zdsr.pqf import pqf_to_starts, starts_to_pqf

__all__ = ["ExplainRecord", "ZdsrGateway"]


@dataclass(frozen=True)
class ExplainRecord:
    """A minimal Z39.50 Explain-style capability record.

    Carries what a ZDSR client needs to configure itself: the supported
    use/relation/truncation attribute numbers and the ranked-retrieval
    extensions STARTS adds (score range, ranking algorithm id).
    """

    source_id: str
    use_attributes: tuple[int, ...]
    relation_attributes: tuple[int, ...]
    truncation_attributes: tuple[int, ...]
    supports_ranked_retrieval: bool
    score_range: tuple[float, float]
    ranking_algorithm_id: str


class ZdsrGateway:
    """Wraps one STARTS source behind a PQF/Explain interface."""

    def __init__(self, source: StartsSource) -> None:
        self._source = source

    def explain(self) -> ExplainRecord:
        """Build the Explain record from the source's MBasic-1 metadata."""
        metadata = self._source.metadata()
        uses = []
        for ref, _ in metadata.fields_supported:
            number = bib1.USE.get(ref.name)
            if number is not None:
                uses.append(number)
        relations = []
        truncations = []
        for ref, _ in metadata.modifiers_supported:
            relation = bib1.relation_number(ref.name)
            if relation is not None:
                relations.append(relation)
            truncation = bib1.truncation_number(ref.name)
            if truncation is not None:
                truncations.append(truncation)
        return ExplainRecord(
            source_id=metadata.source_id,
            use_attributes=tuple(sorted(uses)),
            relation_attributes=tuple(sorted(relations)),
            truncation_attributes=tuple(sorted(truncations)),
            supports_ranked_retrieval=metadata.supports_ranking(),
            score_range=metadata.score_range,
            ranking_algorithm_id=metadata.ranking_algorithm_id,
        )

    def search_pqf(
        self,
        pqf: str,
        max_documents: int = 20,
        ranked: bool = False,
    ) -> SQResults:
        """Evaluate a PQF query at the wrapped source.

        Args:
            pqf: the type-101 query in prefix notation.
            max_documents: result-set cap.
            ranked: if True, the query is submitted as a ranking
                expression (ZDSR's ranked-retrieval mode); otherwise as
                a Boolean filter.
        """
        expression = pqf_to_starts(pqf)
        if ranked:
            query = SQuery(
                ranking_expression=expression, max_number_documents=max_documents
            )
        else:
            query = SQuery(
                filter_expression=expression, max_number_documents=max_documents
            )
        return self._source.search(query)

    def actual_pqf(self, results: SQResults) -> str | None:
        """The actual query the source processed, rendered back as PQF."""
        actual = (
            results.actual_filter_expression
            if results.actual_filter_expression is not None
            else results.actual_ranking_expression
        )
        if actual is None:
            return None
        return starts_to_pqf(actual)
