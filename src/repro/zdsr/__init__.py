"""ZDSR: the Z39.50 profile bridge the paper anticipates (§2, §5).

STARTS filter expressions are "a simple subset of the type-101 queries
of the Z39.50-1995 standard"; this package makes the subset relation
executable: PQF (prefix RPN) encoding of STARTS expressions with
Bib-1/ZDSR attribute numbers, and a gateway that serves PQF queries and
Explain-style records from any STARTS source.
"""

from repro.zdsr.bib1 import (
    RELATION,
    TRUNCATION,
    USE,
    field_for_use,
    modifier_for_relation,
    relation_number,
    use_number,
)
from repro.zdsr.gateway import ExplainRecord, ZdsrGateway
from repro.zdsr.pqf import pqf_to_starts, starts_to_pqf

__all__ = [
    "RELATION",
    "TRUNCATION",
    "USE",
    "field_for_use",
    "modifier_for_relation",
    "relation_number",
    "use_number",
    "ExplainRecord",
    "ZdsrGateway",
    "pqf_to_starts",
    "starts_to_pqf",
]
