"""StartsSource: a complete STARTS-compliant document source.

Wraps a search engine behind the protocol: accepts :class:`SQuery`
objects, down-translates them against declared capabilities, executes,
applies the answer specification (answer fields, sort order, minimum
score, maximum documents) and returns :class:`SQResults` carrying the
actual query and per-term statistics.  Also exports the two metadata
blobs (MBasic-1 attributes and the content summary) and the
sample-database results.  Sources are sessionless and stateless: every
``search`` call is self-contained.
"""

from __future__ import annotations

from dataclasses import replace

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.ranking import RankingAlgorithm
from repro.engine.search import EngineHit, SearchEngine
from repro.source.capabilities import SourceCapabilities
from repro.source.execution import QueryTranslator
from repro.source.sample import SampleResults, run_sample_queries
from repro.source.summaries import build_content_summary
from repro.starts.ast import STerm
from repro.starts.attributes import FieldRef, ModifierRef, canonical_field_name
from repro.starts.lstring import LString
from repro.starts.metadata import SContentSummary, SMetaAttributes
from repro.starts.query import SCORE_SORT_FIELD, SQuery
from repro.starts.results import SQRDocument, SQResults, TermStats
from repro.text.analysis import Analyzer

__all__ = ["StartsSource"]


class StartsSource:
    """One source: engine + capabilities + protocol endpoints.

    Args:
        source_id: the id used in Sources attributes (e.g. "Source-1").
        documents: initial collection, indexed immediately.
        engine: a pre-configured engine; defaults to cosine tf·idf with
            the default analyzer.
        capabilities: declared capabilities; defaults to full Basic-1.
        base_url: prefix for the linkage/summary/sample URLs exported
            in metadata.
        source_name / abstract / access_constraints / contact /
        date_changed: optional MBasic-1 attributes, passed through.
    """

    def __init__(
        self,
        source_id: str,
        documents: list[Document] | None = None,
        engine: SearchEngine | None = None,
        capabilities: SourceCapabilities | None = None,
        base_url: str | None = None,
        source_name: str = "",
        abstract: str = "",
        access_constraints: str = "",
        contact: str = "",
        date_changed: str = "",
        export_term_stats: bool = True,
        native_syntax=None,
    ) -> None:
        self.source_id = source_id
        self.engine = engine if engine is not None else SearchEngine()
        self.capabilities = capabilities or SourceCapabilities.full_basic1()
        self.base_url = base_url or f"http://{source_id.lower()}.example.org"
        self.source_name = source_name or source_id
        self.abstract = abstract
        self.access_constraints = access_constraints
        self.contact = contact
        self.date_changed = date_changed
        # §4.2: some engines lose per-term statistics by result time and
        # cannot export TermStats; their clients must fall back to the
        # SampleDatabaseResults calibration.
        self.export_term_stats = export_term_stats
        # Parser for the engine's native query language (enables the
        # Free-form-text pass-through field).
        self.native_syntax = native_syntax
        if self.engine.ranking is None and self.capabilities.supports_ranking():
            # A Boolean-only engine cannot honour an RF declaration.
            self.capabilities = replace(self.capabilities, query_parts="F")
        if documents:
            self.engine.add_all(documents)

    def add_documents(
        self, documents: list[Document], date_changed: str | None = None
    ) -> int:
        """Index additional documents (a periodic collection update).

        Updates ``DateChanged`` so harvesters see the source moved; the
        next metadata fetch reflects the new statistics (sources are
        stateless per query, but collections do evolve between
        metadata exports — §4.3).

        Returns the new document count.
        """
        self.engine.add_all(documents)
        if date_changed is not None:
            self.date_changed = date_changed
        return self.document_count

    def remove_documents(
        self, linkages: list[str], date_changed: str | None = None
    ) -> int:
        """Remove documents by URL; returns how many were removed."""
        removed = sum(1 for linkage in linkages if self.engine.remove(linkage))
        if removed and date_changed is not None:
            self.date_changed = date_changed
        return removed

    @property
    def analyzer(self) -> Analyzer:
        return self.engine.analyzer

    @property
    def document_count(self) -> int:
        return self.engine.document_count

    # -- querying -------------------------------------------------------

    def search(self, query: SQuery) -> SQResults:
        """Evaluate a STARTS query at this single source."""
        query.validate()
        translator = QueryTranslator(
            self.capabilities,
            self.analyzer,
            query.default_language,
            native_syntax=self.native_syntax,
        )
        drop_stop_words = query.drop_stop_words
        if not self.capabilities.turn_off_stop_words:
            drop_stop_words = True

        filter_outcome = translator.translate_filter(
            query.filter_expression, drop_stop_words
        )
        ranking_outcome = translator.translate_ranking(
            query.ranking_expression, drop_stop_words
        )

        if filter_outcome.engine_query is None and ranking_outcome.engine_query is None:
            return SQResults(
                sources=(self.source_id,),
                actual_filter_expression=filter_outcome.actual,
                actual_ranking_expression=ranking_outcome.actual,
                documents=(),
            )

        limit = query.max_number_documents
        if self.capabilities.result_cap is not None:
            limit = min(limit, self.capabilities.result_cap)

        # When the answer specification orders by score (the default),
        # the engine can truncate to the answer limit itself — the tail
        # is never materialized and never gets TermStats.  Any other
        # sort order needs the full result before sorting.
        min_score = 0.0
        if ranking_outcome.engine_query is not None:
            min_score = query.min_document_score
        hits = self.engine.search(
            filter_query=filter_outcome.engine_query,
            ranking_query=ranking_outcome.engine_query,
            top_k=limit if self._score_ordered(query) else None,
            min_score=min_score,
        )

        documents = [self._to_document(hit, query) for hit in hits]
        documents = self._sort_documents(documents, query)
        documents = documents[:limit]

        return SQResults(
            sources=(self.source_id,),
            actual_filter_expression=filter_outcome.actual,
            actual_ranking_expression=ranking_outcome.actual,
            documents=tuple(documents),
        )

    def _to_document(self, hit: EngineHit, query: SQuery) -> SQRDocument:
        document = self.engine.store[hit.doc_id]
        answer_fields = {}
        for name in query.answer_fields:
            canonical = canonical_field_name(name)
            if canonical == F.LINKAGE:
                continue  # always present on SQRDocument
            value = document.get(canonical)
            if value:
                answer_fields[canonical] = value
        term_stats: tuple[TermStats, ...] = ()
        if self.export_term_stats:
            term_stats = tuple(
                TermStats(
                    STerm(LString(stats.text), FieldRef(stats.field)),
                    stats.term_frequency,
                    stats.term_weight,
                    stats.document_frequency,
                )
                for stats in hit.term_stats
            )
        return SQRDocument(
            linkage=document.linkage,
            raw_score=hit.score,
            sources=(self.source_id,),
            fields=answer_fields,
            term_stats=term_stats,
            doc_size=document.size_kbytes(),
            doc_count=self.engine.store.token_count(hit.doc_id),
        )

    @staticmethod
    def _score_ordered(query: SQuery) -> bool:
        """True when the requested sort preserves the engine's order.

        The engine returns hits by descending score with ascending doc
        id tie-breaks; score-descending sort keys (including the empty
        sort) keep that order, so engine-side top-k truncation returns
        exactly the documents the full pipeline would.
        """
        return all(
            key.field == SCORE_SORT_FIELD and key.descending
            for key in query.sort_keys
        )

    def _sort_documents(
        self, documents: list[SQRDocument], query: SQuery
    ) -> list[SQRDocument]:
        """Apply the query's sort keys, score-descending by default.

        Multi-key sorts are applied least-significant key first (stable
        sort composition).
        """
        ordered = list(documents)
        for key in reversed(query.sort_keys):
            if key.field == SCORE_SORT_FIELD:
                ordered.sort(key=lambda doc: doc.raw_score, reverse=key.descending)
            else:
                field_name = canonical_field_name(key.field)
                ordered.sort(
                    key=lambda doc: doc.get(field_name, ""), reverse=key.descending
                )
        return ordered

    # -- metadata export ----------------------------------------------------

    def metadata(self) -> SMetaAttributes:
        """The source's MBasic-1 metadata attributes (Example 10)."""
        languages = self._source_languages()
        fields_supported = tuple(
            (FieldRef(name, "basic-1"), langs)
            for name, langs in sorted(self.capabilities.fields.items())
        )
        modifiers_supported = tuple(
            (ModifierRef(name, "basic-1"), langs)
            for name, langs in sorted(self.capabilities.modifiers.items())
        )
        combinations: tuple[tuple[FieldRef, ModifierRef], ...] = ()
        if self.capabilities.combinations is not None:
            combinations = tuple(
                (FieldRef(field_name, "basic-1"), ModifierRef(modifier_name, "basic-1"))
                for field_name, modifier_name in sorted(self.capabilities.combinations)
            )

        ranking: RankingAlgorithm | None = self.engine.ranking
        if ranking is not None:
            score_range = ranking.score_range
            algorithm_id = ranking.algorithm_id
        else:
            score_range = (0.0, 0.0)
            algorithm_id = "none"

        stop_words: list[str] = []
        for language in ("en", "es"):
            stop_list = self.analyzer.stop_words.get(language)
            if stop_list is not None and any(
                tag.startswith(language) for tag in languages
            ):
                stop_words.extend(stop_list)

        return SMetaAttributes(
            source_id=self.source_id,
            fields_supported=fields_supported,
            modifiers_supported=modifiers_supported,
            field_modifier_combinations=combinations,
            query_parts_supported=self.capabilities.query_parts,
            score_range=score_range,
            ranking_algorithm_id=algorithm_id,
            tokenizer_id_list=tuple(
                (self.analyzer.tokenizer.tokenizer_id, language)
                for language in languages
            ),
            sample_database_results=f"{self.base_url}/sample",
            stop_word_list=tuple(stop_words),
            turn_off_stop_words=self.capabilities.turn_off_stop_words,
            source_languages=languages,
            source_name=self.source_name,
            linkage=f"{self.base_url}/query",
            content_summary_linkage=f"{self.base_url}/cont_sum.txt",
            date_changed=self.date_changed,
            abstract=self.abstract,
            access_constraints=self.access_constraints,
            contact=self.contact,
        )

    def _source_languages(self) -> tuple[str, ...]:
        seen: list[str] = []
        for document in self.engine.store:
            tag = document.get(F.LANGUAGES) or document.language
            for language in tag.split():
                if language not in seen:
                    seen.append(language)
        return tuple(seen) if seen else ("en-US",)

    def content_summary(
        self, max_words_per_section: int | None = None
    ) -> SContentSummary:
        """The source's content summary (Example 11)."""
        return build_content_summary(self.engine, max_words_per_section)

    def scan(self, field: str, start_term: str, count: int = 10) -> "ScanResponse":
        """Browse the vocabulary of ``field`` from ``start_term`` on.

        The optional Scan extension (after Z39.50's Scan service, §5):
        returns up to ``count`` surface words >= ``start_term`` in
        lexicographic order, each with its postings count and document
        frequency, aggregated over languages.
        """
        from repro.source.scan import ScanEntry, ScanResponse

        canonical = canonical_field_name(field)
        totals: dict[str, list[int]] = {}
        for section_field, _, words in self.engine.index.summary_sections():
            if section_field != canonical:
                continue
            for word, stats in words.items():
                entry = totals.setdefault(word, [0, 0])
                entry[0] += stats.postings
                entry[1] += stats.document_frequency
        selected = [
            ScanEntry(word, postings, df)
            for word, (postings, df) in sorted(totals.items())
            if word >= start_term
        ]
        return ScanResponse(field=canonical, entries=tuple(selected[:count]))

    def sample_results(self) -> SampleResults:
        """Results over the fixed sample collection (§4.2 calibration)."""
        return run_sample_queries(
            lambda: SearchEngine(
                analyzer=Analyzer(
                    tokenizer=self.analyzer.tokenizer,
                    stop_words=self.analyzer.stop_words,
                    stem=self.analyzer.stem,
                    case_sensitive=self.analyzer.case_sensitive,
                    can_disable_stop_words=self.analyzer.can_disable_stop_words,
                    index_stop_words=self.analyzer.index_stop_words,
                ),
                ranking=self.engine.ranking,
            )
        )

    def __repr__(self) -> str:
        return (
            f"StartsSource({self.source_id!r}, {self.document_count} docs, "
            f"parts={self.capabilities.query_parts!r})"
        )
