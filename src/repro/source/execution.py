"""Query execution at a source: down-translation + actual-query report.

Section 4.2: "a source might decide to ignore certain parts of a query
that it receives ... each source returns the query that it actually
processed together with the query results."  This module implements
that contract:

1. Prune the incoming STARTS expressions against the source's declared
   capabilities — unsupported fields drop the term, unsupported
   modifiers drop just the modifier, unsupported ``prox`` degrades to
   ``and``, an unsupported query part drops that whole expression.
2. Apply stop-word elimination (unless the query disables it and the
   source allows disabling) — the paper's Example 8, where Source-1
   silently removes "distributed" from the ranking expression.
3. Convert the surviving STARTS AST into the engine's IR, splitting
   multi-word l-strings into per-word conjunctions (filters) or lists
   (ranking).

The pruned AST is what goes back on the wire as
``ActualFilterExpression`` / ``ActualRankingExpression``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.engine import fields as F
from repro.engine.query import (
    BooleanQuery,
    EngineQuery,
    ListQuery,
    ProxQuery,
    TermQuery,
)
from repro.source.capabilities import SourceCapabilities
from repro.starts.ast import SAnd, SAndNot, SList, SNode, SOr, SProx, STerm
from repro.starts.attributes import ModifierRef
from repro.text.analysis import Analyzer

__all__ = ["TranslationOutcome", "QueryTranslator"]


@dataclass
class TranslationOutcome:
    """The result of down-translating one expression.

    Attributes:
        actual: the pruned STARTS expression the source really
            processes (None if everything was dropped).
        engine_query: the same expression in engine IR (None likewise).
        dropped: human-readable notes on every pruning decision,
            useful for tests and for metasearcher diagnostics.
    """

    actual: SNode | None
    engine_query: EngineQuery | None
    dropped: list[str] = dataclass_field(default_factory=list)


class QueryTranslator:
    """Translates STARTS expressions for one concrete source.

    Args:
        capabilities: the source's declared capabilities.
        analyzer: the source's analysis pipeline (stop lists, tokenizer).
        default_language: the query's default language.
        native_syntax: parser for the source's native query language;
            enables the ``Free-form-text`` field, which carries a
            native query verbatim ("so that informed metasearchers
            could use the sources' richer native query languages").
        feedback_terms: how many salient words a ``Document-text`` term
            (relevance feedback, §4.1.1) expands into.
    """

    def __init__(
        self,
        capabilities: SourceCapabilities,
        analyzer: Analyzer,
        default_language: str = "en-US",
        native_syntax=None,
        feedback_terms: int = 10,
    ) -> None:
        self._capabilities = capabilities
        self._analyzer = analyzer
        self._default_language = default_language
        self._native_syntax = native_syntax
        self._feedback_terms = feedback_terms

    # -- public API ----------------------------------------------------

    def translate_filter(
        self, expression: SNode | None, drop_stop_words: bool
    ) -> TranslationOutcome:
        if expression is None:
            return TranslationOutcome(None, None)
        if not self._capabilities.supports_filter():
            return TranslationOutcome(
                None, None, ["filter expressions unsupported: expression ignored"]
            )
        return self._translate(expression, drop_stop_words, ranking=False)

    def translate_ranking(
        self, expression: SNode | None, drop_stop_words: bool
    ) -> TranslationOutcome:
        if expression is None:
            return TranslationOutcome(None, None)
        if not self._capabilities.supports_ranking():
            return TranslationOutcome(
                None, None, ["ranking expressions unsupported: expression ignored"]
            )
        return self._translate(expression, drop_stop_words, ranking=True)

    # -- recursive pruning ------------------------------------------------

    def _translate(
        self, expression: SNode, drop_stop_words: bool, ranking: bool
    ) -> TranslationOutcome:
        outcome = TranslationOutcome(None, None)
        pruned = self._prune(expression, drop_stop_words, outcome)
        outcome.actual = pruned
        if pruned is not None:
            outcome.engine_query = self._to_engine(pruned, ranking)
        return outcome

    def _prune(
        self, node: SNode, drop_stop_words: bool, outcome: TranslationOutcome
    ) -> SNode | None:
        if isinstance(node, STerm):
            return self._prune_term(node, drop_stop_words, outcome)
        if isinstance(node, (SAnd, SOr)):
            kept = [
                pruned
                for child in node.children
                if (pruned := self._prune(child, drop_stop_words, outcome)) is not None
            ]
            if not kept:
                return None
            if len(kept) == 1:
                return kept[0]
            return SAnd(tuple(kept)) if isinstance(node, SAnd) else SOr(tuple(kept))
        if isinstance(node, SAndNot):
            positive = self._prune(node.positive, drop_stop_words, outcome)
            negative = self._prune(node.negative, drop_stop_words, outcome)
            if positive is None:
                # No positive component left: the whole branch goes.
                if negative is not None:
                    outcome.dropped.append(
                        "and-not lost its positive side: branch dropped"
                    )
                return None
            if negative is None:
                return positive
            return SAndNot(positive, negative)
        if isinstance(node, SProx):
            left = self._prune(node.left, drop_stop_words, outcome)
            right = self._prune(node.right, drop_stop_words, outcome)
            if left is None or right is None:
                outcome.dropped.append("prox lost an operand: degraded")
                return left or right
            if not isinstance(left, STerm) or not isinstance(right, STerm):
                outcome.dropped.append("prox operands no longer atomic: degraded to and")
                return SAnd((left, right))
            if not self._capabilities.supports_prox:
                outcome.dropped.append("prox unsupported: degraded to and")
                return SAnd((left, right))
            return SProx(left, right, node.distance, node.ordered)
        if isinstance(node, SList):
            kept = [
                pruned
                for child in node.children
                if (pruned := self._prune(child, drop_stop_words, outcome)) is not None
            ]
            if not kept:
                return None
            if len(kept) == 1 and isinstance(kept[0], STerm):
                return kept[0]
            return SList(tuple(kept))
        raise TypeError(f"cannot prune node: {type(node).__name__}")

    def _prune_term(
        self, term: STerm, drop_stop_words: bool, outcome: TranslationOutcome
    ) -> SNode | None:
        field_name = term.field_name
        if not self._capabilities.supports_field(field_name):
            outcome.dropped.append(f"field {field_name!r} unsupported: term dropped")
            return None

        if field_name == F.FREE_FORM_TEXT:
            return self._splice_free_form(term, drop_stop_words, outcome)

        kept_modifiers: list[ModifierRef] = []
        for modifier in term.modifiers:
            if not self._capabilities.supports_modifier(modifier.name):
                outcome.dropped.append(
                    f"modifier {modifier.name!r} unsupported: modifier dropped"
                )
                continue
            if not self._capabilities.combination_is_legal(field_name, modifier.name):
                outcome.dropped.append(
                    f"combination ({field_name!r}, {modifier.name!r}) illegal: "
                    "modifier dropped"
                )
                continue
            kept_modifiers.append(modifier)

        if self._eliminates_stop_word(term, drop_stop_words):
            outcome.dropped.append(f"stop word {term.lstring.text!r} eliminated")
            return None

        if tuple(kept_modifiers) == term.modifiers:
            return term
        return STerm(term.lstring, term.field, tuple(kept_modifiers), term.weight)

    def _splice_free_form(
        self, term: STerm, drop_stop_words: bool, outcome: TranslationOutcome
    ) -> SNode | None:
        """Parse a Free-form-text term with the native syntax and splice
        the parsed expression in, so the actual query reveals how the
        source understood the native text (that visibility is how
        metasearchers learn native behaviours, per §4.3.1)."""
        if self._native_syntax is None:
            outcome.dropped.append("free-form-text without a native parser: dropped")
            return None
        try:
            parsed = self._native_syntax.parse(term.lstring.text)
        except Exception as error:  # native syntaxes raise QuerySyntaxError
            outcome.dropped.append(f"free-form-text failed to parse: {error}")
            return None
        outcome.dropped.append(
            f"free-form-text parsed via {type(self._native_syntax).__name__}"
        )
        return self._prune(parsed, drop_stop_words, outcome)

    def _eliminates_stop_word(self, term: STerm, drop_stop_words: bool) -> bool:
        if not drop_stop_words and self._capabilities.turn_off_stop_words:
            return False
        if term.comparison_modifier_present():
            return False
        language = term.lstring.effective_language
        stop_list = self._analyzer.stop_list_for(language)
        if stop_list is None:
            return False
        words = self._analyzer.tokenizer.words(term.lstring.text)
        return bool(words) and all(stop_list.is_stop_word(word) for word in words)

    # -- STARTS AST -> engine IR ----------------------------------------------

    def _to_engine(self, node: SNode, ranking: bool) -> EngineQuery:
        if isinstance(node, STerm):
            return self._term_to_engine(node, ranking)
        if isinstance(node, SAnd):
            return _boolean("and", [self._to_engine(c, ranking) for c in node.children])
        if isinstance(node, SOr):
            return _boolean("or", [self._to_engine(c, ranking) for c in node.children])
        if isinstance(node, SAndNot):
            return BooleanQuery(
                "and-not",
                (
                    self._to_engine(node.positive, ranking),
                    self._to_engine(node.negative, ranking),
                ),
            )
        if isinstance(node, SProx):
            left = self._term_to_engine(node.left, ranking)
            right = self._term_to_engine(node.right, ranking)
            # Multi-word prox operands fall back to their first word.
            left_term = left if isinstance(left, TermQuery) else left.terms()[0]
            right_term = right if isinstance(right, TermQuery) else right.terms()[0]
            return ProxQuery(left_term, right_term, node.distance, node.ordered)
        if isinstance(node, SList):
            return ListQuery(tuple(self._to_engine(c, ranking) for c in node.children))
        raise TypeError(f"cannot convert node: {type(node).__name__}")

    def _term_to_engine(self, term: STerm, ranking: bool) -> EngineQuery:
        language = str(term.lstring.effective_language)
        modifiers = frozenset(term.modifier_names())
        field_name = term.field_name

        if field_name == F.DOCUMENT_TEXT:
            return self._feedback_to_engine(term, ranking, language)

        if field_name in F.DATE_FIELDS or term.comparison_modifier_present():
            # Comparison terms keep their value whole (ISO dates).
            return TermQuery(field_name, term.lstring.text, language, modifiers, term.weight)

        words = self._analyzer.tokenizer.words(term.lstring.text)
        if len(words) <= 1:
            text = words[0] if words else term.lstring.text
            return TermQuery(field_name, text, language, modifiers, term.weight)

        word_queries = tuple(
            TermQuery(field_name, word, language, modifiers, term.weight)
            for word in words
        )
        if ranking:
            return ListQuery(word_queries)
        return BooleanQuery("and", word_queries)


    def _feedback_to_engine(
        self, term: STerm, ranking: bool, language: str
    ) -> EngineQuery:
        """Relevance feedback: a Document-text term carries a whole
        document; it matches via the document's most salient words.

        Salience is within-document frequency after stop-word removal;
        the top ``feedback_terms`` distinct words become a ``list``
        (ranking) or an ``or`` (filter) over the ``Any`` field.
        """
        counts: dict[str, int] = {}
        for token in self._analyzer.analyze(term.lstring.text, language):
            counts[token.term] = counts.get(token.term, 0) + 1
        salient = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        words = [word for word, _ in salient[: self._feedback_terms]]
        if not words:
            words = [self._analyzer.normalize(term.lstring.text, language)]
        word_queries = tuple(
            TermQuery(F.ANY, word, language, frozenset(), term.weight)
            for word in words
        )
        if len(word_queries) == 1:
            return word_queries[0]
        if ranking:
            return ListQuery(word_queries)
        return BooleanQuery("or", word_queries)


def _boolean(operator: str, children: list[EngineQuery]) -> EngineQuery:
    if len(children) == 1:
        return children[0]
    return BooleanQuery(operator, tuple(children))
