"""A term-browse (Scan) service, after Z39.50's Scan (§5 of the paper).

The paper credits Z39.50's Scan service with letting "clients access
the sources' contents incrementally".  STARTS-1.0 itself only exports
whole content summaries; this optional extension adds the incremental
counterpart: a client names a field and a start term and receives the
next N vocabulary entries with their statistics — useful for query
autocompletion and for probing how a source tokenized its collection
without downloading the full summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.starts.errors import SoifSyntaxError
from repro.starts.soif import SoifObject, parse_soif

__all__ = ["ScanRequest", "ScanEntry", "ScanResponse"]


@dataclass(frozen=True)
class ScanRequest:
    """A scan request: field + start term + how many entries."""

    field: str
    start_term: str
    count: int = 10

    def to_soif(self) -> SoifObject:
        obj = SoifObject("SScanRequest")
        obj.add("Field", self.field)
        obj.add("StartTerm", self.start_term)
        obj.add("Count", str(self.count))
        return obj

    @classmethod
    def from_soif(cls, obj: SoifObject) -> "ScanRequest":
        if obj.template != "SScanRequest":
            raise SoifSyntaxError(f"expected @SScanRequest, got @{obj.template}")
        return cls(
            field=obj.get("Field", "any") or "any",
            start_term=obj.get("StartTerm", "") or "",
            count=int(obj.get("Count", "10") or 10),
        )


@dataclass(frozen=True)
class ScanEntry:
    """One vocabulary entry: the surface word and its statistics."""

    word: str
    postings: int
    document_frequency: int


@dataclass(frozen=True)
class ScanResponse:
    """An ordered slice of the source's vocabulary."""

    field: str
    entries: tuple[ScanEntry, ...]

    def to_soif(self) -> SoifObject:
        obj = SoifObject("SScanResponse")
        obj.add("Field", self.field)
        obj.add(
            "Entries",
            "\n".join(
                f'"{entry.word}" {entry.postings} {entry.document_frequency}'
                for entry in self.entries
            ),
        )
        return obj

    @classmethod
    def from_soif(cls, obj: SoifObject) -> "ScanResponse":
        if obj.template != "SScanResponse":
            raise SoifSyntaxError(f"expected @SScanResponse, got @{obj.template}")
        entries = []
        for line in (obj.get("Entries", "") or "").splitlines():
            line = line.strip()
            if not line:
                continue
            closing = line.index('"', 1)
            word = line[1:closing]
            numbers = line[closing + 1 :].split()
            if len(numbers) != 2:
                raise SoifSyntaxError(f"bad scan entry: {line!r}")
            entries.append(ScanEntry(word, int(numbers[0]), int(numbers[1])))
        return cls(field=obj.get("Field", "any") or "any", entries=tuple(entries))

    @classmethod
    def parse(cls, data: bytes | str) -> "ScanResponse":
        return cls.from_soif(parse_soif(data))
