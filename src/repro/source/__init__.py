"""STARTS-compliant sources: capability declaration, execution, export."""

from repro.source.capabilities import SourceCapabilities
from repro.source.execution import QueryTranslator, TranslationOutcome
from repro.source.persistence import load_source, save_source
from repro.source.scan import ScanEntry, ScanRequest, ScanResponse
from repro.source.sample import (
    SampleResults,
    run_sample_queries,
    sample_collection,
    sample_queries,
)
from repro.source.source import StartsSource
from repro.source.summaries import build_content_summary

__all__ = [
    "SourceCapabilities",
    "QueryTranslator",
    "TranslationOutcome",
    "load_source",
    "save_source",
    "ScanEntry",
    "ScanRequest",
    "ScanResponse",
    "SampleResults",
    "run_sample_queries",
    "sample_collection",
    "sample_queries",
    "StartsSource",
    "build_content_summary",
]
