"""Declared capabilities of a STARTS source.

Sources differ in which fields, modifiers and query parts they support
(§3.1); STARTS does not level them down to a least common denominator —
instead each source *declares* its capabilities in its metadata and
silently ignores what it cannot do, reporting the actual query it
processed (§4.2).  :class:`SourceCapabilities` is that declaration, used
in three places: by the execution layer to decide what to drop, by the
metadata exporter to fill MBasic-1 attributes, and by metasearchers to
pre-translate queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field, replace

from repro.starts.attributes import BASIC1, canonical_field_name

__all__ = ["SourceCapabilities"]


def _default_fields() -> dict[str, tuple[str, ...]]:
    return {name: () for name in BASIC1.fields}


def _default_modifiers() -> dict[str, tuple[str, ...]]:
    return {name: () for name in BASIC1.modifiers}


@dataclass(frozen=True)
class SourceCapabilities:
    """What one source supports.

    Attributes:
        fields: supported field → languages it is supported for
            (empty tuple = all languages).  Required Basic-1 fields must
            be present — a source "must recognize" them even if it
            interprets them freely.
        modifiers: supported modifier → languages.
        combinations: legal (field, modifier) pairs, or None when any
            supported field combines with any supported modifier.
        query_parts: ``"RF"``, ``"R"`` (ranking only) or ``"F"``
            (filter only, e.g. Glimpse).
        supports_prox: False downgrades ``prox`` to ``and`` — mirroring
            the vendor who found even word-distance prox too complex.
        turn_off_stop_words: can the client disable stop-word dropping.
        supports_free_form: accepts native queries via Free-form-text.
        result_cap: hard upper bound on returned documents (None = no
            cap beyond the query's own MaxNumberDocuments).
    """

    fields: dict[str, tuple[str, ...]] = dataclass_field(default_factory=_default_fields)
    modifiers: dict[str, tuple[str, ...]] = dataclass_field(
        default_factory=_default_modifiers
    )
    combinations: frozenset[tuple[str, str]] | None = None
    query_parts: str = "RF"
    supports_prox: bool = True
    turn_off_stop_words: bool = True
    supports_free_form: bool = False
    result_cap: int | None = None

    def __post_init__(self) -> None:
        if self.query_parts.upper() not in ("R", "F", "RF"):
            raise ValueError(f"bad query_parts: {self.query_parts!r}")
        missing = [
            name
            for name in BASIC1.required_fields()
            if canonical_field_name(name) not in self.fields
        ]
        if missing:
            raise ValueError(f"required Basic-1 fields missing: {missing}")

    # -- queries the execution layer asks -------------------------------

    def supports_field(self, name: str) -> bool:
        return canonical_field_name(name) in self.fields

    def supports_modifier(self, name: str) -> bool:
        return name.lower() in self.modifiers

    def combination_is_legal(self, field_name: str, modifier_name: str) -> bool:
        field_name = canonical_field_name(field_name)
        modifier_name = modifier_name.lower()
        if not (self.supports_field(field_name) and self.supports_modifier(modifier_name)):
            return False
        if self.combinations is None:
            return True
        return (field_name, modifier_name) in self.combinations

    def supports_ranking(self) -> bool:
        return "R" in self.query_parts.upper()

    def supports_filter(self) -> bool:
        return "F" in self.query_parts.upper()

    # -- convenience constructors / variants ------------------------------

    @classmethod
    def full_basic1(cls) -> "SourceCapabilities":
        """Everything in Basic-1, both query parts, prox included."""
        return cls()

    def without_fields(self, *names: str) -> "SourceCapabilities":
        dropped = {canonical_field_name(name) for name in names}
        return replace(
            self,
            fields={k: v for k, v in self.fields.items() if k not in dropped},
        )

    def without_modifiers(self, *names: str) -> "SourceCapabilities":
        dropped = {name.lower() for name in names}
        return replace(
            self,
            modifiers={k: v for k, v in self.modifiers.items() if k not in dropped},
        )
