"""Sample-database results (§4.2, final paragraph).

Some engines cannot return per-term statistics — "by the time the
results are returned to the user, these statistics ... are lost".  For
those, STARTS asks sources to publish, as metadata, their query results
over a *fixed sample document collection* and a *fixed set of sample
queries*.  A metasearcher then treats the source as a black box and
calibrates its scores against the known sample.

The paper leaves the design of the sample open ("we are currently
investigating how to design this sample collection and queries"); this
module supplies a concrete design: a small topical collection spanning
every vocabulary topic, and single- and two-term sample queries with
graded expected difficulty, so a calibration curve (raw score →
comparable score) can be fit per source.
"""

from __future__ import annotations

from repro.corpus.generator import CollectionSpec, generate_collection
from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.query import ListQuery, TermQuery
from repro.starts.soif import SoifObject

__all__ = [
    "sample_collection",
    "sample_queries",
    "SampleResults",
    "run_sample_queries",
]


def sample_collection() -> list[Document]:
    """The protocol-wide fixed sample collection (seeded, 40 docs)."""
    spec = CollectionSpec(
        name="starts-sample",
        topics={
            "databases": 1.0,
            "retrieval": 1.0,
            "networking": 1.0,
            "medicine": 1.0,
        },
        size=40,
        general_fraction=0.3,
        seed=424242,
        with_abstract=False,
    )
    return generate_collection(spec)


def sample_queries() -> list[tuple[str, ...]]:
    """The fixed sample query set: common, medium and rare terms."""
    return [
        ("system",),
        ("databases",),
        ("query",),
        ("network",),
        ("patient",),
        ("retrieval", "ranking"),
        ("databases", "distributed"),
        ("routing", "congestion"),
        ("diagnosis", "treatment"),
        ("analysis", "performance"),
    ]


class SampleResults:
    """Per-query top scores of a source over the sample collection.

    Wire form: one SOIF object with a ``QueryScores`` attribute, one
    line per sample query: the query terms, then the top-k scores.
    """

    def __init__(self, scores: dict[tuple[str, ...], list[float]]) -> None:
        self.scores = scores

    def top_score(self, terms: tuple[str, ...]) -> float:
        values = self.scores.get(terms, [])
        return values[0] if values else 0.0

    def all_scores(self) -> list[float]:
        flattened: list[float] = []
        for values in self.scores.values():
            flattened.extend(values)
        return flattened

    def to_soif(self) -> SoifObject:
        obj = SoifObject("SSampleResults")
        lines = []
        for terms, values in sorted(self.scores.items()):
            rendered = " ".join(repr(value) for value in values)
            lines.append(f"{','.join(terms)}: {rendered}")
        obj.add("QueryScores", "\n".join(lines))
        return obj

    @classmethod
    def from_soif(cls, obj: SoifObject) -> "SampleResults":
        scores: dict[tuple[str, ...], list[float]] = {}
        for line in (obj.get("QueryScores", "") or "").splitlines():
            line = line.strip()
            if not line:
                continue
            terms_text, _, values_text = line.partition(":")
            terms = tuple(terms_text.split(","))
            scores[terms] = [float(piece) for piece in values_text.split()]
        return cls(scores)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SampleResults):
            return NotImplemented
        return self.scores == other.scores


def run_sample_queries(engine_factory, top_k: int = 10) -> SampleResults:
    """Index the sample collection in a fresh engine and run the samples.

    Args:
        engine_factory: zero-argument callable returning a *fresh*
            engine configured exactly like the source's production
            engine (same analyzer and ranking algorithm) — what makes
            the sample results representative of the black box.
        top_k: how many top scores to record per query.
    """
    engine = engine_factory()
    engine.add_all(sample_collection())
    scores: dict[tuple[str, ...], list[float]] = {}
    for terms in sample_queries():
        ranking = ListQuery(tuple(TermQuery(F.BODY_OF_TEXT, term) for term in terms))
        hits = engine.search(ranking_query=ranking)
        scores[terms] = [hit.score for hit in hits[:top_k]]
    return SampleResults(scores)
