"""Automatic content-summary generation (§4.3.2).

A source's content summary is generated straight from its inverted
index's surface-form statistics: the word list per (field, language),
each word with its total postings count and document frequency, plus
the total number of documents.  Per the paper's recommendation the
exported words are unstemmed and carry field information; case
sensitivity and stop-word inclusion follow the source's analyzer
configuration and are declared in the summary header flags.
"""

from __future__ import annotations

from repro.engine.search import SearchEngine
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection
from repro.text.analysis import Analyzer

__all__ = ["build_content_summary"]


def build_content_summary(
    engine: SearchEngine,
    max_words_per_section: int | None = None,
    include_postings: bool = True,
    include_document_frequencies: bool = True,
) -> SContentSummary:
    """Extract a source's content summary from its engine.

    Args:
        engine: the source's engine (index already built).
        max_words_per_section: truncate each (field, language) section
            to its most frequent words — the knob the E4/A1 experiments
            sweep to trade summary size against selection quality.
            None exports everything.
        include_postings / include_document_frequencies: the paper
            requires "at least one of" the two statistics; both default
            to exported.

    Raises:
        ValueError: if both statistics are disabled.
    """
    if not (include_postings or include_document_frequencies):
        raise ValueError("a summary must include postings or document frequencies")

    analyzer: Analyzer = engine.analyzer
    sections = []
    for field_name, language, words in engine.index.summary_sections():
        entries = [
            SummaryEntryLine(
                word,
                stats.postings if include_postings else -1,
                stats.document_frequency if include_document_frequencies else -1,
            )
            for word, stats in words.items()
        ]
        # Most frequent first, then alphabetical for determinism.
        entries.sort(key=lambda entry: (-max(entry.postings, entry.document_frequency), entry.word))
        if max_words_per_section is not None:
            entries = entries[:max_words_per_section]
        sections.append(SummarySection(field_name, language, tuple(entries)))

    return SContentSummary(
        num_docs=engine.document_count,
        sections=tuple(sections),
        stemming=analyzer.stem,
        stop_words=analyzer.index_stop_words,
        case_sensitive=analyzer.case_sensitive,
        fields=True,
        has_postings=include_postings,
        has_document_frequencies=include_document_frequencies,
    )
