"""Saving and loading complete STARTS sources.

Builds on engine persistence: a source directory holds the serialized
index plus a ``source.json`` describing identity, capabilities and
engine configuration, so ``load_source`` can reconstruct an equivalent
:class:`~repro.source.source.StartsSource` — same search behaviour,
same metadata exports — in a fresh process.

Analyzer stop lists and the thesaurus are code, not data: the loader
re-creates the default English/Spanish lists; custom lists must be
re-attached by the caller (the saved analyzer signature catches
mismatches for the parameters that shape the index).
"""

from __future__ import annotations

import json
import pathlib

from repro.engine.persistence import PersistenceError, load_engine, save_engine
from repro.engine.ranking import RANKING_ALGORITHMS
from repro.engine.search import SearchEngine
from repro.source.capabilities import SourceCapabilities
from repro.source.source import StartsSource
from repro.storage.manifest import atomic_write_text
from repro.text.analysis import Analyzer
from repro.text.tokenize import get_tokenizer
from repro.vendors.native import NATIVE_SYNTAXES

__all__ = ["save_source", "load_source"]

_ENGINE_FILE = "engine.json"
_SOURCE_FILE = "source.json"


def _capabilities_payload(capabilities: SourceCapabilities) -> dict:
    return {
        "fields": {name: list(langs) for name, langs in capabilities.fields.items()},
        "modifiers": {
            name: list(langs) for name, langs in capabilities.modifiers.items()
        },
        "combinations": (
            sorted(list(pair) for pair in capabilities.combinations)
            if capabilities.combinations is not None
            else None
        ),
        "query_parts": capabilities.query_parts,
        "supports_prox": capabilities.supports_prox,
        "turn_off_stop_words": capabilities.turn_off_stop_words,
        "supports_free_form": capabilities.supports_free_form,
        "result_cap": capabilities.result_cap,
    }


def _capabilities_from_payload(payload: dict) -> SourceCapabilities:
    combinations = payload["combinations"]
    return SourceCapabilities(
        fields={name: tuple(langs) for name, langs in payload["fields"].items()},
        modifiers={
            name: tuple(langs) for name, langs in payload["modifiers"].items()
        },
        combinations=(
            frozenset(tuple(pair) for pair in combinations)
            if combinations is not None
            else None
        ),
        query_parts=payload["query_parts"],
        supports_prox=payload["supports_prox"],
        turn_off_stop_words=payload["turn_off_stop_words"],
        supports_free_form=payload["supports_free_form"],
        result_cap=payload["result_cap"],
    )


def save_source(source: StartsSource, directory: str | pathlib.Path) -> pathlib.Path:
    """Serialize ``source`` (index + configuration) under ``directory``."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    save_engine(source.engine, path / _ENGINE_FILE)

    native_id = None
    if source.native_syntax is not None:
        native_id = source.native_syntax.syntax_id

    payload = {
        "source_id": source.source_id,
        "base_url": source.base_url,
        "source_name": source.source_name,
        "abstract": source.abstract,
        "access_constraints": source.access_constraints,
        "contact": source.contact,
        "date_changed": source.date_changed,
        "export_term_stats": source.export_term_stats,
        "native_syntax": native_id,
        "capabilities": _capabilities_payload(source.capabilities),
        "analyzer": {
            "tokenizer": source.analyzer.tokenizer.tokenizer_id,
            "stem": source.analyzer.stem,
            "case_sensitive": source.analyzer.case_sensitive,
            "can_disable_stop_words": source.analyzer.can_disable_stop_words,
            "index_stop_words": source.analyzer.index_stop_words,
        },
        "ranking": source.engine.ranking.algorithm_id if source.engine.ranking else None,
    }
    atomic_write_text(path / _SOURCE_FILE, json.dumps(payload, indent=1))
    return path


def load_source(directory: str | pathlib.Path) -> StartsSource:
    """Reconstruct a saved source.

    Raises:
        PersistenceError: on missing files or unknown configuration ids.
    """
    path = pathlib.Path(directory)
    source_file = path / _SOURCE_FILE
    if not source_file.exists():
        raise PersistenceError(f"no {_SOURCE_FILE} under {path}")
    payload = json.loads(source_file.read_text())

    analyzer_config = payload["analyzer"]
    try:
        tokenizer = get_tokenizer(analyzer_config["tokenizer"])
    except KeyError as error:
        raise PersistenceError(f"unknown tokenizer: {error}") from error
    analyzer = Analyzer(
        tokenizer=tokenizer,
        stem=analyzer_config["stem"],
        case_sensitive=analyzer_config["case_sensitive"],
        can_disable_stop_words=analyzer_config["can_disable_stop_words"],
        index_stop_words=analyzer_config["index_stop_words"],
    )

    ranking = None
    if payload["ranking"] is not None:
        algorithm_class = RANKING_ALGORITHMS.get(payload["ranking"])
        if algorithm_class is None:
            raise PersistenceError(f"unknown ranking algorithm: {payload['ranking']}")
        ranking = algorithm_class()

    engine = SearchEngine(analyzer=analyzer, ranking=ranking)
    load_engine(engine, path / _ENGINE_FILE)

    native_syntax = None
    if payload["native_syntax"] is not None:
        native_syntax = NATIVE_SYNTAXES.get(payload["native_syntax"])
        if native_syntax is None:
            raise PersistenceError(
                f"unknown native syntax: {payload['native_syntax']}"
            )

    source = StartsSource(
        payload["source_id"],
        engine=engine,
        capabilities=_capabilities_from_payload(payload["capabilities"]),
        base_url=payload["base_url"],
        source_name=payload["source_name"],
        abstract=payload["abstract"],
        access_constraints=payload["access_constraints"],
        contact=payload["contact"],
        date_changed=payload["date_changed"],
        export_term_stats=payload["export_term_stats"],
        native_syntax=native_syntax,
    )
    return source
