"""Per-source query policies: deadlines, retries, backoff, hedging.

§3.3's operational worries — slow sources, charging sources — become
concrete knobs here.  A :class:`QueryPolicy` says how patient the
metasearcher is with one source (``timeout_ms``), how hard it tries
(``max_retries`` with exponential backoff), and whether it hedges a
slow first request with a duplicate (the tail-latency trade: one more
paid request against waiting out a straggler).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QueryPolicy"]


@dataclass(frozen=True, slots=True)
class QueryPolicy:
    """How one source's queries are executed.

    Attributes:
        timeout_ms: per-attempt deadline; ``None`` waits forever (well,
            until the transport itself gives up on a hung request).
        max_retries: additional attempts after the first, so
            ``max_retries=2`` allows three attempts in total.
        backoff_base_ms: wait before the first retry.
        backoff_multiplier: growth factor for successive retry waits.
        backoff_max_ms: cap on any single backoff wait.
        hedge_after_ms: if set, a request still unanswered after this
            long gets a duplicate fired at the same source; the faster
            answer wins, both requests are paid for.
        retry_on_error / retry_on_timeout: which failure kinds are
            worth another attempt.
    """

    timeout_ms: float | None = None
    max_retries: int = 0
    backoff_base_ms: float = 50.0
    backoff_multiplier: float = 2.0
    backoff_max_ms: float = 5_000.0
    hedge_after_ms: float | None = None
    retry_on_error: bool = True
    retry_on_timeout: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise ValueError("backoff waits must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff_before(self, attempt_number: int) -> float:
        """Backoff wait (ms) before attempt ``attempt_number`` (1-based).

        The first attempt never waits; retry N waits
        ``base * multiplier**(N-1)``, capped at ``backoff_max_ms``.
        """
        if attempt_number <= 1:
            return 0.0
        wait = self.backoff_base_ms * self.backoff_multiplier ** (attempt_number - 2)
        return min(wait, self.backoff_max_ms)

    def should_retry(self, status: str, attempt_number: int) -> bool:
        """Is another attempt after ``attempt_number`` worth making?"""
        if attempt_number >= self.max_attempts:
            return False
        if status == "timeout":
            return self.retry_on_timeout
        return self.retry_on_error

    def attempt_wall_budget_s(
        self, time_scale: float = 1.0, hang_cap_ms: float = 60_000.0, slack_s: float = 5.0
    ) -> float:
        """Wall-clock budget (seconds) for one realtime attempt.

        Used by the asyncio executor as the ``asyncio.wait_for`` guard
        around an awaited attempt: the *simulated* deadline decides the
        outcome deterministically (the transport clamps latency to
        ``timeout_ms``), so this bound only has to catch a genuinely
        hung handler.  It is deliberately generous — ``slack_s`` on top
        of the scaled simulated budget — so scheduler jitter can never
        flip an outcome.
        """
        simulated_ms = self.timeout_ms if self.timeout_ms is not None else hang_cap_ms
        return simulated_ms * time_scale / 1000.0 + slack_s
