"""Per-source outcomes: the partial-result vocabulary of a federation.

A metasearch over N sources is not all-or-nothing: each source
independently succeeds, errors, times out, or is skipped before any
request is sent (translation left nothing askable).  A
:class:`SourceOutcome` records which, together with every attempt made
on the wire, so merging can proceed over the survivors while the
failures stay visible — §3.3's slow and charging sources become data,
not exceptions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dataclass_field

from repro.starts.results import SQResults

__all__ = ["OutcomeStatus", "Attempt", "SourceOutcome"]


class OutcomeStatus(str, enum.Enum):
    """How one source's part of a federated query ended."""

    OK = "ok"
    ERROR = "error"
    TIMEOUT = "timeout"
    SKIPPED = "skipped"
    #: Abandoned mid-flight by a streaming search: the merged top-k was
    #: provably stable (or the deadline expired) before this source
    #: answered.  Not a failure — the source was never given the chance.
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Attempt:
    """One wire request made on behalf of a source.

    Hedged duplicates share the ``number`` of the attempt that spawned
    them and set ``hedged``.
    """

    number: int
    status: OutcomeStatus
    latency_ms: float
    cost: float = 0.0
    backoff_before_ms: float = 0.0
    hedged: bool = False
    error: str | None = None


@dataclass
class SourceOutcome:
    """Everything that happened to one source during a query round.

    Attributes:
        elapsed_ms: the *simulated* wire-clock this source occupied —
            attempts plus backoff waits, sequential within the source,
            with hedges overlapping their primary.
        cost: total monetary cost across every request, including
            failed attempts and losing hedges (they were still paid).
        sibling_ids: sources answered by the same routed request
            (Figure-1 ``Sources`` grouping).
    """

    source_id: str
    status: OutcomeStatus
    results: SQResults | None = None
    attempts: tuple[Attempt, ...] = ()
    elapsed_ms: float = 0.0
    cost: float = 0.0
    error: str | None = None
    skip_reason: str | None = None
    sibling_ids: tuple[str, ...] = dataclass_field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.status is OutcomeStatus.OK

    @property
    def retries(self) -> int:
        """Attempts beyond the first (hedged duplicates excluded)."""
        numbers = {attempt.number for attempt in self.attempts if not attempt.hedged}
        return max(len(numbers) - 1, 0)

    @property
    def requests(self) -> int:
        return len(self.attempts)

    @classmethod
    def skip(
        cls, source_id: str, reason: str, sibling_ids: tuple[str, ...] = ()
    ) -> "SourceOutcome":
        """A source never contacted, with the reason on record."""
        return cls(
            source_id,
            OutcomeStatus.SKIPPED,
            skip_reason=reason,
            sibling_ids=tuple(sibling_ids),
        )

    @classmethod
    def cancelled(
        cls, source_id: str, reason: str, sibling_ids: tuple[str, ...] = ()
    ) -> "SourceOutcome":
        """A source abandoned mid-stream, with the reason on record.

        Unlike a skip, the request may already have been on the wire
        (and paid for); unlike an error, the source did nothing wrong —
        negative caching and health scoring treat it as neutral.
        """
        return cls(
            source_id,
            OutcomeStatus.CANCELLED,
            skip_reason=reason,
            sibling_ids=tuple(sibling_ids),
        )

    def describe(self) -> str:
        """One display line: status, attempts, wire time, cost."""
        if self.status in (OutcomeStatus.SKIPPED, OutcomeStatus.CANCELLED):
            return f"{self.source_id}: {self.status.value} ({self.skip_reason})"
        detail = (
            f"{self.source_id}: {self.status.value} after {self.requests} request(s)"
            f" ({self.retries} retr{'y' if self.retries == 1 else 'ies'}),"
            f" {self.elapsed_ms:.1f}ms wire, cost {self.cost:.2f}"
        )
        if self.error:
            detail += f" — {self.error}"
        return detail
