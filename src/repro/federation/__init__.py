"""The federation executor layer: concurrent, fault-tolerant dispatch.

Extracted from the metasearcher's query round so per-source execution
is a first-class, testable subsystem: executors (serial vs thread-pool
fan-out), per-source query policies (deadline, retries with backoff,
hedging), and partial-result outcomes that keep a search alive when
individual sources fail.
"""

from repro.federation.aio import (
    AsyncExecutor,
    AsyncSourceAdapter,
    ClientSourceAdapter,
)
from repro.federation.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    run_tasks_catching,
    submit_background,
)
from repro.federation.outcomes import Attempt, OutcomeStatus, SourceOutcome
from repro.federation.policy import QueryPolicy
from repro.federation.runner import QueryDispatcher, SourceRequest

__all__ = [
    "AsyncExecutor",
    "AsyncSourceAdapter",
    "ClientSourceAdapter",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "run_tasks_catching",
    "submit_background",
    "Attempt",
    "OutcomeStatus",
    "SourceOutcome",
    "QueryPolicy",
    "QueryDispatcher",
    "SourceRequest",
]
