"""The asyncio-native executor: thousands of source queries in flight.

The thread-pool :class:`~repro.federation.executor.ParallelExecutor`
fans a query round out at one OS thread per source — fine for eight
sources, ruinous for eight hundred.  :class:`AsyncExecutor` drives the
same round as asyncio tasks on one event loop: waiting on a simulated
(or real) network costs a suspended coroutine, not a blocked thread,
so a single process can hold thousands of in-flight source queries
bounded only by the per-query semaphore.

It satisfies the existing :class:`~repro.federation.executor.Executor`
protocol (``name`` + ``run`` returning results in task order), so every
current ``Metasearcher`` caller works unchanged — the sync façade owns
a private event loop per call.  Two extensions make streaming possible:

* ``run`` and ``run_stream`` accept *coroutine functions* as well as
  plain callables; the federation runner hands over its async per-source
  attempt machinery and the loop multiplexes the waits.  Plain callables
  degrade gracefully to a worker-thread pool.
* :meth:`run_stream` yields ``(index, result)`` pairs *in completion
  order* — the primitive under ``Metasearcher.search_stream``'s
  incremental emission.  Abandoning the generator (early termination)
  cancels every task still in flight.

:class:`AsyncSourceAdapter` is the pluggable seam for non-simulated
backends: any object with a ``name`` and an awaitable ``query`` can
stand in for the default :class:`ClientSourceAdapter`, which wraps the
typed STARTS client's awaitable request path.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from typing import Protocol, TypeVar, runtime_checkable

from repro.observability.metrics import get_registry
from repro.starts.query import SQuery
from repro.starts.results import SQResults
from repro.transport.client import StartsClient
from repro.transport.network import AccessRecord

__all__ = ["AsyncSourceAdapter", "ClientSourceAdapter", "AsyncExecutor"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


@runtime_checkable
class AsyncSourceAdapter(Protocol):
    """An async-capable source backend: one awaitable query method.

    The shape follows the async ``SearchSource`` adapter idiom: a named
    adapter whose ``query`` coroutine resolves to the decoded results
    plus the wire accounting record.  The federation runner awaits it
    for every attempt (retries and hedges included), so an adapter for
    a real HTTP backend drops in without touching policy machinery.
    """

    @property
    def name(self) -> str: ...

    async def query(
        self, query_url: str, query: SQuery, deadline_ms: float | None = None
    ) -> tuple[SQResults, AccessRecord]: ...


class ClientSourceAdapter:
    """The default adapter: the typed STARTS client's awaitable path."""

    def __init__(self, client: StartsClient) -> None:
        self._client = client

    @property
    def name(self) -> str:
        return "starts-client"

    async def query(
        self, query_url: str, query: SQuery, deadline_ms: float | None = None
    ) -> tuple[SQResults, AccessRecord]:
        return await self._client.query_with_record_async(
            query_url, query, deadline_ms=deadline_ms
        )


def _inflight_gauge(executor_name: str):
    return get_registry().gauge(
        "executor_inflight_tasks",
        "Source-query tasks currently in flight per executor.",
        labels=("executor",),
    ).labels(executor=executor_name)


class AsyncExecutor:
    """Asyncio fan-out: one event loop, semaphore-capped task concurrency.

    Args:
        max_concurrency: per-``run`` cap on simultaneously executing
            tasks (the per-query concurrency cap).  Tasks beyond the cap
            queue on the semaphore and start as slots free.

    The executor is stateless between calls apart from telemetry
    (``peak_inflight`` and the ``executor_inflight_tasks`` gauge), so
    one instance is safe to share across searchers and threads — each
    ``run``/``run_stream`` owns a private event loop.  The sync façade
    cannot be called from inside a running event loop; callers already
    inside a loop should await the task coroutines directly.
    """

    name = "async"
    #: The federation runner checks this to hand over coroutine task
    #: functions (the asyncio-native attempt path) instead of sync ones.
    is_async = True

    def __init__(self, max_concurrency: int = 64) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.max_concurrency = max_concurrency
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        #: High-water mark of simultaneously executing tasks across
        #: every run this executor has driven (all threads).
        self.peak_inflight = 0

    # -- Executor protocol -------------------------------------------------

    def run(
        self, tasks: Sequence[TaskT], fn: Callable[[TaskT], ResultT]
    ) -> list[ResultT]:
        """Drive ``fn`` over ``tasks``; results come back in task order.

        ``fn`` may be a plain callable (run on worker threads, capped at
        ``max_concurrency``) or a coroutine function (run natively as
        asyncio tasks).
        """
        tasks = list(tasks)
        results: list[ResultT] = [None] * len(tasks)  # type: ignore[list-item]
        for index, result in self.run_stream(tasks, fn):
            results[index] = result
        return results

    def run_stream(
        self, tasks: Sequence[TaskT], fn: Callable[[TaskT], ResultT]
    ) -> Iterator[tuple[int, ResultT]]:
        """Yield ``(task index, result)`` pairs in *completion* order.

        The generator owns the event loop: every task is started up
        front (semaphore-capped), and each ``next()`` runs the loop
        until another task finishes.  Closing the generator early
        cancels all remaining tasks — the cancellation path behind
        deadline expiry and provably-stable early termination.
        """
        tasks = list(tasks)
        if not tasks:
            return
        is_coroutine = inspect.iscoroutinefunction(fn)
        pool: _ThreadPool | None = None
        if not is_coroutine:
            pool = _ThreadPool(max_workers=min(self.max_concurrency, len(tasks)))
        loop = asyncio.new_event_loop()
        task_objects: list[asyncio.Task] = []
        try:
            semaphore = asyncio.Semaphore(self.max_concurrency)
            queue: asyncio.Queue = asyncio.Queue()

            async def drive_one(index: int, task: TaskT) -> None:
                async with semaphore:
                    self._enter_task()
                    try:
                        if is_coroutine:
                            result = await fn(task)
                        else:
                            result = await asyncio.get_running_loop().run_in_executor(
                                pool, fn, task
                            )
                    except Exception as error:
                        await queue.put((index, None, error))
                        return
                    finally:
                        self._exit_task()
                await queue.put((index, result, None))

            async def start_all() -> None:
                for index, task in enumerate(tasks):
                    task_objects.append(
                        asyncio.get_running_loop().create_task(drive_one(index, task))
                    )

            loop.run_until_complete(start_all())
            for _ in range(len(tasks)):
                index, result, error = loop.run_until_complete(queue.get())
                if error is not None:
                    raise error
                yield index, result
        finally:
            for task_object in task_objects:
                task_object.cancel()
            if task_objects:
                loop.run_until_complete(
                    asyncio.gather(*task_objects, return_exceptions=True)
                )
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            loop.close()

    def submit(self, fn: Callable[[], object]) -> None:
        """Run ``fn`` on a daemon thread; the caller never waits for it.

        Background work (cache revalidation) carries its own event loop
        if it needs one; a per-call thread keeps the executor stateless.
        """
        threading.Thread(target=fn, daemon=True).start()

    # -- telemetry ---------------------------------------------------------

    def _enter_task(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            if self._inflight > self.peak_inflight:
                self.peak_inflight = self._inflight
        _inflight_gauge(self.name).inc()

    def _exit_task(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
        _inflight_gauge(self.name).dec()
