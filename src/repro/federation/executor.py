"""Executors: how a batch of per-source tasks is driven.

The paper's metasearcher contacts "a few sources" per query; *how* it
contacts them is a deployment decision this protocol keeps out of the
pipeline.  :class:`SerialExecutor` runs tasks one after another —
deterministic, debuggable, and what the original reproduction did.
:class:`ParallelExecutor` fans out over a thread pool, so a query round
costs the slowest source rather than the sum of all of them — the
NeuralSearchX-style concurrent dispatch that makes federated serving
affordable.  Both return results in task order, so callers never
depend on completion order.
"""

from __future__ import annotations

import logging
import threading
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor as _ThreadPool, wait
from typing import Protocol, TypeVar, runtime_checkable

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "run_tasks_catching",
    "submit_background",
]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

logger = logging.getLogger(__name__)


@runtime_checkable
class Executor(Protocol):
    """Drives ``fn`` over ``tasks``; returns results in task order."""

    name: str

    def run(
        self, tasks: Sequence[TaskT], fn: Callable[[TaskT], ResultT]
    ) -> list[ResultT]: ...


class SerialExecutor:
    """One task at a time, in order — the deterministic baseline."""

    name = "serial"

    def run(
        self, tasks: Sequence[TaskT], fn: Callable[[TaskT], ResultT]
    ) -> list[ResultT]:
        return [fn(task) for task in tasks]

    def run_stream(
        self, tasks: Sequence[TaskT], fn: Callable[[TaskT], ResultT]
    ) -> Iterator[tuple[int, ResultT]]:
        """Yield ``(index, result)`` lazily, one task at a time.

        Completion order *is* task order here, but laziness matters:
        a streaming caller that stops early never runs the remaining
        tasks at all.
        """
        for index, task in enumerate(tasks):
            yield index, fn(task)

    def submit(self, fn: Callable[[], object]) -> None:
        """Run ``fn`` inline — single-threaded code stays deterministic."""
        fn()


class ParallelExecutor:
    """Thread-pool fan-out: a query round costs the slowest source.

    Args:
        max_workers: pool size; defaults to one thread per task, capped
            at 32.  A fresh pool per batch keeps the executor stateless
            and safe to share between searchers.
    """

    name = "parallel"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(
        self, tasks: Sequence[TaskT], fn: Callable[[TaskT], ResultT]
    ) -> list[ResultT]:
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [fn(task) for task in tasks]
        workers = self.max_workers or min(32, len(tasks))
        with _ThreadPool(max_workers=min(workers, len(tasks))) as pool:
            return list(pool.map(fn, tasks))

    def run_stream(
        self, tasks: Sequence[TaskT], fn: Callable[[TaskT], ResultT]
    ) -> Iterator[tuple[int, ResultT]]:
        """Yield ``(index, result)`` pairs in completion order.

        Futures are submitted up front; each ``next()`` waits for the
        earliest remaining completion, so a streaming caller sees the
        fastest source first.  Abandoning the generator cancels any
        futures that have not started.
        """
        tasks = list(tasks)
        if not tasks:
            return
        workers = self.max_workers or min(32, len(tasks))
        pool = _ThreadPool(max_workers=min(workers, len(tasks)))
        try:
            futures = {pool.submit(fn, task): index for index, task in enumerate(tasks)}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()
        finally:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)

    def submit(self, fn: Callable[[], object]) -> None:
        """Run ``fn`` on a daemon thread; the caller never waits for it.

        Used for fire-and-forget work like cache revalidation, where the
        stale answer has already been served and the refresh must not
        block the response.  A per-call thread (not the batch pool —
        that one is created and torn down per ``run``) keeps this
        executor stateless.
        """
        threading.Thread(target=fn, daemon=True).start()


def run_tasks_catching(
    executor: Executor,
    tasks: Sequence[TaskT],
    fn: Callable[[TaskT], ResultT],
) -> "list[tuple[ResultT | None, Exception | None]]":
    """Run ``fn`` over ``tasks``; per-task exceptions become values.

    Returns one ``(result, None)`` or ``(None, exception)`` pair per
    task, in task order, whatever the executor.  A fan-out caller (the
    broker root consulting its leaves) can then apply per-task fallback
    — retry after a failover, degrade, re-raise — without one failing
    task poisoning the whole batch, which is exactly what a bare
    ``executor.run`` would do.
    """

    def guarded(task: TaskT) -> "tuple[ResultT | None, Exception | None]":
        try:
            return fn(task), None
        except Exception as error:  # noqa: BLE001 — the caller decides
            return None, error

    return executor.run(tasks, guarded)


def submit_background(
    executor: object, fn: Callable[[], object], task_name: str = "background"
) -> None:
    """Schedule ``fn`` through ``executor.submit`` when it has one.

    Third-party executors only promise :class:`Executor`'s ``run``;
    for those, background work degrades gracefully to running inline.

    A worker exception used to vanish with its daemon thread (or, run
    inline, blow up a caller that had already been served its answer).
    Now every failure is surfaced the same way regardless of executor:
    logged with its traceback and counted in the
    ``background_task_failures_total`` metric, never re-raised into the
    foreground request.
    """

    def guarded() -> None:
        try:
            fn()
        except Exception:
            logger.exception("background task %r failed", task_name)
            from repro.observability.metrics import get_registry

            get_registry().counter(
                "background_task_failures_total",
                "Exceptions raised by fire-and-forget background tasks.",
                labels=("task",),
            ).labels(task=task_name).inc()

    submit = getattr(executor, "submit", None)
    if callable(submit):
        submit(guarded)
    else:
        guarded()
