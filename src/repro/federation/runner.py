"""The per-source query runner: policies applied, outcomes recorded.

This is the fault-tolerant core the :class:`~repro.metasearch.client.
Metasearcher` delegates its query round to.  A :class:`QueryDispatcher`
takes translated per-source requests, drives them through an
:class:`~repro.federation.executor.Executor`, and applies each source's
:class:`~repro.federation.policy.QueryPolicy`: deadline per attempt,
retries with exponential backoff, optional hedged duplicates.  Every
request — successful, failed, hedged — is accounted in the returned
:class:`~repro.federation.outcomes.SourceOutcome` and in the tracer's
per-source counters, so a slow or dead source costs bounded time and
leaves a record instead of aborting the search.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field as dataclass_field

from repro.federation.executor import Executor, SerialExecutor
from repro.federation.outcomes import Attempt, OutcomeStatus, SourceOutcome
from repro.federation.policy import QueryPolicy
from repro.observability.metrics import get_registry
from repro.observability.tracing import Span, Tracer
from repro.starts.errors import ProtocolError
from repro.starts.query import SQuery
from repro.starts.results import SQResults
from repro.transport.client import StartsClient
from repro.transport.network import TransportError, TransportTimeout

__all__ = ["SourceRequest", "QueryDispatcher"]


@dataclass(frozen=True, slots=True)
class SourceRequest:
    """One translated query bound for one source (plus routed siblings)."""

    source_id: str
    query_url: str
    query: SQuery
    sibling_ids: tuple[str, ...] = dataclass_field(default_factory=tuple)


@dataclass(frozen=True, slots=True)
class _AttemptOutcome:
    """One logical attempt: the primary request plus any hedge."""

    status: OutcomeStatus
    records: tuple[Attempt, ...]
    results: SQResults | None
    effective_ms: float
    cost: float
    error: str | None


class QueryDispatcher:
    """Runs per-source requests under an executor with per-source policies.

    Args:
        client: the transport client queries go through.
        executor: serial or parallel dispatch (default serial).
        policy: the default :class:`QueryPolicy`.
        policies: per-source-id overrides of the default policy.
        tracer: receives one span per source (with per-attempt child
            events) and the per-source counters; a fresh tracer is
            created when none is given.
    """

    def __init__(
        self,
        client: StartsClient,
        executor: Executor | None = None,
        policy: QueryPolicy | None = None,
        policies: dict[str, QueryPolicy] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.client = client
        self.executor = executor or SerialExecutor()
        self.policy = policy or QueryPolicy()
        self.policies = dict(policies or {})
        self.tracer = tracer or Tracer()

    def policy_for(self, source_id: str) -> QueryPolicy:
        return self.policies.get(source_id, self.policy)

    def dispatch(
        self, requests: Sequence[SourceRequest], parent: Span | None = None
    ) -> list[SourceOutcome]:
        """Run every request; outcomes come back in request order."""
        return self.executor.run(
            list(requests), lambda request: self.run_one(request, parent)
        )

    def run_one(
        self, request: SourceRequest, parent: Span | None = None
    ) -> SourceOutcome:
        """Execute one source's request under its policy, traced."""
        policy = self.policy_for(request.source_id)
        with self.tracer.span(
            f"query:{request.source_id}", parent=parent, url=request.query_url
        ) as span:
            outcome = self._run_with_policy(request, policy)
            get_registry().counter(
                "source_outcomes_total",
                "Per-source query outcomes after policy (ok/error/timeout/...).",
                labels=("source_id", "status"),
            ).labels(source_id=request.source_id, status=outcome.status.value).inc()
            span.annotate(
                status=outcome.status.value,
                requests=outcome.requests,
                retries=outcome.retries,
                wire_ms=outcome.elapsed_ms,
                cost=outcome.cost,
            )
            if outcome.error:
                span.annotate(error=outcome.error)
        return outcome

    # -- policy machinery --------------------------------------------------

    def _run_with_policy(
        self, request: SourceRequest, policy: QueryPolicy
    ) -> SourceOutcome:
        source_id = request.source_id
        attempts: list[Attempt] = []
        elapsed_ms = 0.0
        cost = 0.0
        number = 0
        while True:
            number += 1
            backoff = policy.backoff_before(number)
            if backoff:
                elapsed_ms += backoff
                self.tracer.count(source_id, backoff_ms=backoff)
                self.tracer.event("backoff", wait_ms=backoff, before_attempt=number)
                get_registry().counter(
                    "source_backoff_ms_total",
                    "Simulated milliseconds spent backing off before retries.",
                    labels=("source_id",),
                ).labels(source_id=source_id).inc(backoff)
            attempt = self._attempt(request, policy, number, backoff)
            attempts.extend(attempt.records)
            elapsed_ms += attempt.effective_ms
            cost += attempt.cost
            self._count(source_id, number, attempt)
            if attempt.status is OutcomeStatus.OK:
                return SourceOutcome(
                    source_id,
                    OutcomeStatus.OK,
                    results=attempt.results,
                    attempts=tuple(attempts),
                    elapsed_ms=elapsed_ms,
                    cost=cost,
                    sibling_ids=request.sibling_ids,
                )
            if not policy.should_retry(attempt.status.value, number):
                return SourceOutcome(
                    source_id,
                    attempt.status,
                    attempts=tuple(attempts),
                    elapsed_ms=elapsed_ms,
                    cost=cost,
                    error=attempt.error,
                    sibling_ids=request.sibling_ids,
                )

    def _attempt(
        self,
        request: SourceRequest,
        policy: QueryPolicy,
        number: int,
        backoff_ms: float,
    ) -> _AttemptOutcome:
        status, latency, cost, results, error = self._single(request, policy)
        records = [Attempt(number, status, latency, cost, backoff_ms, False, error)]
        self.tracer.event(
            f"attempt:{number}",
            status=status.value,
            latency_ms=latency,
            cost=cost,
        )
        hedge_at = policy.hedge_after_ms
        if hedge_at is None or latency <= hedge_at:
            return _AttemptOutcome(status, tuple(records), results, latency, cost, error)

        # The primary was still unanswered at the hedge deadline, so a
        # duplicate went out; it completes hedge_at later than a fresh
        # request would.  The faster success wins, both are paid for.
        h_status, h_latency, h_cost, h_results, h_error = self._single(request, policy)
        records.append(Attempt(number, h_status, h_latency, h_cost, 0.0, True, h_error))
        self.tracer.event(
            f"attempt:{number}:hedge",
            status=h_status.value,
            latency_ms=h_latency,
            cost=h_cost,
        )
        total_cost = cost + h_cost
        hedge_completion = hedge_at + h_latency
        winners: list[tuple[float, SQResults | None]] = []
        if status is OutcomeStatus.OK:
            winners.append((latency, results))
        if h_status is OutcomeStatus.OK:
            winners.append((hedge_completion, h_results))
        if winners:
            effective, winning_results = min(winners, key=lambda entry: entry[0])
            return _AttemptOutcome(
                OutcomeStatus.OK,
                tuple(records),
                winning_results,
                effective,
                total_cost,
                None,
            )
        # Both failed: the client knows only when the slower one gives up.
        return _AttemptOutcome(
            status,
            tuple(records),
            None,
            max(latency, hedge_completion),
            total_cost,
            error or h_error,
        )

    def _single(
        self, request: SourceRequest, policy: QueryPolicy
    ) -> tuple[OutcomeStatus, float, float, SQResults | None, str | None]:
        """One wire request → (status, latency_ms, cost, results, error)."""
        try:
            results, record = self.client.query_with_record(
                request.query_url, request.query, deadline_ms=policy.timeout_ms
            )
            return OutcomeStatus.OK, record.latency_ms, record.cost, results, None
        except TransportTimeout as exc:
            record = exc.record
            latency = record.latency_ms if record else (policy.timeout_ms or 0.0)
            cost = record.cost if record else 0.0
            return OutcomeStatus.TIMEOUT, latency, cost, None, str(exc)
        except (TransportError, ProtocolError) as exc:
            record = getattr(exc, "record", None)
            latency = record.latency_ms if record else 0.0
            cost = record.cost if record else 0.0
            return OutcomeStatus.ERROR, latency, cost, None, str(exc)

    def _count(self, source_id: str, number: int, attempt: _AttemptOutcome) -> None:
        self.tracer.count(
            source_id,
            requests=len(attempt.records),
            retries=1 if number > 1 else 0,
            failures=sum(
                1 for rec in attempt.records if rec.status is OutcomeStatus.ERROR
            ),
            timeouts=sum(
                1 for rec in attempt.records if rec.status is OutcomeStatus.TIMEOUT
            ),
            hedges=sum(1 for rec in attempt.records if rec.hedged),
            latency_ms=sum(rec.latency_ms for rec in attempt.records),
            cost=attempt.cost,
        )
        registry = get_registry()
        requests = registry.counter(
            "source_requests_total",
            "Wire requests per source and per-attempt outcome.",
            labels=("source_id", "outcome"),
        )
        latency = registry.histogram(
            "source_request_latency_ms",
            "Simulated wire latency of individual source requests.",
            labels=("source_id",),
        ).labels(source_id=source_id)
        hedges = 0
        for record in attempt.records:
            requests.labels(source_id=source_id, outcome=record.status.value).inc()
            latency.observe(record.latency_ms)
            hedges += 1 if record.hedged else 0
        if number > 1:
            registry.counter(
                "source_retries_total",
                "Retry attempts per source (first attempts excluded).",
                labels=("source_id",),
            ).labels(source_id=source_id).inc()
        if hedges:
            registry.counter(
                "source_hedges_total",
                "Hedged duplicate requests fired per source.",
                labels=("source_id",),
            ).labels(source_id=source_id).inc(hedges)
        if attempt.cost:
            registry.counter(
                "source_cost_total",
                "Accumulated monetary cost charged per source.",
                labels=("source_id",),
            ).labels(source_id=source_id).inc(attempt.cost)
