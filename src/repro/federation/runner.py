"""The per-source query runner: policies applied, outcomes recorded.

This is the fault-tolerant core the :class:`~repro.metasearch.client.
Metasearcher` delegates its query round to.  A :class:`QueryDispatcher`
takes translated per-source requests, drives them through an
:class:`~repro.federation.executor.Executor`, and applies each source's
:class:`~repro.federation.policy.QueryPolicy`: deadline per attempt,
retries with exponential backoff, optional hedged duplicates.  Every
request — successful, failed, hedged — is accounted in the returned
:class:`~repro.federation.outcomes.SourceOutcome` and in the tracer's
per-source counters, so a slow or dead source costs bounded time and
leaves a record instead of aborting the search.
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field as dataclass_field

from repro.federation.aio import AsyncSourceAdapter, ClientSourceAdapter
from repro.federation.executor import Executor, SerialExecutor
from repro.federation.outcomes import Attempt, OutcomeStatus, SourceOutcome
from repro.federation.policy import QueryPolicy
from repro.observability.metrics import get_registry
from repro.observability.tracing import Span, Tracer, trace_context
from repro.starts.errors import ProtocolError
from repro.starts.query import SQuery
from repro.starts.results import SQResults
from repro.transport.client import StartsClient
from repro.transport.network import TransportError, TransportTimeout

__all__ = ["SourceRequest", "QueryDispatcher"]

#: (status, latency_ms, cost, results, error) — one wire request's fate.
_SingleResult = tuple[OutcomeStatus, float, float, SQResults | None, str | None]


@dataclass(frozen=True, slots=True)
class SourceRequest:
    """One translated query bound for one source (plus routed siblings)."""

    source_id: str
    query_url: str
    query: SQuery
    sibling_ids: tuple[str, ...] = dataclass_field(default_factory=tuple)


@dataclass(frozen=True, slots=True)
class _AttemptOutcome:
    """One logical attempt: the primary request plus any hedge."""

    status: OutcomeStatus
    records: tuple[Attempt, ...]
    results: SQResults | None
    effective_ms: float
    cost: float
    error: str | None


class QueryDispatcher:
    """Runs per-source requests under an executor with per-source policies.

    Args:
        client: the transport client queries go through.
        executor: serial or parallel dispatch (default serial).
        policy: the default :class:`QueryPolicy`.
        policies: per-source-id overrides of the default policy.
        tracer: receives one span per source (with per-attempt child
            events) and the per-source counters; a fresh tracer is
            created when none is given.
    """

    def __init__(
        self,
        client: StartsClient,
        executor: Executor | None = None,
        policy: QueryPolicy | None = None,
        policies: dict[str, QueryPolicy] | None = None,
        tracer: Tracer | None = None,
        adapter: AsyncSourceAdapter | None = None,
    ) -> None:
        self.client = client
        self.executor = executor or SerialExecutor()
        self.policy = policy or QueryPolicy()
        self.policies = dict(policies or {})
        self.tracer = tracer or Tracer()
        #: The awaitable source backend the async attempt path queries;
        #: defaults to the STARTS client's own awaitable request path.
        self.adapter: AsyncSourceAdapter = adapter or ClientSourceAdapter(client)

    def policy_for(self, source_id: str) -> QueryPolicy:
        return self.policies.get(source_id, self.policy)

    def _task_function(self, parent: Span | None):
        """The per-request task the executor drives.

        An async-capable executor (``is_async``) receives the coroutine
        path, so waits suspend tasks instead of blocking threads; every
        other executor receives the plain callable it always has.
        """
        if getattr(self.executor, "is_async", False):

            async def task_function(request: SourceRequest) -> SourceOutcome:
                return await self.run_one_async(request, parent)

        else:

            def task_function(request: SourceRequest) -> SourceOutcome:  # type: ignore[misc]
                return self.run_one(request, parent)

        return task_function

    def dispatch(
        self, requests: Sequence[SourceRequest], parent: Span | None = None
    ) -> list[SourceOutcome]:
        """Run every request; outcomes come back in request order."""
        return self.executor.run(list(requests), self._task_function(parent))

    def dispatch_stream(
        self, requests: Sequence[SourceRequest], parent: Span | None = None
    ) -> Iterator[SourceOutcome]:
        """Yield outcomes *as sources complete*, not in request order.

        Executors with a ``run_stream`` method stream natively (serial:
        lazily task by task; parallel: thread completion order; async:
        event-loop completion order).  Closing the iterator early
        abandons whatever is still in flight — the hook streaming
        searches use for deadline expiry and stable-top-k termination.
        """
        requests = list(requests)
        task_function = self._task_function(parent)
        run_stream = getattr(self.executor, "run_stream", None)
        if run_stream is None:
            # Third-party executor with only the protocol's run():
            # degrade to emitting the completed batch in request order.
            yield from self.executor.run(requests, task_function)
            return
        for _, outcome in run_stream(requests, task_function):
            yield outcome

    def run_one(
        self, request: SourceRequest, parent: Span | None = None
    ) -> SourceOutcome:
        """Execute one source's request under its policy, traced."""
        policy = self.policy_for(request.source_id)
        with self.tracer.span(
            f"query:{request.source_id}", parent=parent, url=request.query_url
        ) as span:
            # Activate this span's trace context so the transport layer
            # injects a traceparent header on every wire request below.
            with trace_context(self.tracer.context_for(span)):
                outcome = self._run_with_policy(request, policy)
            self._annotate_outcome(span, request, outcome)
        return outcome

    async def run_one_async(
        self, request: SourceRequest, parent: Span | None = None
    ) -> SourceOutcome:
        """The asyncio mirror of :meth:`run_one`: same policy, same
        accounting, every wait awaited instead of slept.

        Spans are opened and closed explicitly (never via the tracer's
        thread-local stack) because sibling source tasks interleave on
        one event-loop thread.
        """
        policy = self.policy_for(request.source_id)
        span = self.tracer.open_span(
            f"query:{request.source_id}", parent=parent, url=request.query_url
        )
        try:
            with trace_context(self.tracer.context_for(span)):
                outcome = await self._run_with_policy_async(request, policy, span)
            self._annotate_outcome(span, request, outcome)
        finally:
            self.tracer.close_span(span)
        return outcome

    def _annotate_outcome(
        self, span: Span, request: SourceRequest, outcome: SourceOutcome
    ) -> None:
        get_registry().counter(
            "source_outcomes_total",
            "Per-source query outcomes after policy (ok/error/timeout/...).",
            labels=("source_id", "status"),
        ).labels(source_id=request.source_id, status=outcome.status.value).inc()
        span.annotate(
            status=outcome.status.value,
            requests=outcome.requests,
            retries=outcome.retries,
            wire_ms=outcome.elapsed_ms,
            cost=outcome.cost,
        )
        if outcome.error:
            span.annotate(error=outcome.error)

    # -- policy machinery --------------------------------------------------

    def _run_with_policy(
        self, request: SourceRequest, policy: QueryPolicy
    ) -> SourceOutcome:
        source_id = request.source_id
        attempts: list[Attempt] = []
        elapsed_ms = 0.0
        cost = 0.0
        number = 0
        while True:
            number += 1
            backoff = policy.backoff_before(number)
            if backoff:
                elapsed_ms += backoff
                self._note_backoff(source_id, backoff, number)
            attempt = self._attempt(request, policy, number, backoff)
            attempts.extend(attempt.records)
            elapsed_ms += attempt.effective_ms
            cost += attempt.cost
            self._count(source_id, number, attempt)
            if attempt.status is OutcomeStatus.OK or not policy.should_retry(
                attempt.status.value, number
            ):
                return self._terminal_outcome(
                    request, attempt, attempts, elapsed_ms, cost
                )

    async def _run_with_policy_async(
        self, request: SourceRequest, policy: QueryPolicy, span: Span
    ) -> SourceOutcome:
        """Mirror of :meth:`_run_with_policy` over awaited attempts.

        The *decisions* — when to back off, retry, hedge, give up — are
        the shared helpers the sync path uses, driven by the same
        deterministic simulated latencies, so an async round produces
        bit-identical outcomes; only the waiting is cooperative.
        """
        source_id = request.source_id
        attempts: list[Attempt] = []
        elapsed_ms = 0.0
        cost = 0.0
        number = 0
        while True:
            number += 1
            backoff = policy.backoff_before(number)
            if backoff:
                elapsed_ms += backoff
                self._note_backoff(source_id, backoff, number, parent=span)
                if self._realtime():
                    await asyncio.sleep(
                        backoff * self.client.internet.time_scale / 1000.0
                    )
            attempt = await self._attempt_async(request, policy, number, backoff, span)
            attempts.extend(attempt.records)
            elapsed_ms += attempt.effective_ms
            cost += attempt.cost
            self._count(source_id, number, attempt)
            if attempt.status is OutcomeStatus.OK or not policy.should_retry(
                attempt.status.value, number
            ):
                return self._terminal_outcome(
                    request, attempt, attempts, elapsed_ms, cost
                )

    def _note_backoff(
        self, source_id: str, backoff: float, number: int, parent: Span | None = None
    ) -> None:
        self.tracer.count(source_id, backoff_ms=backoff)
        self.tracer.event(
            "backoff", parent=parent, wait_ms=backoff, before_attempt=number
        )
        get_registry().counter(
            "source_backoff_ms_total",
            "Simulated milliseconds spent backing off before retries.",
            labels=("source_id",),
        ).labels(source_id=source_id).inc(backoff)

    @staticmethod
    def _terminal_outcome(
        request: SourceRequest,
        attempt: _AttemptOutcome,
        attempts: list[Attempt],
        elapsed_ms: float,
        cost: float,
    ) -> SourceOutcome:
        if attempt.status is OutcomeStatus.OK:
            return SourceOutcome(
                request.source_id,
                OutcomeStatus.OK,
                results=attempt.results,
                attempts=tuple(attempts),
                elapsed_ms=elapsed_ms,
                cost=cost,
                sibling_ids=request.sibling_ids,
            )
        return SourceOutcome(
            request.source_id,
            attempt.status,
            attempts=tuple(attempts),
            elapsed_ms=elapsed_ms,
            cost=cost,
            error=attempt.error,
            sibling_ids=request.sibling_ids,
        )

    def _attempt(
        self,
        request: SourceRequest,
        policy: QueryPolicy,
        number: int,
        backoff_ms: float,
    ) -> _AttemptOutcome:
        primary = self._single(request, policy)
        records = [self._record_of(number, primary, backoff_ms, hedged=False)]
        self._trace_attempt(number, primary, hedged=False)
        if not self._needs_hedge(policy, primary):
            status, latency, cost, results, error = primary
            return _AttemptOutcome(status, tuple(records), results, latency, cost, error)

        # The primary was still unanswered at the hedge deadline, so a
        # duplicate went out; it completes hedge_at later than a fresh
        # request would.  The faster success wins, both are paid for.
        hedge = self._single(request, policy)
        records.append(self._record_of(number, hedge, 0.0, hedged=True))
        self._trace_attempt(number, hedge, hedged=True)
        return self._resolve_hedge(policy, records, primary, hedge)

    async def _attempt_async(
        self,
        request: SourceRequest,
        policy: QueryPolicy,
        number: int,
        backoff_ms: float,
        span: Span,
    ) -> _AttemptOutcome:
        """:meth:`_attempt`, awaiting each wire request.

        The hedge decision is made from the primary's *simulated*
        latency (exactly as the sync path does), never from wall-clock
        races — outcomes stay deterministic under any scheduler.
        """
        primary = await self._single_async(request, policy)
        records = [self._record_of(number, primary, backoff_ms, hedged=False)]
        self._trace_attempt(number, primary, hedged=False, parent=span)
        if not self._needs_hedge(policy, primary):
            status, latency, cost, results, error = primary
            return _AttemptOutcome(status, tuple(records), results, latency, cost, error)
        hedge = await self._single_async(request, policy)
        records.append(self._record_of(number, hedge, 0.0, hedged=True))
        self._trace_attempt(number, hedge, hedged=True, parent=span)
        return self._resolve_hedge(policy, records, primary, hedge)

    @staticmethod
    def _record_of(
        number: int, single: _SingleResult, backoff_ms: float, hedged: bool
    ) -> Attempt:
        status, latency, cost, _, error = single
        return Attempt(number, status, latency, cost, backoff_ms, hedged, error)

    def _trace_attempt(
        self,
        number: int,
        single: _SingleResult,
        hedged: bool,
        parent: Span | None = None,
    ) -> None:
        status, latency, cost, _, _ = single
        self.tracer.event(
            f"attempt:{number}:hedge" if hedged else f"attempt:{number}",
            parent=parent,
            status=status.value,
            latency_ms=latency,
            cost=cost,
        )

    @staticmethod
    def _needs_hedge(policy: QueryPolicy, primary: _SingleResult) -> bool:
        hedge_at = policy.hedge_after_ms
        return hedge_at is not None and primary[1] > hedge_at

    @staticmethod
    def _resolve_hedge(
        policy: QueryPolicy,
        records: list[Attempt],
        primary: _SingleResult,
        hedge: _SingleResult,
    ) -> _AttemptOutcome:
        status, latency, cost, results, error = primary
        h_status, h_latency, h_cost, h_results, h_error = hedge
        total_cost = cost + h_cost
        hedge_completion = (policy.hedge_after_ms or 0.0) + h_latency
        winners: list[tuple[float, SQResults | None]] = []
        if status is OutcomeStatus.OK:
            winners.append((latency, results))
        if h_status is OutcomeStatus.OK:
            winners.append((hedge_completion, h_results))
        if winners:
            effective, winning_results = min(winners, key=lambda entry: entry[0])
            return _AttemptOutcome(
                OutcomeStatus.OK,
                tuple(records),
                winning_results,
                effective,
                total_cost,
                None,
            )
        # Both failed: the client knows only when the slower one gives up.
        return _AttemptOutcome(
            status,
            tuple(records),
            None,
            max(latency, hedge_completion),
            total_cost,
            error or h_error,
        )

    def _single(
        self, request: SourceRequest, policy: QueryPolicy
    ) -> _SingleResult:
        """One wire request → (status, latency_ms, cost, results, error)."""
        try:
            results, record = self.client.query_with_record(
                request.query_url, request.query, deadline_ms=policy.timeout_ms
            )
            return OutcomeStatus.OK, record.latency_ms, record.cost, results, None
        except (TransportError, ProtocolError) as exc:
            return self._classify_failure(exc, policy)

    async def _single_async(
        self, request: SourceRequest, policy: QueryPolicy
    ) -> _SingleResult:
        """One awaited wire request through the async source adapter.

        The outcome-deciding deadline is the *simulated* ``timeout_ms``
        (enforced deterministically by the transport); in realtime mode
        an ``asyncio.wait_for`` wall-clock guard additionally backstops
        a genuinely hung backend, with enough slack that scheduler
        jitter can never flip an outcome.
        """
        try:
            query_coro = self.adapter.query(
                request.query_url, request.query, deadline_ms=policy.timeout_ms
            )
            if self._realtime():
                results, record = await asyncio.wait_for(
                    query_coro,
                    timeout=policy.attempt_wall_budget_s(
                        self.client.internet.time_scale
                    ),
                )
            else:
                results, record = await query_coro
            return OutcomeStatus.OK, record.latency_ms, record.cost, results, None
        except (TransportError, ProtocolError) as exc:
            return self._classify_failure(exc, policy)
        except TimeoutError:
            return (
                OutcomeStatus.TIMEOUT,
                policy.timeout_ms or 0.0,
                0.0,
                None,
                "wall-clock attempt budget exceeded",
            )

    def _realtime(self) -> bool:
        internet = getattr(self.client, "internet", None)
        return bool(getattr(internet, "realtime", False))

    @staticmethod
    def _classify_failure(exc: Exception, policy: QueryPolicy) -> _SingleResult:
        record = getattr(exc, "record", None)
        if isinstance(exc, TransportTimeout):
            latency = record.latency_ms if record else (policy.timeout_ms or 0.0)
            cost = record.cost if record else 0.0
            return OutcomeStatus.TIMEOUT, latency, cost, None, str(exc)
        latency = record.latency_ms if record else 0.0
        cost = record.cost if record else 0.0
        return OutcomeStatus.ERROR, latency, cost, None, str(exc)

    def _count(self, source_id: str, number: int, attempt: _AttemptOutcome) -> None:
        self.tracer.count(
            source_id,
            requests=len(attempt.records),
            retries=1 if number > 1 else 0,
            failures=sum(
                1 for rec in attempt.records if rec.status is OutcomeStatus.ERROR
            ),
            timeouts=sum(
                1 for rec in attempt.records if rec.status is OutcomeStatus.TIMEOUT
            ),
            hedges=sum(1 for rec in attempt.records if rec.hedged),
            latency_ms=sum(rec.latency_ms for rec in attempt.records),
            cost=attempt.cost,
        )
        registry = get_registry()
        requests = registry.counter(
            "source_requests_total",
            "Wire requests per source and per-attempt outcome.",
            labels=("source_id", "outcome"),
        )
        latency = registry.histogram(
            "source_request_latency_ms",
            "Simulated wire latency of individual source requests.",
            labels=("source_id",),
        ).labels(source_id=source_id)
        hedges = 0
        for record in attempt.records:
            requests.labels(source_id=source_id, outcome=record.status.value).inc()
            latency.observe(record.latency_ms, exemplar=self.tracer.trace_id)
            hedges += 1 if record.hedged else 0
        if number > 1:
            registry.counter(
                "source_retries_total",
                "Retry attempts per source (first attempts excluded).",
                labels=("source_id",),
            ).labels(source_id=source_id).inc()
        if hedges:
            registry.counter(
                "source_hedges_total",
                "Hedged duplicate requests fired per source.",
                labels=("source_id",),
            ).labels(source_id=source_id).inc(hedges)
        if attempt.cost:
            registry.counter(
                "source_cost_total",
                "Accumulated monetary cost charged per source.",
                labels=("source_id",),
            ).labels(source_id=source_id).inc(attempt.cost)
