#!/usr/bin/env python3
"""Fail CI when dynamic pruning stops paying for itself.

Reads ``benchmarks/results/BENCH_engine_qps.json`` (written by
``benchmarks/test_bench_engine_qps.py``) and exits non-zero if the
pruned evaluator's QPS on the truncated workload fell below the
exhaustive term-at-a-time baseline, or if it stopped skipping postings
altogether.  Either symptom means the MaxScore driver has regressed
into pure overhead — rank safety makes that silent, so the guard has
to be explicit.

Usage::

    python scripts/check_pruned_regression.py [path/to/BENCH_engine_qps.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

DEFAULT_RESULTS = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "results"
    / "BENCH_engine_qps.json"
)


def check(payload: dict) -> list[str]:
    """Return a list of regression messages (empty means healthy)."""
    failures: list[str] = []
    workload = payload.get("pruned_workload")
    if not isinstance(workload, dict):
        return ["results file has no 'pruned_workload' section; "
                "re-run benchmarks/test_bench_engine_qps.py"]
    pruned_qps = workload.get("pruned_qps", 0.0)
    baseline_qps = workload.get("term_at_a_time_qps", 0.0)
    skipped = workload.get("postings_skipped", 0)
    if baseline_qps <= 0:
        failures.append(f"term-at-a-time baseline QPS is {baseline_qps}")
    if pruned_qps < baseline_qps:
        failures.append(
            f"pruned QPS regressed below exhaustive: "
            f"{pruned_qps} < {baseline_qps} "
            f"(speedup {payload.get('pruned_qps_speedup', '?')}x)"
        )
    if skipped <= 0:
        failures.append(
            "pruned evaluator skipped zero postings — the MaxScore "
            "driver is walking everything"
        )
    return failures


def main(argv: list[str]) -> int:
    path = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_RESULTS
    if not path.exists():
        print(f"check_pruned_regression: missing results file {path}")
        return 1
    payload = json.loads(path.read_text(encoding="utf-8"))
    failures = check(payload)
    if failures:
        print("check_pruned_regression: FAIL")
        for message in failures:
            print(f"  - {message}")
        return 1
    workload = payload["pruned_workload"]
    print(
        "check_pruned_regression: OK "
        f"(pruned {workload['pruned_qps']} qps vs "
        f"exhaustive {workload['term_at_a_time_qps']} qps, "
        f"{workload['postings_skipped']} postings skipped)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
