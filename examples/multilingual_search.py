"""Multilingual STARTS: l-strings, per-language stemming, summaries.

A bilingual (English/Spanish) source built on the MundoDocs vendor
shows the multi-language machinery of §4.1.1: language-qualified
l-strings, per-language stop lists and stemmers, and content-summary
sections grouped by (field, language) as in the paper's Example 11.

Run:  python examples/multilingual_search.py
"""

from repro import CollectionSpec, generate_collection
from repro.starts import SQuery, parse_expression
from repro.vendors import build_vendor_source


def main() -> None:
    documents = generate_collection(
        CollectionSpec(
            name="MundoDocs",
            topics={"databases": 0.6, "retrieval": 0.4},
            size=60,
            spanish_fraction=0.4,
            seed=9,
        )
    )
    source = build_vendor_source("MundoDocs", "Mundo-1", documents)
    print(f"Indexed {source.document_count} documents; languages:",
          source.metadata().source_languages)

    print("\n--- English query (implicit default language) ---")
    english = SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))'),
        max_number_documents=3,
    )
    for document in source.search(english).documents:
        print(f"  {document.raw_score:.4f} {document.linkage}")

    print('\n--- Spanish query with an explicit l-string: [es "datos"] ---')
    spanish = SQuery(
        ranking_expression=parse_expression('list((body-of-text [es "datos"]))'),
        max_number_documents=3,
    )
    for document in source.search(spanish).documents:
        print(f"  {document.raw_score:.4f} {document.linkage}")

    print('\n--- Spanish stem modifier: [es "consultas"] matches "consulta" ---')
    stemmed = SQuery(
        filter_expression=parse_expression('(body-of-text stem [es "consultas"])'),
        max_number_documents=5,
    )
    results = source.search(stemmed)
    print(f"  {len(results.documents)} documents matched the stemmed form")

    print("\n--- Content-summary sections, per (field, language) ---")
    summary = source.content_summary(max_words_per_section=4)
    for section in summary.sections:
        words = ", ".join(entry.word for entry in section.entries)
        print(f"  {section.field:<14} [{section.language:<5}] {words}")


if __name__ == "__main__":
    main()
