"""Fault-tolerant federation: partial results over a misbehaving world.

Four sources — two healthy, one dead, one that hangs — queried in
parallel under a per-source policy (500 ms deadline, two retries with
exponential backoff).  The search still returns merged results from the
survivors, and the trace shows exactly what every source cost.

Run:  python examples/fault_tolerant_federation.py
"""

from repro import (
    FaultProfile,
    HostProfile,
    Metasearcher,
    ParallelExecutor,
    QueryPolicy,
    Resource,
    SimulatedInternet,
    SQuery,
    StartsSource,
    parse_expression,
    publish_resource,
)
from repro.corpus import source1_documents, source2_documents
from repro.metasearch import SelectAll


def main() -> None:
    internet = SimulatedInternet(seed=42)
    resource = Resource(
        "Troubled",
        [
            StartsSource("Steady", source1_documents(), base_url="http://steady.org/s"),
            StartsSource("Sturdy", source2_documents(), base_url="http://sturdy.org/s"),
            StartsSource("Dead", source1_documents(), base_url="http://dead.org/s"),
            StartsSource("Tarpit", source2_documents(), base_url="http://tarpit.org/s"),
        ],
    )
    publish_resource(
        internet,
        resource,
        "http://troubled.org",
        source_profiles={
            "Steady": HostProfile(latency_ms=20.0, jitter_ms=0.0),
            "Sturdy": HostProfile(latency_ms=30.0, jitter_ms=0.0),
            "Dead": HostProfile(latency_ms=20.0, jitter_ms=0.0, cost_per_query=5.0),
            "Tarpit": HostProfile(latency_ms=25.0, jitter_ms=0.0),
        },
    )

    searcher = Metasearcher(
        internet,
        ["http://troubled.org/resource"],
        executor=ParallelExecutor(),
        query_policy=QueryPolicy(timeout_ms=500.0, max_retries=2, backoff_base_ms=10.0),
    )
    searcher.refresh()

    # The outage begins after discovery: one host drops every request,
    # another accepts connections but never answers.
    internet.set_fault_profile("dead.org", FaultProfile.dead())
    internet.set_fault_profile("tarpit.org", FaultProfile.hangs(hang_ms=60_000.0))

    query = SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
        max_number_documents=5,
    )
    result = searcher.search(query, k_sources=4, selector=SelectAll())

    print("Merged documents (survivors only):")
    for document in result.documents:
        print(f"  {document.score:8.4f}  [{document.source_id}]  {document.linkage}")

    print(f"\nOutcome counts: {result.outcome_counts()}")
    print(f"ok={result.ok_sources()} failed={result.failed_sources()}")

    print("\nWhat every source cost (explain_trace):")
    print(result.explain_trace())


if __name__ == "__main__":
    main()
