"""Quickstart: a four-vendor federation and one metasearch.

Run:  python examples/quickstart.py
"""

from repro import Metasearcher, SQuery, parse_expression, quick_federation


def main() -> None:
    # One call builds four topically distinct collections, indexes them
    # under four different vendor engines (different ranking algorithms,
    # score ranges, tokenizers) and publishes everything on a simulated
    # internet behind a single resource.
    internet, resource_url = quick_federation(seed=7)

    searcher = Metasearcher(internet, [resource_url])
    known = searcher.refresh()

    print("Discovered sources:")
    for source in known:
        print(
            f"  {source.source_id:<12} {source.num_docs:>3} docs  "
            f"algorithm={source.metadata.ranking_algorithm_id:<10} "
            f"score range={source.metadata.score_range}"
        )

    query = SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
        # Ask for the body too, so we can render snippets client-side.
        answer_fields=("title", "body-of-text"),
        max_number_documents=5,
    )
    result = searcher.search(query, k_sources=2)

    print(f"\nSelected sources: {', '.join(result.selected_sources)}")
    print("\nTop merged documents:")
    from repro.engine import make_snippet

    for document in result.documents:
        print(f"  {document.score:8.4f}  [{document.source_id}]  {document.linkage}")
        body = document.document.get("body-of-text")
        if body:
            snippet = make_snippet(body, ["distributed", "databases"], window=12)
            print(f"            {snippet.text}")

    print(
        f"\nNetwork: {internet.request_count()} requests, "
        f"{internet.total_latency_ms():.0f} ms simulated latency"
    )


if __name__ == "__main__":
    main()
