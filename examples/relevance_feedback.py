"""Relevance feedback with the Document-text field (§4.1.1).

A user liked one document; the metasearcher passes the document's text
to the sources as a ``Document-text`` term, and each source matches via
the document's most salient words — "documents that are similar to a
document that was found useful".

Run:  python examples/relevance_feedback.py
"""

from repro.corpus import source1_documents, source2_documents, ullman_dood_document
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression


def main() -> None:
    source1 = StartsSource("Source-1", source1_documents())
    source2 = StartsSource("Source-2", source2_documents())

    liked = ullman_dood_document()
    print(f'The user liked: "{liked.title}"')
    feedback_text = liked.body.replace('"', "")

    query = SQuery(
        ranking_expression=parse_expression(
            f'(document-text "{feedback_text}")'
        ),
        max_number_documents=3,
    )

    for source in (source1, source2):
        print(f"\nSimilar documents at {source.source_id}:")
        results = source.search(query)
        for document in results.documents:
            print(f"  {document.raw_score:.4f}  {document.linkage}")

    print(
        "\nThe liked document itself tops Source-1 (a sanity check), and "
        "Source-2's\nmost similar holding — the Lagunita database-research "
        "report — surfaces\nwithout the user typing a single query word."
    )


if __name__ == "__main__":
    main()
