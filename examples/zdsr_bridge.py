"""The ZDSR bridge: Z39.50 clients talking to a STARTS source.

Section 2 of the paper: "the Z39.50 community is designing a profile of
their Z39.50-1995 standard based on STARTS ... ZDSR".  This example
shows that bridge working: a PQF (type-101 prefix notation) query runs
against a STARTS source, the Explain-style record exposes the
capability attributes, and the actual query comes back as PQF.

Run:  python examples/zdsr_bridge.py
"""

from repro.corpus import source1_documents
from repro.source import StartsSource
from repro.starts import parse_expression
from repro.zdsr import ZdsrGateway, starts_to_pqf


def main() -> None:
    source = StartsSource("Source-1", source1_documents())
    gateway = ZdsrGateway(source)

    print("--- Explain record (what a ZDSR client auto-configures from) ---")
    record = gateway.explain()
    print(f"source:              {record.source_id}")
    print(f"use attributes:      {record.use_attributes}")
    print(f"relation attributes: {record.relation_attributes}")
    print(f"truncation:          {record.truncation_attributes}")
    print(f"ranked retrieval:    {record.supports_ranked_retrieval} "
          f"(range {record.score_range}, algorithm {record.ranking_algorithm_id})")

    print("\n--- STARTS expression -> PQF ---")
    starts_text = '((author "Ullman") and (title stem "databases"))'
    node = parse_expression(starts_text)
    pqf = starts_to_pqf(node)
    print(f"STARTS: {starts_text}")
    print(f"PQF:    {pqf}")

    print("\n--- Boolean PQF search ---")
    results = gateway.search_pqf(pqf)
    for document in results.documents:
        print(f"  {document.linkage}")
    print(f"actual query (PQF): {gateway.actual_pqf(results)}")

    print("\n--- Ranked PQF search (ZDSR's ranked-retrieval mode) ---")
    ranked = gateway.search_pqf(
        '@or @attr 1=1010 "distributed" @attr 1=1010 "databases"', ranked=True
    )
    for document in ranked.documents:
        print(f"  {document.raw_score:.4f}  {document.linkage}")


if __name__ == "__main__":
    main()
