"""Broker hierarchies: scaling source selection past a flat scan.

Reference [8] of the paper generalizes GlOSS to "broker hierarchies":
brokers summarize the summaries beneath them, and queries descend the
tree expanding only promising branches.  Aggregation is exact for the
statistics GlOSS uses, so nothing is lost — only work.

Run:  python examples/broker_hierarchy.py
"""

from repro import CollectionSpec, generate_collection
from repro.metasearch.brokers import BrokerNode, HierarchicalSelector
from repro.metasearch.selection import VGlossMax
from repro.source import StartsSource

TOPICS = {
    "cs": [("CS-DB", {"databases": 1.0}), ("CS-IR", {"retrieval": 1.0}),
           ("CS-Net", {"networking": 1.0})],
    "life": [("Med-1", {"medicine": 1.0}), ("Med-2", {"medicine": 1.0})],
    "misc": [("Law-1", {"law": 1.0}), ("Cook-1", {"cooking": 1.0}),
             ("Astro-1", {"astronomy": 1.0})],
}


def main() -> None:
    brokers = []
    total_sources = 0
    for broker_name, plans in TOPICS.items():
        leaves = []
        for index, (name, topics) in enumerate(plans):
            documents = generate_collection(
                CollectionSpec(name=name, topics=topics, size=40, seed=index)
            )
            source = StartsSource(name, documents)
            leaves.append(BrokerNode.leaf(name, source.content_summary()))
            total_sources += 1
        brokers.append(BrokerNode.broker(broker_name, leaves))
    root = BrokerNode.broker("root", brokers)

    print(f"{total_sources} sources under {len(brokers)} brokers\n")
    for terms in (["databases", "query"], ["patient", "diagnosis"],
                  ["galaxy"], ["recipe", "sauce"]):
        selector = HierarchicalSelector(root, VGlossMax())
        chosen = selector.select(terms, 2)
        print(
            f"query {str(terms):<28} -> {', '.join(chosen):<16} "
            f"({selector.summaries_scored} summaries scored vs "
            f"{total_sources} for a flat scan)"
        )

    print("\nBroker aggregate check: the 'cs' broker's summary counts are")
    cs = brokers[0]
    aggregate = cs.aggregate_summary()
    print(f"  NumDocs = {aggregate.num_docs} "
          f"(= {' + '.join(str(leaf.summary.num_docs) for leaf in cs.children)})")


if __name__ == "__main__":
    main()
