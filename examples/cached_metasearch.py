"""The caching subsystem: repeat queries off the wire, dead hosts held back.

The same three-source federation is queried twice with the default
`CachePolicy`: the first round pays the full wire cost, the repeat is
served from the query-result cache without a single request — visible
in `explain_trace()` as `result cache: hit` plus the cache counters.
Then one host dies: after the first failed round the negative cache
skips the dead source outright instead of re-probing it every search.

Run:  python examples/cached_metasearch.py
"""

from repro import (
    CachePolicy,
    FaultProfile,
    Metasearcher,
    Resource,
    SimulatedInternet,
    SQuery,
    StartsSource,
    parse_expression,
    publish_resource,
)
from repro.corpus import source1_documents, source2_documents


def main() -> None:
    internet = SimulatedInternet(seed=17)
    resource = Resource(
        "Cached",
        [
            StartsSource("Steady", source1_documents(), base_url="http://steady.org/s"),
            StartsSource("Sturdy", source2_documents(), base_url="http://sturdy.org/s"),
            StartsSource("Shaky", source1_documents(), base_url="http://shaky.org/s"),
        ],
    )
    publish_resource(internet, resource, "http://cached.org")

    # Caching is on by default; CachePolicy tunes or disables it.
    searcher = Metasearcher(
        internet,
        ["http://cached.org/resource"],
        cache_policy=CachePolicy(result_ttl_ms=300_000.0),
    )
    searcher.refresh()

    query = SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
        max_number_documents=5,
    )

    print("=== Cold search (pays the wire) ===")
    cold = searcher.search(query, k_sources=3)
    cold_requests = internet.request_count()
    print(f"documents={len(cold.documents)} wire requests so far: {cold_requests}")

    print("\n=== Warm repeat (served from cache) ===")
    warm = searcher.search(query, k_sources=3)
    print(f"cache_status={warm.cache_status!r}")
    print(f"new wire requests: {internet.request_count() - cold_requests}")
    print(warm.explain_trace())

    print("\n=== Negative caching of a dead host ===")
    internet.set_fault_profile("shaky.org", FaultProfile.dead())
    probe = SQuery(
        ranking_expression=parse_expression('list((body-of-text "networks"))')
    )
    first = searcher.search(probe, k_sources=3)
    print(f"first round after the outage: failed={first.failed_sources()}")

    retry = SQuery(
        ranking_expression=parse_expression('list((body-of-text "protocols"))')
    )
    second = searcher.search(retry, k_sources=3)
    outcome = second.outcomes["Shaky"]
    print(f"next round: skipped={second.skipped_sources()}")
    print(f"  reason: {outcome.skip_reason}")
    print(f"  sources the cache is holding back: {searcher.negative_cache.down_sources()}")

    stats = searcher.result_cache.stats
    print(
        f"\nresult cache: hits={stats.hits} misses={stats.misses} "
        f"hit_rate={stats.hit_rate():.2f} cost_saved={stats.cost_saved:.1f}"
    )


if __name__ == "__main__":
    main()
