"""A CS-TR-style federated technical-report library.

The paper's motivating deployment: NCSTRL-like technical-report
collections at several universities, indexed by different vendors, some
slow, some charging per query.  A metasearcher picks the best sources
per query with vGlOSS, falls back to cost-aware selection when budgets
matter, and merges with globally recomputed tf·idf.

Run:  python examples/federated_library.py
"""

from repro import CollectionSpec, generate_collection
from repro.metasearch import CostAware, Metasearcher, VGlossMax
from repro.resource import Resource
from repro.starts import SQuery, parse_expression
from repro.transport import HostProfile, SimulatedInternet, publish_resource
from repro.vendors import build_vendor_source

UNIVERSITIES = [
    ("Stanford-TR", "AcmeSearch", {"databases": 0.7, "retrieval": 0.3}, HostProfile()),
    ("Cornell-TR", "OkapiWorks", {"retrieval": 0.7, "networking": 0.3}, HostProfile()),
    ("MIT-TR", "InferNet", {"networking": 0.8, "databases": 0.2},
     HostProfile(latency_ms=350.0, jitter_ms=10.0)),  # slow campus link
    ("Dialog-Med", "ZeusFind", {"medicine": 1.0},
     HostProfile(cost_per_query=4.0)),  # for-pay service
]


def main() -> None:
    internet = SimulatedInternet(seed=2)
    resource = Resource("NCSTRL")
    costs = {}
    profiles = {}
    for index, (name, vendor, topics, profile) in enumerate(UNIVERSITIES):
        documents = generate_collection(
            CollectionSpec(name=name, topics=topics, size=80, seed=index)
        )
        resource.add_source(build_vendor_source(vendor, name, documents))
        profiles[name] = profile
        if profile.cost_per_query:
            costs[name] = profile.cost_per_query
    publish_resource(internet, resource, "http://ncstrl.example.org",
                     source_profiles=profiles)

    searcher = Metasearcher(internet, ["http://ncstrl.example.org/resource"])
    searcher.refresh()

    query = SQuery(
        filter_expression=parse_expression(
            '(date-last-modified > "1995-01-01")'
        ),
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "query") '
            '(body-of-text "optimization"))'
        ),
        max_number_documents=8,
    )

    print("--- vGlOSS selection (quality only) ---")
    result = searcher.search(query, k_sources=2)
    print("selected:", result.selected_sources)
    for document in result.documents[:5]:
        print(f"  {document.score:8.4f} [{document.source_id}] {document.linkage}")
    print(f"cost so far: {internet.total_cost():.2f}")

    print("\n--- cost-aware selection (same query, charging source demoted) ---")
    internet.reset_log()
    cost_selector = CostAware(VGlossMax(), costs=costs, tradeoff=1.0)
    result = searcher.search(query, k_sources=2, selector=cost_selector)
    print("selected:", result.selected_sources)
    print(f"cost of this query: {internet.total_cost():.2f}")

    print("\n--- per-source translation reports ---")
    for source_id, report in result.translation_reports.items():
        status = "lossless" if report.is_lossless() else f"dropped: {report.dropped}"
        print(f"  {source_id:<12} {status}")


if __name__ == "__main__":
    main()
