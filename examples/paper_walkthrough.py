"""Replay the paper's worked examples, printing the actual wire bytes.

Walks through the scenario of Sections 4.1–4.3 with the canned Source-1
and Source-2 collections: the Example 6 query, the Example 8 result
stream, the Example 9 re-ranking, the Example 10/11 metadata blobs and
the Example 12 resource definition.

Run:  python examples/paper_walkthrough.py
"""

from repro.corpus import source1_documents, source2_documents
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    source1 = StartsSource("Source-1", source1_documents())
    source2 = StartsSource("Source-2", source2_documents())
    resource = Resource("Stanford", [source1, source2])

    banner("Example 6: the query, SOIF-encoded")
    query = SQuery(
        filter_expression=parse_expression(
            '((author "Ullman") and (title stem "databases"))'
        ),
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
        min_document_score=0.0,
        max_number_documents=10,
        answer_fields=("title", "author"),
    )
    print(query.to_soif().dump())

    banner("Example 8: Source-1's result stream")
    results1 = source1.search(query)
    print(results1.to_soif_stream())

    banner("Example 9: Source-2's result and statistics-based re-ranking")
    ranking_only = SQuery(ranking_expression=query.ranking_expression)
    results2 = source2.search(ranking_only)
    print(results2.to_soif_stream())

    pool = list(results1.documents) + list(results2.documents)

    def total_tf(document):
        return sum(stats.term_frequency for stats in document.term_stats)

    print("Re-ranked by total term frequency (Example 9's scheme):")
    for document in sorted(pool, key=total_tf, reverse=True):
        print(
            f"  tf={total_tf(document):>3} raw={document.raw_score:.4f} "
            f"[{document.sources[0]}] {document.linkage}"
        )

    banner("Example 10: Source-1's metadata attributes")
    print(source1.metadata().to_soif().dump())

    banner("Example 11: content summary (truncated to 8 words/section)")
    print(source1.content_summary(max_words_per_section=8).to_soif().dump())

    banner("Example 12: the resource definition")
    print(resource.describe().to_soif().dump())


if __name__ == "__main__":
    main()
