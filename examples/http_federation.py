"""STARTS over real HTTP: sources on localhost sockets.

Everything else in the examples runs over the simulated internet; this
one starts an actual HTTP server (stdlib, threading) serving two STARTS
sources, then runs the whole metasearch pipeline against it with
measured wall-clock latencies.

Run:  python examples/http_federation.py
"""

from repro.corpus import source1_documents, source2_documents
from repro.metasearch import Metasearcher
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import HttpTransport, StartsHttpServer


def main() -> None:
    resource = Resource(
        "Stanford",
        [
            StartsSource("Source-1", source1_documents()),
            StartsSource("Source-2", source2_documents()),
        ],
    )
    with StartsHttpServer(resource) as server:
        print(f"serving STARTS at {server.base_url}")
        print(f"  resource blob: {server.resource_url()}")
        print(f"  query Source-1: {server.source_query_url('Source-1')}\n")

        transport = HttpTransport()
        searcher = Metasearcher(transport, [server.resource_url()])
        for known in searcher.refresh():
            print(
                f"harvested {known.source_id}: {known.num_docs} docs, "
                f"algorithm {known.metadata.ranking_algorithm_id}"
            )

        query = SQuery(
            ranking_expression=parse_expression(
                'list((body-of-text "distributed") (body-of-text "databases"))'
            ),
            max_number_documents=5,
        )
        result = searcher.search(query, k_sources=2)
        print(f"\nselected: {', '.join(result.selected_sources)}")
        for document in result.documents:
            print(f"  {document.score:8.4f}  [{document.source_id}]  {document.linkage}")
        print(
            f"\n{transport.request_count()} HTTP requests, "
            f"{transport.total_latency_ms():.1f} ms total wall latency "
            f"({result.query_latency_parallel_ms:.1f} ms parallel query round)"
        )


if __name__ == "__main__":
    main()
