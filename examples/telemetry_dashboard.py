"""Telemetry dashboard: a live federation seen through /metrics.

A Zipf-skewed query replay runs against a three-vendor federation where
one source turns flaky mid-flight.  The process-wide metrics registry
records every layer — wire requests, cache tiers, engine evaluation,
pipeline phases — and the health scorer folds the flaky source's track
record into a score that hedges it, deprioritizes it, and extends its
negative-cache hold.  At the end the script scrapes its own published
``/metrics`` endpoint and prints the per-source health table: the
dashboard a metasearch operator would actually watch.

Run:  python examples/telemetry_dashboard.py
"""

from repro import (
    CollectionSpec,
    FaultProfile,
    Metasearcher,
    Resource,
    SimulatedInternet,
    generate_collection,
    publish_resource,
)
from repro.cache import CachePolicy
from repro.corpus import build_workload, zipf_replay
from repro.observability import (
    MetricsRegistry,
    SourceHealth,
    get_registry,
    set_registry,
)
from repro.transport import StartsClient, publish_metrics
from repro.vendors import build_vendor_source

FLAKY = "Dash-Db"

INTERESTING = (
    "source_requests_total",
    "source_hedges_total",
    "source_health_score",
    "negative_cache_ttl_ms",
    "cache_reads_total",
    "metasearch_searches_total",
)


def build_federation():
    internet = SimulatedInternet(seed=9)
    resource = Resource("Dashboard")
    collections = {}
    plans = [
        (FLAKY, "AcmeSearch", {"databases": 1.0}),
        ("Dash-Net", "OkapiWorks", {"networking": 1.0}),
        ("Dash-Med", "InferNet", {"medicine": 1.0}),
    ]
    for index, (source_id, vendor, topics) in enumerate(plans):
        documents = generate_collection(
            CollectionSpec(name=source_id, topics=topics, size=40, seed=300 + index)
        )
        collections[source_id] = documents
        resource.add_source(build_vendor_source(vendor, source_id, documents))
    publish_resource(internet, resource, "http://dash.example.org")
    return internet, "http://dash.example.org/resource", collections


def main() -> None:
    previous = set_registry(MetricsRegistry())
    try:
        internet, resource_url, collections = build_federation()
        metrics_url = publish_metrics(internet, "http://metrics.example.org")

        health = SourceHealth()
        searcher = Metasearcher(
            internet,
            [resource_url],
            health=health,
            cache_policy=CachePolicy(negative_failure_threshold=3),
        )
        searcher.refresh()

        # The trouble starts after discovery: one source begins dropping
        # every request.
        flaky_host = searcher.discovery.source(FLAKY).query_url.split("//")[-1]
        flaky_host = flaky_host.split("/")[0]
        internet.set_fault_profile(flaky_host, FaultProfile(failure_rate=1.0))

        workload = build_workload(collections, n_queries=12, seed=4)
        replay = zipf_replay(workload.queries, n_requests=40, skew=1.1, seed=5)
        print(f"replaying {len(replay)} requests over "
              f"{len(workload.queries)} distinct queries "
              f"(zipf skew=1.1, {FLAKY} dropping every request)\n")
        for query in replay:
            searcher.search(query.to_squery(max_documents=5), k_sources=3)

        print("per-source health (SourceHealth.snapshot):")
        print(f"  {'source':<10} {'score':>6} {'samples':>8} "
              f"{'err%':>6} {'tmo%':>6} {'ewma ms':>8}")
        for source_id, snap in health.snapshot().items():
            flag = "  <- unhealthy" if health.is_unhealthy(source_id) else ""
            print(f"  {source_id:<10} {snap.score:6.2f} {snap.samples:8d} "
                  f"{snap.error_rate * 100:6.1f} {snap.timeout_rate * 100:6.1f} "
                  f"{snap.latency_ewma_ms:8.1f}{flag}")

        text = StartsClient(internet).fetch_metrics(metrics_url)
        print(f"\nscraped {metrics_url}: "
              f"{len(text.splitlines())} lines; the interesting ones:")
        for line in text.splitlines():
            if line.startswith(INTERESTING) and not line.startswith("#"):
                print(f"  {line}")
    finally:
        set_registry(previous)
    assert get_registry() is previous


if __name__ == "__main__":
    main()
