"""Telemetry dashboard: a live federation seen through /metrics.

A Zipf-skewed query replay runs against a three-vendor federation where
one source turns flaky mid-flight.  The process-wide metrics registry
records every layer — wire requests, cache tiers, engine evaluation,
pipeline phases — and the health scorer folds the flaky source's track
record into a score that hedges it, deprioritizes it, and extends its
negative-cache hold.  An :class:`SloMonitor` snapshots the same
registry after every replay round and turns the raw counters into the
numbers an on-call reads first: per-objective compliance and how much
error budget is left.  Finally a broker hierarchy published over the
same simulated internet serves one traced source selection, and the
server-side span fragments are stitched back under the client's trace
id — the single cross-process tree an operator would pull up to
explain a slow consultation.  At the end the script scrapes its own
published ``/metrics`` endpoint and prints the per-source health
table: the dashboard a metasearch operator would actually watch.

Run:  python examples/telemetry_dashboard.py
"""

from repro import (
    CollectionSpec,
    FaultProfile,
    Metasearcher,
    Resource,
    SimulatedInternet,
    generate_collection,
    publish_resource,
)
from repro.broker import LeafBroker, NetworkLeafHandle, RootBroker
from repro.cache import CachePolicy
from repro.corpus import build_workload, zipf_replay
from repro.metasearch.selection import Cori
from repro.observability import (
    MetricsRegistry,
    SloMonitor,
    SourceHealth,
    TraceCollector,
    Tracer,
    get_registry,
    set_registry,
    stitch_traces,
)
from repro.transport import StartsClient, publish_broker_leaf, publish_metrics
from repro.vendors import build_vendor_source

FLAKY = "Dash-Db"

INTERESTING = (
    "source_requests_total",
    "source_hedges_total",
    "source_health_score",
    "negative_cache_ttl_ms",
    "cache_reads_total",
    "metasearch_searches_total",
    "slo_error_budget_remaining",
)


def build_federation():
    internet = SimulatedInternet(seed=9)
    resource = Resource("Dashboard")
    collections = {}
    plans = [
        (FLAKY, "AcmeSearch", {"databases": 1.0}),
        ("Dash-Net", "OkapiWorks", {"networking": 1.0}),
        ("Dash-Med", "InferNet", {"medicine": 1.0}),
    ]
    for index, (source_id, vendor, topics) in enumerate(plans):
        documents = generate_collection(
            CollectionSpec(name=source_id, topics=topics, size=40, seed=300 + index)
        )
        collections[source_id] = documents
        resource.add_source(build_vendor_source(vendor, source_id, documents))
    publish_resource(internet, resource, "http://dash.example.org")
    return internet, "http://dash.example.org/resource", collections


def print_stitched_trace(internet, summaries):
    """One traced consultation of a network broker root, stitched."""
    collector = TraceCollector()
    handles = []
    for index in range(2):
        leaf = LeafBroker(f"dash-leaf-{index}")
        base = f"http://broker-{index}.example.org/broker"
        publish_broker_leaf(internet, leaf, base, trace_sink=collector)
        handles.append(NetworkLeafHandle(internet, base, leaf.leaf_id))
    root = RootBroker(handles)
    for source_id in sorted(summaries):
        root.apply_delta(source_id, summaries[source_id])

    tracer = Tracer()
    chosen = root.select(Cori(), ["databases", "medicine"], 2, tracer=tracer)
    rows = [
        row
        for row in stitch_traces(tracer.trace(), collector.traces())
        if row["kind"] == "span"
    ]
    print(f"\nstitched cross-process trace {tracer.trace_id} "
          f"(selected {', '.join(chosen)}):")
    children = {}
    for row in rows:
        children.setdefault(row["parent_id"], []).append(row)
    known = {row["span_id"] for row in rows}

    def show(row, depth):
        where = "leaf server" if row["name"].startswith("leaf:") else "client"
        print(f"  {'  ' * depth}{row['name']:<{30 - 2 * depth}} "
              f"{row['duration_ms']:7.2f} ms  [{where}]")
        for child in children.get(row["span_id"], []):
            show(child, depth + 1)

    for row in rows:
        if row["parent_id"] is None or row["parent_id"] not in known:
            show(row, 0)


def main() -> None:
    previous = set_registry(MetricsRegistry())
    try:
        internet, resource_url, collections = build_federation()
        metrics_url = publish_metrics(internet, "http://metrics.example.org")

        health = SourceHealth()
        searcher = Metasearcher(
            internet,
            [resource_url],
            health=health,
            cache_policy=CachePolicy(negative_failure_threshold=3),
        )
        searcher.refresh()

        # The trouble starts after discovery: one source begins dropping
        # every request.
        flaky_host = searcher.discovery.source(FLAKY).query_url.split("//")[-1]
        flaky_host = flaky_host.split("/")[0]
        internet.set_fault_profile(flaky_host, FaultProfile(failure_rate=1.0))

        workload = build_workload(collections, n_queries=12, seed=4)
        replay = zipf_replay(workload.queries, n_requests=40, skew=1.1, seed=5)
        print(f"replaying {len(replay)} requests over "
              f"{len(workload.queries)} distinct queries "
              f"(zipf skew=1.1, {FLAKY} dropping every request)\n")
        monitor = SloMonitor()
        monitor.snapshot()
        for query in replay:
            searcher.search(query.to_squery(max_documents=5), k_sources=3)
            monitor.snapshot()
        monitor.export_gauges()

        print("per-source health (SourceHealth.snapshot):")
        print(f"  {'source':<10} {'score':>6} {'samples':>8} "
              f"{'err%':>6} {'tmo%':>6} {'ewma ms':>8}")
        for source_id, snap in health.snapshot().items():
            flag = "  <- unhealthy" if health.is_unhealthy(source_id) else ""
            print(f"  {source_id:<10} {snap.score:6.2f} {snap.samples:8d} "
                  f"{snap.error_rate * 100:6.1f} {snap.timeout_rate * 100:6.1f} "
                  f"{snap.latency_ewma_ms:8.1f}{flag}")

        print("\nerror budgets (SloMonitor.describe):")
        for line in monitor.describe().splitlines():
            print(f"  {line}")

        print_stitched_trace(internet, searcher.discovery.summaries())

        text = StartsClient(internet).fetch_metrics(metrics_url)
        print(f"\nscraped {metrics_url}: "
              f"{len(text.splitlines())} lines; the interesting ones:")
        for line in text.splitlines():
            if line.startswith(INTERESTING) and not line.startswith("#"):
                print(f"  {line}")
    finally:
        set_registry(previous)
    assert get_registry() is previous


if __name__ == "__main__":
    main()
