"""The "The Who" scenario: stop words and where a query can succeed.

Section 3.1 of the paper: a user wants documents about the rock group
"The Who" — every query word is an English stop word.  A metasearcher
that knows each source's ``TurnOffStopWords`` metadata routes the query
only to sources that can disable stop-word elimination, instead of
getting silent empty results everywhere.

Run:  python examples/the_who_stop_words.py
"""

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.metasearch.translation import ClientTranslator
from repro.starts import SQuery, parse_expression
from repro.vendors import build_vendor_source

ROCK_DOCS = [
    Document(
        "http://rock.example.org/who.html",
        {
            F.TITLE: "The Who: Live at Leeds",
            F.BODY_OF_TEXT: "The Who performed their landmark concert at Leeds.",
        },
    ),
    Document(
        "http://rock.example.org/stones.html",
        {
            F.TITLE: "The Rolling Stones",
            F.BODY_OF_TEXT: "The Rolling Stones toured stadiums worldwide.",
        },
    ),
]


def main() -> None:
    # AcmeSearch can turn stop words off; ZeusFind cannot.
    sources = [
        build_vendor_source("AcmeSearch", "Rock-Acme", ROCK_DOCS),
        build_vendor_source("ZeusFind", "Rock-Zeus", ROCK_DOCS),
    ]

    query = SQuery(
        filter_expression=parse_expression(
            '((body-of-text "The") and (body-of-text "Who"))'
        ),
        drop_stop_words=False,  # the user insists on the literal words
    )

    translator = ClientTranslator()
    print('Query: (body-of-text "The") and (body-of-text "Who"), '
          "DropStopWords=F\n")
    for source in sources:
        metadata = source.metadata()
        translated, report = translator.translate(query, metadata)
        routable = translator.worth_querying(query, metadata)
        print(f"{source.source_id}:")
        print(f"  TurnOffStopWords = {'T' if metadata.turn_off_stop_words else 'F'}")
        print(f"  stop words preserved client-side? {report.stop_words_preserved}")
        print(f"  worth querying? {routable}")
        results = source.search(query)
        print(f"  documents returned: {len(results.documents)}")
        for document in results.documents:
            print(f"    {document.linkage}")
        print()

    print(
        "A STARTS metasearcher therefore sends this query only to "
        "Rock-Acme\nand spares Rock-Zeus a round trip that could only "
        "return nothing."
    )


if __name__ == "__main__":
    main()
