"""Cache benchmark: a Zipf-skewed replay, cold vs. warm, hit rate and latency.

Real metasearch traffic repeats itself — a few head queries dominate.
This benchmark replays a Zipf-skewed request stream twice over the same
realtime federation: once through an uncached searcher (every request
pays the wire) and once through a cache-enabled one (repeats are served
from the result cache).  Per-request wall-clock p50/p95 and the
measured hit rate land in ``BENCH_cache_hit_rate.json``.

Acceptance: the warm p50 must be at least 5× better than the cold p50,
and the hit rate must clear 0.5 — a Zipf(1.2) stream of 60 requests
over 12 distinct queries repeats often enough for both.
"""

import json
import pathlib
import time

from repro.cache import CachePolicy
from repro.corpus import zipf_replay
from repro.experiments import FederationSpec, build_federation
from repro.metasearch import Metasearcher

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_REQUESTS = 60
ZIPF_SKEW = 1.2
K_SOURCES = 3


def _percentile(samples: list[float], quantile: float) -> float:
    ordered = sorted(samples)
    index = round(quantile * (len(ordered) - 1))
    return ordered[index]


def _replay(searcher: Metasearcher, requests) -> list[float]:
    """Per-request wall-clock milliseconds over the whole stream."""
    walls = []
    for generated in requests:
        started = time.perf_counter()
        searcher.search(generated.to_squery(max_documents=10), k_sources=K_SOURCES)
        walls.append((time.perf_counter() - started) * 1000.0)
    return walls


def test_bench_cache_hit_rate(write_table):
    spec = FederationSpec(
        n_sources=8,
        docs_per_source=30,
        n_queries=12,
        seed=4,
        slow_source_index=None,
        charging_source_index=None,
    )
    world = build_federation(spec)
    requests = zipf_replay(
        world.workload.queries, n_requests=N_REQUESTS, skew=ZIPF_SKEW, seed=9
    )

    cold = Metasearcher(
        world.internet, [world.resource_url], cache_policy=CachePolicy.disabled()
    )
    warm = Metasearcher(world.internet, [world.resource_url])
    # Harvest with instantaneous simulated time; only the query rounds
    # should show up on the wall clock.
    cold.refresh()
    warm.refresh()

    world.internet.realtime = True
    world.internet.time_scale = 0.25
    try:
        cold_walls = _replay(cold, requests)
        warm_walls = _replay(warm, requests)
    finally:
        world.internet.realtime = False
        world.internet.time_scale = 1.0

    stats = warm.result_cache.stats
    hit_rate = stats.hit_rate()
    payload = {
        "benchmark": "cache_hit_rate",
        "n_requests": N_REQUESTS,
        "distinct_queries": len(world.workload.queries),
        "zipf_skew": ZIPF_SKEW,
        "k_sources": K_SOURCES,
        "hit_rate": round(hit_rate, 4),
        "hits": stats.hits,
        "stale_hits": stats.stale_hits,
        "misses": stats.misses,
        "cost_saved": round(stats.cost_saved, 4),
        "cold_p50_ms": round(_percentile(cold_walls, 0.50), 3),
        "cold_p95_ms": round(_percentile(cold_walls, 0.95), 3),
        "warm_p50_ms": round(_percentile(warm_walls, 0.50), 3),
        "warm_p95_ms": round(_percentile(warm_walls, 0.95), 3),
    }
    payload["p50_speedup"] = round(
        payload["cold_p50_ms"] / max(payload["warm_p50_ms"], 1e-9), 1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_cache_hit_rate.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    write_table(
        "CACHE_hit_rate",
        [
            f"Zipf({ZIPF_SKEW}) replay: {N_REQUESTS} requests over "
            f"{payload['distinct_queries']} distinct queries, realtime wire",
            "",
            f"uncached  p50={payload['cold_p50_ms']:.1f}ms "
            f"p95={payload['cold_p95_ms']:.1f}ms",
            f"cached    p50={payload['warm_p50_ms']:.1f}ms "
            f"p95={payload['warm_p95_ms']:.1f}ms "
            f"(p50 speedup {payload['p50_speedup']:.0f}x)",
            f"hit rate  {payload['hit_rate']:.2f} "
            f"({payload['hits']} hits / {payload['misses']} misses)",
        ],
    )

    # The acceptance bar: a warm cache beats the wire by 5x at the
    # median, and a skewed stream keeps the hit rate above one-half.
    assert payload["warm_p50_ms"] * 5 <= payload["cold_p50_ms"]
    assert hit_rate >= 0.5
    assert stats.misses == len({
        tuple(generated.terms) for generated in requests
    })
