"""Shared fixtures for the benchmark harness.

Every benchmark runs over the same session-scoped federation (6
heterogeneous vendor sources, 50 docs each, 30 oracle queries) so the
numbers in one run are mutually comparable.  Experiment tables are both
printed and written under ``benchmarks/results/`` so a
``pytest benchmarks/ --benchmark-only`` run leaves artifacts behind.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import FederationSpec, build_federation

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def federation():
    return build_federation(
        FederationSpec(n_sources=6, docs_per_source=50, n_queries=30, seed=1)
    )


@pytest.fixture(scope="session")
def write_table():
    """Write an experiment table to benchmarks/results/<name>.txt."""

    def _write(name: str, lines: list[str]) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n== {name} ==")
        print(text)

    return _write
