"""E4 — content-summary size vs. collection size.

Reproduces §4.3.2's size claim: summaries are dramatically smaller than
the collections they describe, and the gap widens as collections grow
(vocabulary saturates while text keeps growing).  The benchmark times
summary extraction for one source.
"""

from repro.experiments import run_summary_size_experiment


def test_bench_summary_sizes(benchmark, federation, write_table):
    rows = run_summary_size_experiment(sizes=(25, 50, 100, 200))

    lines = ["E4: collection vs content-summary size (SOIF bytes)", ""]
    lines.extend(row.row() for row in rows)
    write_table("E4_summary_size", lines)

    # Shape: summaries always much smaller, ratio grows with N.
    for row in rows:
        assert row.full_ratio > 3.0
        assert row.truncated_ratio > row.full_ratio
    ratios = [row.full_ratio for row in rows]
    assert ratios == sorted(ratios), "compression should improve with size"

    source = federation.sources["Exp-00"]
    benchmark(lambda: source.content_summary())
