"""E1 — source selection: selectors vs. baselines on recall-at-k.

Reproduces the GlOSS claim (refs [7, 8], §4.3.2): content-summary-based
selectors find most relevant documents in a handful of sources, far
ahead of size/random baselines.  The benchmark times one vGlOSS ranking
pass over all summaries.
"""

from repro.experiments import run_selection_experiment
from repro.metasearch.selection import VGlossMax


def test_bench_selection_recall(benchmark, federation, write_table):
    results = run_selection_experiment(federation)

    lines = ["E1: mean selection recall at k sources (30 queries)", ""]
    lines.extend(row.row() for row in results)
    write_table("E1_source_selection", lines)

    by_name = {row.selector: row for row in results}
    # The headline shape: every summary-based selector beats both
    # baselines at k=1 and k=2.
    for informed in ("bGlOSS", "vGlOSS-Sum", "vGlOSS-Max", "CORI"):
        for baseline in ("by-size", "random"):
            for k in (1, 2):
                assert (
                    by_name[informed].recall_at_k[k]
                    > by_name[baseline].recall_at_k[k]
                ), f"{informed} should beat {baseline} at k={k}"

    summaries = {
        source_id: source.content_summary()
        for source_id, source in federation.sources.items()
    }
    query = federation.workload.queries[0]
    selector = VGlossMax()
    benchmark(lambda: selector.rank(list(query.terms), summaries))
