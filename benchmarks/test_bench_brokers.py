"""A2 — broker hierarchies (ref [8]): selection cost vs. quality.

A two-level broker tree over the federation must select nearly the same
sources as a flat scan while scoring fewer summaries per query — the
scalability argument of "Generalizing GlOSS ... and broker hierarchies".
"""

from repro.experiments.metrics import mean, rank_recall_at_k
from repro.metasearch.brokers import BrokerNode, HierarchicalSelector
from repro.metasearch.selection import VGlossMax


def _build_tree(federation, fanout=3):
    leaves = [
        BrokerNode.leaf(source_id, source.content_summary())
        for source_id, source in sorted(federation.sources.items())
    ]
    brokers = [
        BrokerNode.broker(f"broker-{i}", leaves[i : i + fanout])
        for i in range(0, len(leaves), fanout)
    ]
    return BrokerNode.broker("root", brokers)


def _synthetic_tree(n_leaves, fanout):
    """Topical leaf summaries: leaf i is rich in word ``topic<i%8>``."""
    from repro.starts.metadata import (
        SContentSummary,
        SummaryEntryLine,
        SummarySection,
    )

    leaves = []
    for index in range(n_leaves):
        word = f"topic{index % 8}"
        entries = (
            SummaryEntryLine(word, 200 + index, 50),
            SummaryEntryLine("common", 20, 10),
        )
        leaves.append(
            BrokerNode.leaf(
                f"leaf-{index:02d}",
                SContentSummary(
                    num_docs=60,
                    sections=(SummarySection("body-of-text", "en", entries),),
                ),
            )
        )
    level = leaves
    while len(level) > 1:
        level = [
            BrokerNode.broker(f"b{len(level)}-{i}", level[i : i + fanout])
            for i in range(0, len(level), fanout)
        ]
    return level[0], leaves


def _scalability_rows():
    rows = []
    for n_leaves in (8, 16, 32):
        root, leaves = _synthetic_tree(n_leaves, fanout=4)
        selector = HierarchicalSelector(root, VGlossMax())
        selected = selector.select(["topic3"], 2)
        assert selected and selected[0].startswith("leaf-")
        rows.append(
            f"  n={n_leaves:<3} flat scores {n_leaves} summaries, "
            f"tree scores {selector.summaries_scored}"
        )
    return rows


def test_bench_broker_hierarchy(benchmark, federation, write_table):
    root = _build_tree(federation)
    flat = VGlossMax()
    summaries = {
        source_id: source.content_summary()
        for source_id, source in federation.sources.items()
    }

    flat_recalls, tree_recalls, scored_counts = [], [], []
    k = 2
    for query in federation.workload.queries:
        flat_rank = [s for s, _ in flat.rank(list(query.terms), summaries)]
        tree_selector = HierarchicalSelector(root, VGlossMax())
        tree_rank = tree_selector.select(list(query.terms), k)
        flat_recalls.append(rank_recall_at_k(flat_rank, query.relevant_by_source, k))
        tree_recalls.append(rank_recall_at_k(tree_rank, query.relevant_by_source, k))
        scored_counts.append(tree_selector.summaries_scored)

    lines = [
        "A2: flat vs hierarchical source selection (vGlOSS-Max, k=2)",
        "",
        f"flat scan:   R@2={mean(flat_recalls):.3f}  "
        f"summaries scored/query={len(summaries)}",
        f"broker tree: R@2={mean(tree_recalls):.3f}  "
        f"summaries scored/query={mean(scored_counts):.1f}",
        "",
        "scalability (synthetic topical leaves, k=2):",
    ]
    lines.extend(_scalability_rows())
    write_table("A2_broker_hierarchy", lines)

    # Shape: near-equal recall; the hierarchy was built from exact
    # aggregate summaries, so descent must not be much worse.
    assert mean(tree_recalls) >= mean(flat_recalls) - 0.1

    query = federation.workload.queries[0]
    benchmark(
        lambda: HierarchicalSelector(root, VGlossMax()).select(list(query.terms), k)
    )
