"""E6 — black-box calibration when sources withhold TermStats.

Reproduces §4.2's final paragraph: for engines that cannot return
per-term statistics, the SampleDatabaseResults metadata lets a
metasearcher calibrate scores anyway.  With TermStats gone, the
statistics-hungry strategies collapse to nothing, and calibration must
carry the load.  The benchmark times one calibrated merge.
"""

from repro.experiments import run_merging_experiment
from repro.metasearch.merging import (
    CalibratedMerge,
    MergeContext,
    NormalizedScoreMerge,
    RawScoreMerge,
    RoundRobinMerge,
)


def test_bench_calibration(benchmark, federation, write_table):
    strategies = [
        RawScoreMerge(),
        NormalizedScoreMerge(),
        RoundRobinMerge(),
        CalibratedMerge(),
    ]
    results = run_merging_experiment(
        federation, strategies=strategies, n_queries=20, withhold_term_stats=True
    )

    lines = [
        "E6: merging WITHOUT TermStats (sources lost their statistics)",
        "",
    ]
    lines.extend(row.row() for row in results)
    write_table("E6_calibration", lines)

    by_name = {row.strategy: row for row in results}
    # Calibration must improve on raw scores when stats are unavailable.
    assert (
        by_name["sample-calibrated"].spearman_vs_reference
        >= by_name["raw-score"].spearman_vs_reference
    )

    query = federation.workload.queries[0]
    squery = query.to_squery(max_documents=20)
    per_source = {
        source_id: source.search(squery)
        for source_id, source in federation.sources.items()
    }
    per_source = {k: v for k, v in per_source.items() if v.documents}
    context = MergeContext(
        metadata={s: src.metadata() for s, src in federation.sources.items()},
        samples={s: src.sample_results() for s, src in federation.sources.items()},
        query_terms=query.terms,
    )
    merger = CalibratedMerge()
    benchmark(lambda: merger.merge(per_source, context))
