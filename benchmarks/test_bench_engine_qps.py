"""Engine QPS benchmark: exhaustive evaluation modes vs. dynamic pruning.

A single-source ranking workload over a generated collection, timed on
all three evaluation paths (``engine.evaluation``) and both with and
without engine-side top-k truncation.  Queries-per-second and per-query
p50 wall-clock land in ``BENCH_engine_qps.json``.

Acceptance, two bars:

* the term-at-a-time path must clear 5x the document-at-a-time
  oracle's QPS on the full (untruncated) workload;
* the pruned path must clear 2x term-at-a-time QPS on the truncated
  (top-k <= 10) score-sorted workload, with the skipped-postings
  fraction reported alongside.

All paths must also agree hit for hit — speed means nothing if the
answers drift.
"""

import json
import pathlib
import random
import time

from repro.corpus import CollectionSpec, generate_collection
from repro.engine import fields as F
from repro.engine.evaluation import DOCUMENT_AT_A_TIME, PRUNED, TERM_AT_A_TIME
from repro.engine.query import ListQuery, TermQuery
from repro.engine.search import SearchEngine
from repro.observability.metrics import MetricsRegistry, get_registry, set_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_DOCS = 800
N_QUERIES = 24
TOP_K = 20

#: The pruned-vs-exhaustive comparison runs on a larger corpus with
#: longer ranking lists — the regime dynamic pruning exists for (the
#: fixed per-query overhead of the MaxScore driver washes out as the
#: posting lists it skips grow).
PRUNED_N_DOCS = 2000
PRUNED_TOP_K = 10
PRUNED_TERMS = (4, 6)


def _percentile(samples: list[float], quantile: float) -> float:
    ordered = sorted(samples)
    index = round(quantile * (len(ordered) - 1))
    return ordered[index]


def _build_engine(n_docs: int = N_DOCS) -> SearchEngine:
    spec = CollectionSpec(
        name="bench-qps",
        topics={"databases": 0.6, "retrieval": 0.4},
        size=n_docs,
        seed=17,
    )
    engine = SearchEngine()
    for document in generate_collection(spec):
        engine.add(document)
    return engine


def _build_queries(
    engine: SearchEngine, term_range: tuple[int, int] = (2, 4)
) -> list[ListQuery]:
    """Ranking lists of body terms drawn from the real vocabulary.

    Sampling from the index (rather than the topic pools) guarantees
    every query touches non-empty posting lists, which is the case the
    rewrite has to win on.
    """
    rng = random.Random(23)
    vocabulary = engine.index.vocabulary(F.BODY_OF_TEXT)
    queries = []
    for _ in range(N_QUERIES):
        terms = tuple(
            TermQuery(F.BODY_OF_TEXT, text, weight=rng.choice((1.0, 0.8, 0.5)))
            for text in rng.sample(vocabulary, rng.randint(*term_range))
        )
        queries.append(ListQuery(terms))
    return queries


def _run(engine: SearchEngine, queries, mode: str, top_k, repeats: int = 1):
    """(qps, p50_ms, hits per query) for one configuration.

    With ``repeats > 1``, the fastest batch is reported (the standard
    best-of-N guard against scheduler noise on comparison bars).
    """
    engine.evaluation = mode
    best_elapsed = None
    best_walls = None
    results = None
    for _ in range(repeats):
        walls = []
        batch = []
        started_batch = time.perf_counter()
        for query in queries:
            started = time.perf_counter()
            batch.append(engine.search(ranking_query=query, top_k=top_k))
            walls.append((time.perf_counter() - started) * 1000.0)
        elapsed = time.perf_counter() - started_batch
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
            best_walls = walls
            results = batch
    engine.evaluation = TERM_AT_A_TIME
    return len(queries) / best_elapsed, _percentile(best_walls, 0.50), results


def test_bench_engine_qps(write_table):
    engine = _build_engine()
    queries = _build_queries(engine)

    taat_qps, taat_p50, taat_hits = _run(engine, queries, TERM_AT_A_TIME, None)
    daat_qps, daat_p50, daat_hits = _run(engine, queries, DOCUMENT_AT_A_TIME, None)
    taat_k_qps, taat_k_p50, _ = _run(engine, queries, TERM_AT_A_TIME, TOP_K)
    daat_k_qps, daat_k_p50, _ = _run(engine, queries, DOCUMENT_AT_A_TIME, TOP_K)

    # Equivalence first: the oracle and the rewrite return identical
    # hits (ids, exact scores, exact TermStats) on the whole workload.
    assert taat_hits == daat_hits

    # The pruned comparison: truncated (top-k <= 10) score-sorted
    # queries, where MaxScore/block-max skipping earns its keep.
    pruned_engine = _build_engine(PRUNED_N_DOCS)
    pruned_queries = _build_queries(pruned_engine, PRUNED_TERMS)
    taat_t_qps, taat_t_p50, taat_t_hits = _run(
        pruned_engine, pruned_queries, TERM_AT_A_TIME, PRUNED_TOP_K, repeats=3
    )
    previous_registry = get_registry()
    registry = set_registry(MetricsRegistry())
    try:
        pruned_qps, pruned_p50, pruned_hits = _run(
            pruned_engine, pruned_queries, PRUNED, PRUNED_TOP_K, repeats=3
        )
        walked_family = registry.family("engine_postings_walked_total")
        skipped_family = registry.family("engine_postings_skipped_total")
        walked = walked_family.labels().value if walked_family is not None else 0.0
        skipped = skipped_family.labels().value if skipped_family is not None else 0.0
    finally:
        set_registry(previous_registry)
    assert pruned_hits == taat_t_hits  # rank safety on the whole workload
    skipped_fraction = skipped / max(walked + skipped, 1)

    payload = {
        "benchmark": "engine_qps",
        "n_docs": N_DOCS,
        "n_queries": N_QUERIES,
        "top_k": TOP_K,
        "term_at_a_time": {
            "qps": round(taat_qps, 1),
            "p50_ms": round(taat_p50, 3),
            "qps_top_k": round(taat_k_qps, 1),
            "p50_ms_top_k": round(taat_k_p50, 3),
        },
        "document_at_a_time": {
            "qps": round(daat_qps, 1),
            "p50_ms": round(daat_p50, 3),
            "qps_top_k": round(daat_k_qps, 1),
            "p50_ms_top_k": round(daat_k_p50, 3),
        },
        "pruned_workload": {
            "n_docs": PRUNED_N_DOCS,
            "top_k": PRUNED_TOP_K,
            "terms_per_query": list(PRUNED_TERMS),
            "term_at_a_time_qps": round(taat_t_qps, 1),
            "term_at_a_time_p50_ms": round(taat_t_p50, 3),
            "pruned_qps": round(pruned_qps, 1),
            "pruned_p50_ms": round(pruned_p50, 3),
            "postings_walked": int(walked),
            "postings_skipped": int(skipped),
            "postings_skipped_fraction": round(skipped_fraction, 3),
        },
    }
    payload["qps_speedup"] = round(taat_qps / max(daat_qps, 1e-9), 1)
    payload["qps_speedup_top_k"] = round(taat_k_qps / max(daat_k_qps, 1e-9), 1)
    payload["pruned_qps_speedup"] = round(pruned_qps / max(taat_t_qps, 1e-9), 2)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_engine_qps.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    fast, slow = payload["term_at_a_time"], payload["document_at_a_time"]
    write_table(
        "ENGINE_qps",
        [
            f"{N_QUERIES} ranking queries over one {N_DOCS}-doc source",
            "",
            f"document-at-a-time  qps={slow['qps']:.0f} p50={slow['p50_ms']:.2f}ms"
            f"  (top-{TOP_K}: qps={slow['qps_top_k']:.0f})",
            f"term-at-a-time      qps={fast['qps']:.0f} p50={fast['p50_ms']:.2f}ms"
            f"  (top-{TOP_K}: qps={fast['qps_top_k']:.0f})",
            f"speedup             {payload['qps_speedup']:.1f}x full, "
            f"{payload['qps_speedup_top_k']:.1f}x truncated",
            "",
            f"pruned workload ({PRUNED_N_DOCS} docs, top-{PRUNED_TOP_K}):",
            f"term-at-a-time      qps={taat_t_qps:.0f} p50={taat_t_p50:.2f}ms",
            f"pruned (MaxScore)   qps={pruned_qps:.0f} p50={pruned_p50:.2f}ms"
            f"  ({payload['pruned_qps_speedup']:.2f}x, "
            f"{skipped_fraction:.0%} of postings skipped)",
        ],
    )

    # The acceptance bars: one posting-list walk per term beats the
    # per-candidate recursion by 5x on this corpus, and rank-safe
    # pruning beats the exhaustive walk by 2x on truncated queries.
    assert taat_qps >= 5 * daat_qps
    assert pruned_qps >= 2 * taat_t_qps
    assert skipped > 0
