"""Engine QPS benchmark: term-at-a-time vs. the document-at-a-time oracle.

A single-source ranking workload over a generated collection, timed on
both evaluation paths (``engine.evaluation``) and both with and without
engine-side top-k truncation.  Queries-per-second and per-query p50
wall-clock land in ``BENCH_engine_qps.json``.

Acceptance: the term-at-a-time path must clear 5x the oracle's QPS on
the full (untruncated) workload.  The two paths must also agree hit for
hit — speed means nothing if the answers drift.
"""

import json
import pathlib
import random
import time

from repro.corpus import CollectionSpec, generate_collection
from repro.engine import fields as F
from repro.engine.evaluation import DOCUMENT_AT_A_TIME, TERM_AT_A_TIME
from repro.engine.query import ListQuery, TermQuery
from repro.engine.search import SearchEngine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_DOCS = 800
N_QUERIES = 24
TOP_K = 20


def _percentile(samples: list[float], quantile: float) -> float:
    ordered = sorted(samples)
    index = round(quantile * (len(ordered) - 1))
    return ordered[index]


def _build_engine() -> SearchEngine:
    spec = CollectionSpec(
        name="bench-qps",
        topics={"databases": 0.6, "retrieval": 0.4},
        size=N_DOCS,
        seed=17,
    )
    engine = SearchEngine()
    for document in generate_collection(spec):
        engine.add(document)
    return engine


def _build_queries(engine: SearchEngine) -> list[ListQuery]:
    """Ranking lists of 2-4 body terms drawn from the real vocabulary.

    Sampling from the index (rather than the topic pools) guarantees
    every query touches non-empty posting lists, which is the case the
    rewrite has to win on.
    """
    rng = random.Random(23)
    vocabulary = engine.index.vocabulary(F.BODY_OF_TEXT)
    queries = []
    for _ in range(N_QUERIES):
        terms = tuple(
            TermQuery(F.BODY_OF_TEXT, text, weight=rng.choice((1.0, 0.8, 0.5)))
            for text in rng.sample(vocabulary, rng.randint(2, 4))
        )
        queries.append(ListQuery(terms))
    return queries


def _run(engine: SearchEngine, queries, mode: str, top_k):
    """(qps, p50_ms, hits per query) for one configuration."""
    engine.evaluation = mode
    walls = []
    results = []
    started_batch = time.perf_counter()
    for query in queries:
        started = time.perf_counter()
        results.append(engine.search(ranking_query=query, top_k=top_k))
        walls.append((time.perf_counter() - started) * 1000.0)
    elapsed = time.perf_counter() - started_batch
    engine.evaluation = TERM_AT_A_TIME
    return len(queries) / elapsed, _percentile(walls, 0.50), results


def test_bench_engine_qps(write_table):
    engine = _build_engine()
    queries = _build_queries(engine)

    taat_qps, taat_p50, taat_hits = _run(engine, queries, TERM_AT_A_TIME, None)
    daat_qps, daat_p50, daat_hits = _run(engine, queries, DOCUMENT_AT_A_TIME, None)
    taat_k_qps, taat_k_p50, _ = _run(engine, queries, TERM_AT_A_TIME, TOP_K)
    daat_k_qps, daat_k_p50, _ = _run(engine, queries, DOCUMENT_AT_A_TIME, TOP_K)

    # Equivalence first: the oracle and the rewrite return identical
    # hits (ids, exact scores, exact TermStats) on the whole workload.
    assert taat_hits == daat_hits

    payload = {
        "benchmark": "engine_qps",
        "n_docs": N_DOCS,
        "n_queries": N_QUERIES,
        "top_k": TOP_K,
        "term_at_a_time": {
            "qps": round(taat_qps, 1),
            "p50_ms": round(taat_p50, 3),
            "qps_top_k": round(taat_k_qps, 1),
            "p50_ms_top_k": round(taat_k_p50, 3),
        },
        "document_at_a_time": {
            "qps": round(daat_qps, 1),
            "p50_ms": round(daat_p50, 3),
            "qps_top_k": round(daat_k_qps, 1),
            "p50_ms_top_k": round(daat_k_p50, 3),
        },
    }
    payload["qps_speedup"] = round(taat_qps / max(daat_qps, 1e-9), 1)
    payload["qps_speedup_top_k"] = round(taat_k_qps / max(daat_k_qps, 1e-9), 1)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_engine_qps.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    fast, slow = payload["term_at_a_time"], payload["document_at_a_time"]
    write_table(
        "ENGINE_qps",
        [
            f"{N_QUERIES} ranking queries over one {N_DOCS}-doc source",
            "",
            f"document-at-a-time  qps={slow['qps']:.0f} p50={slow['p50_ms']:.2f}ms"
            f"  (top-{TOP_K}: qps={slow['qps_top_k']:.0f})",
            f"term-at-a-time      qps={fast['qps']:.0f} p50={fast['p50_ms']:.2f}ms"
            f"  (top-{TOP_K}: qps={fast['qps_top_k']:.0f})",
            f"speedup             {payload['qps_speedup']:.1f}x full, "
            f"{payload['qps_speedup_top_k']:.1f}x truncated",
        ],
    )

    # The acceptance bar: one posting-list walk per term beats the
    # per-candidate recursion by 5x on this corpus.
    assert taat_qps >= 5 * daat_qps
