"""E1b — the GlOSS-style figure: recall-vs-k curves over 10 sources.

The figure federated-search papers plot: selection recall as a function
of the number of sources contacted, one series per strategy.  Written
as an aligned text table (one row per k) so the series can be eyeballed
or re-plotted.
"""

from repro.experiments import (
    FederationSpec,
    build_federation,
    run_selection_experiment,
)
from repro.metasearch.selection import VGlossMax


def test_bench_selection_curve(benchmark, write_table):
    federation = build_federation(
        FederationSpec(n_sources=10, docs_per_source=40, n_queries=40, seed=9)
    )
    ks = tuple(range(1, 11))
    results = run_selection_experiment(federation, ks=ks)
    by_name = {row.selector: row for row in results}

    names = ["bGlOSS", "vGlOSS-Max", "CORI", "by-size", "random"]
    lines = [
        "E1b: selection recall vs k (10 sources, 40 queries)",
        "",
        "k    " + " ".join(f"{name:>11}" for name in names),
    ]
    for k in ks:
        cells = " ".join(f"{by_name[name].recall_at_k[k]:>11.3f}" for name in names)
        lines.append(f"{k:<4} {cells}")
    write_table("E1b_selection_curve", lines)

    # Figure shape: informed selectors dominate baselines pointwise
    # until saturation, and all curves are monotone non-decreasing.
    for name in names:
        series = [by_name[name].recall_at_k[k] for k in ks]
        assert series == sorted(series)
    for k in (1, 2, 3):
        assert by_name["vGlOSS-Max"].recall_at_k[k] >= by_name["by-size"].recall_at_k[k]
        assert by_name["bGlOSS"].recall_at_k[k] > by_name["random"].recall_at_k[k]

    summaries = {
        source_id: source.content_summary()
        for source_id, source in federation.sources.items()
    }
    query = federation.workload.queries[0]
    benchmark(lambda: VGlossMax().rank(list(query.terms), summaries))
