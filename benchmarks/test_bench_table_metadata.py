"""T3 — the MBasic-1 metadata table: every source exports every
required attribute; benchmark the metadata export + SOIF encode path.
"""

from repro.starts import parse_soif
from repro.starts.metadata import MBASIC1_ATTRIBUTES, SMetaAttributes

#: SOIF attribute spelling for each MBasic-1 attribute name.
_WIRE_NAMES = {
    "FieldsSupported": "FieldsSupported",
    "ModifiersSupported": "ModifiersSupported",
    "FieldModifierCombinations": "FieldModifierCombinations",
    "QueryPartsSupported": "QueryPartsSupported",
    "ScoreRange": "ScoreRange",
    "RankingAlgorithmID": "RankingAlgorithmID",
    "TokenizerIDList": "TokenizerIDList",
    "SampleDatabaseResults": "SampleDatabaseResults",
    "StopWordList": "StopWordList",
    "TurnOffStopWords": "TurnOffStopWords",
    "SourceLanguages": "source-languages",
    "SourceName": "source-name",
    "Linkage": "linkage",
    "ContentSummaryLinkage": "content-summary-linkage",
    "DateChanged": "date-changed",
    "DateExpires": "date-expires",
    "Abstract": "abstract",
    "AccessConstraints": "access-constraints",
    "Contact": "contact",
}


def test_bench_metadata_conformance(benchmark, federation, write_table):
    lines = ["MBasic-1 attribute export (+ = present on the wire)", ""]
    source_ids = federation.source_ids()
    lines.append(
        f"{'attribute':<26} req " + " ".join(f"{s[-2:]:>3}" for s in source_ids)
    )

    wire_objects = {
        source_id: federation.sources[source_id].metadata().to_soif()
        for source_id in source_ids
    }
    for spec in MBASIC1_ATTRIBUTES:
        cells = []
        for source_id in source_ids:
            present = _WIRE_NAMES[spec.name] in wire_objects[source_id]
            if spec.required:
                assert present, (
                    f"{source_id} must export required attribute {spec.name}"
                )
            cells.append("  +" if present else "  -")
        required_text = "yes" if spec.required else "no "
        lines.append(f"{spec.name:<26} {required_text:<3} " + " ".join(cells))
    write_table("T3_mbasic1_metadata", lines)

    source = next(iter(federation.sources.values()))

    def export_and_reparse():
        return SMetaAttributes.from_soif(parse_soif(source.metadata().to_soif().dump()))

    parsed = benchmark(export_and_reparse)
    assert parsed.source_id == source.source_id
