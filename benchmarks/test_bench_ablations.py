"""A1 — ablations over the design choices DESIGN.md calls out.

1. Summary granularity: selection recall with full vs. truncated
   summaries (the summary-size / selection-quality trade-off of §4.3.2).
2. ScoreRange: range-normalized merging with and without the exported
   range (falling back to observed maxima).
3. Document frequencies in re-ranking: tf-only (Example 9) vs. tf·idf
   with global df ("more sophisticated schemes could also use the
   document frequencies").
"""

from repro.experiments import (
    run_merging_experiment,
    run_selection_experiment,
)
from repro.metasearch.merging import (
    NormalizedScoreMerge,
    TermFrequencyMerge,
    TfIdfRecomputeMerge,
)
from repro.metasearch.selection import VGlossMax


def test_bench_summary_granularity_ablation(benchmark, federation, write_table):
    lines = ["A1a: selection recall vs summary truncation (vGlOSS-Max)", ""]
    recalls = {}
    for label, max_words in (("full", None), ("top-100", 100), ("top-25", 25), ("top-5", 5)):
        rows = run_selection_experiment(
            federation,
            selectors=[VGlossMax()],
            ks=(1, 3),
            max_words_per_section=max_words,
        )
        recalls[label] = rows[0].recall_at_k
        lines.append(f"{label:<8} R@1={rows[0].recall_at_k[1]:.3f} R@3={rows[0].recall_at_k[3]:.3f}")
    write_table("A1a_summary_granularity", lines)

    # Severe truncation must not beat full summaries.
    assert recalls["top-5"][1] <= recalls["full"][1] + 1e-9

    benchmark(
        lambda: run_selection_experiment(
            federation, selectors=[VGlossMax()], ks=(1,), max_words_per_section=25
        )
    )


def test_bench_df_in_reranking_ablation(benchmark, federation, write_table):
    rows = run_merging_experiment(
        federation,
        strategies=[TermFrequencyMerge(), TfIdfRecomputeMerge()],
        n_queries=20,
    )
    lines = ["A1b: document frequencies in statistics-based re-ranking", ""]
    lines.extend(row.row() for row in rows)
    by_name = {row.strategy: row for row in rows}
    assert (
        by_name["tfidf-recompute"].spearman_vs_reference
        >= by_name["term-frequency"].spearman_vs_reference
    )
    write_table("A1b_df_reranking", lines)

    benchmark(
        lambda: run_merging_experiment(
            federation, strategies=[TfIdfRecomputeMerge()], n_queries=3
        )
    )


def test_bench_score_range_ablation(benchmark, federation, write_table):
    """Range-normalization with vs. without the exported ScoreRange."""
    from dataclasses import replace

    rows_with = run_merging_experiment(
        federation, strategies=[NormalizedScoreMerge()], n_queries=20
    )

    # Strip the exported ranges by monkey-wrapping the context: easiest
    # honest ablation is re-running with metadata whose range is
    # unbounded, forcing the observed-max fallback.
    class UnboundedRange(NormalizedScoreMerge):
        name = "range-normalized(no-range)"

        def score(self, source_id, document, results, context):
            metadata = context.metadata.get(source_id)
            if metadata is not None:
                context.metadata[source_id] = replace(
                    metadata, score_range=(0.0, float("inf"))
                )
            try:
                return super().score(source_id, document, results, context)
            finally:
                if metadata is not None:
                    context.metadata[source_id] = metadata

    rows_without = run_merging_experiment(
        federation, strategies=[UnboundedRange()], n_queries=20
    )

    lines = ["A1c: ScoreRange metadata on/off for range normalization", ""]
    lines.extend(row.row() for row in rows_with + rows_without)
    write_table("A1c_score_range", lines)

    benchmark(
        lambda: run_merging_experiment(
            federation, strategies=[NormalizedScoreMerge()], n_queries=3
        )
    )
