"""E3 — query translation: capability-aware vs. least common denominator.

Reproduces §3.1/§4.1: with MBasic-1 metadata a metasearcher translates
per source and predicts the actual query; the pre-STARTS alternative is
the intersection of all vendors' features.  The benchmark times one
client-side translation.
"""

from collections import defaultdict

from repro.experiments import (
    FEATURE_QUERIES,
    least_common_denominator,
    run_translation_experiment,
)
from repro.metasearch.translation import ClientTranslator


def test_bench_translation_matrix(benchmark, federation, write_table):
    cells = run_translation_experiment(federation)

    by_feature: dict[str, list] = defaultdict(list)
    for cell in cells:
        by_feature[cell.feature].append(cell)

    source_ids = federation.source_ids()
    lines = [
        "E3: per-feature translation across vendors",
        "    (+ lossless, o degraded-but-survived, - dropped entirely)",
        "",
        f"{'feature':<18} " + " ".join(f"{s[-2:]:>3}" for s in source_ids),
    ]
    for feature in FEATURE_QUERIES:
        row = {cell.source_id: cell for cell in by_feature[feature]}
        marks = []
        for source_id in source_ids:
            cell = row[source_id]
            if cell.lossless:
                marks.append("  +")
            elif cell.survived:
                marks.append("  o")
            else:
                marks.append("  -")
        lines.append(f"{feature:<18} " + " ".join(marks))

    lcd = least_common_denominator(cells)
    lines.append("")
    lines.append(f"least common denominator ({len(lcd)}/{len(FEATURE_QUERIES)}): {', '.join(lcd)}")
    prediction_ok = sum(1 for cell in cells if cell.prediction_matches_actual)
    lines.append(
        f"client prediction == source actual query: {prediction_ok}/{len(cells)}"
    )
    write_table("E3_query_translation", lines)

    # The protocol's value: strictly more features than the LCD are
    # usable somewhere, and predictions are near-perfect (the only
    # allowed gap is prox degradation, which MBasic-1 cannot express).
    assert len(lcd) < len(FEATURE_QUERIES)
    mismatches = [
        cell for cell in cells if not cell.prediction_matches_actual
    ]
    assert all(cell.feature == "prox" for cell in mismatches)

    source = federation.sources["Exp-00"]
    metadata = source.metadata()
    translator = ClientTranslator()
    query = FEATURE_QUERIES["ranking-list"]
    benchmark(lambda: translator.translate(query, metadata))
