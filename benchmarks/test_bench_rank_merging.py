"""E2 — rank merging: what each slice of STARTS raw material buys.

Reproduces §3.2/§4.2: raw scores are incomparable (low Spearman against
the single-collection reference); the statistics STARTS mandates
(TermStats + summaries) recover most of the reference ordering.  The
benchmark times one tf·idf-recompute merge.
"""

from repro.experiments import run_merging_experiment
from repro.metasearch.merging import MergeContext, TfIdfRecomputeMerge


def test_bench_merging_quality(benchmark, federation, write_table):
    results = run_merging_experiment(federation, n_queries=20)

    lines = ["E2: merged-rank quality over 20 queries, all 6 sources", ""]
    lines.extend(row.row() for row in results)
    write_table("E2_rank_merging", lines)

    by_name = {row.strategy: row for row in results}
    # Headline shape: statistics-based merging beats raw scores on both
    # metrics, and the Example 9 TF re-rank already beats raw on rho.
    assert (
        by_name["tfidf-recompute"].spearman_vs_reference
        > by_name["raw-score"].spearman_vs_reference
    )
    assert (
        by_name["tfidf-recompute"].precision_at_10
        >= by_name["raw-score"].precision_at_10
    )
    assert (
        by_name["term-frequency"].spearman_vs_reference
        > by_name["raw-score"].spearman_vs_reference
    )

    # Benchmark one merge pass.
    query = federation.workload.queries[0]
    squery = query.to_squery(max_documents=20)
    per_source = {
        source_id: source.search(squery)
        for source_id, source in federation.sources.items()
    }
    per_source = {k: v for k, v in per_source.items() if v.documents}
    context = MergeContext(
        metadata={s: src.metadata() for s, src in federation.sources.items()},
        summaries={s: src.content_summary() for s, src in federation.sources.items()},
        query_terms=query.terms,
    )
    merger = TfIdfRecomputeMerge()
    benchmark(lambda: merger.merge(per_source, context))
