"""E7 — scale: the full pipeline over a 20-source federation.

The paper's premise is "a potentially large number of resources".  At
20 sources the selection trade-off becomes visible: contacting k of 20
sources costs a recall haircut that shrinks as k grows, while the
request/latency/cost savings stay large — the practical dial a
metasearcher operator turns.
"""

import pytest

from repro.experiments import (
    FederationSpec,
    build_federation,
    run_end_to_end_experiment,
)


@pytest.fixture(scope="module")
def big_federation():
    return build_federation(
        FederationSpec(n_sources=20, docs_per_source=40, n_queries=15, seed=13)
    )


def test_bench_scale_pipeline(benchmark, big_federation, write_table):
    lines = ["E7: 20-source federation, 10 queries, k sweep", ""]
    rows_by_k = {}
    for k in (3, 5, 8):
        results = run_end_to_end_experiment(big_federation, n_queries=10, k_sources=k)
        starts = next(row for row in results if row.name.startswith("starts"))
        baseline = next(row for row in results if row.name.startswith("baseline"))
        rows_by_k[k] = (starts, baseline)
        lines.append(f"k={k}: {starts.row()}")
    lines.append(f"       {rows_by_k[3][1].row()}")
    write_table("E7_scale", lines)

    for k, (starts, baseline) in rows_by_k.items():
        # The savings: selection needs k requests vs 20.
        assert starts.requests_per_query == pytest.approx(k)
        assert baseline.requests_per_query == pytest.approx(20)
        assert starts.cost_per_query <= baseline.cost_per_query
    # The trade-off: even at k=3/20, quality stays within ~0.15 of the
    # query-everything ceiling (P@10 saturates quickly because the top
    # sources hold most relevant documents); meanwhile requests drop
    # 2.5-6.7x.  Note P@10 is *not* monotone in k — querying marginal
    # sources adds merge noise along with coverage.
    ceiling = rows_by_k[3][1].precision_at_10
    for k, (starts, _) in rows_by_k.items():
        assert starts.precision_at_10 >= ceiling - 0.15

    from repro.metasearch import Metasearcher

    searcher = Metasearcher(big_federation.internet, [big_federation.resource_url])
    searcher.refresh()
    query = big_federation.workload.queries[0].to_squery(max_documents=10)
    benchmark(lambda: searcher.search(query, k_sources=3))
