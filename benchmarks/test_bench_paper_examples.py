"""EX1–EX12 — the paper's worked examples as a benchmark target.

The golden correctness checks live in tests/starts/test_paper_examples.py;
here the Example 6 query (parse → execute → encode → decode) is timed as
a single protocol round trip, and an index of all twelve examples is
recorded.
"""

from repro.corpus import source1_documents
from repro.source import StartsSource
from repro.starts import SQResults, SQuery, parse_expression, parse_soif

_EXAMPLES = [
    ("EX1", "filter + ranking expression semantics"),
    ("EX2", "stem modifier matches morphological variants"),
    ("EX3", "prox[3,T] word-distance filtering"),
    ("EX4", "fuzzy boolean vs list ranking semantics"),
    ("EX5", "weighted ranking terms"),
    ("EX6", "complete SOIF-encoded query"),
    ("EX7", "actual-query reporting by a filter-only source"),
    ("EX8", "result stream with TermStats/DocSize/DocCount"),
    ("EX9", "statistics-based re-ranking across sources"),
    ("EX10", "SMetaAttributes export"),
    ("EX11", "bilingual content summary"),
    ("EX12", "SResource definition"),
]


def test_bench_example6_full_round_trip(benchmark, write_table):
    source = StartsSource("Source-1", source1_documents())
    query_text = (
        "@SQuery{\n"
        "Version{10}: STARTS 1.0\n"
        "FilterExpression{48}: ((author \"Ullman\") and (title stem \"databases\"))\n"
        "RankingExpression{61}: list((body-of-text \"distributed\") "
        "(body-of-text \"databases\"))\n"
        "DropStopWords{1}: T\n"
        "DefaultAttributeSet{7}: basic-1\n"
        "DefaultLanguage{5}: en-US\n"
        "AnswerFields{12}: title author\n"
        "MinDocumentScore{3}: 0.0\n"
        "MaxNumberDocuments{2}: 10\n"
        "}\n"
    )

    def round_trip():
        query = SQuery.from_soif(parse_soif(query_text))
        results = source.search(query)
        return SQResults.from_soif_stream(results.to_soif_stream())

    results = benchmark(round_trip)
    assert results.documents
    assert results.documents[0].linkage.endswith("dood.ps")

    lines = ["Paper worked examples (golden tests in tests/starts/)", ""]
    lines.extend(f"{example}: {title}" for example, title in _EXAMPLES)
    write_table("EX_paper_examples", lines)


def test_bench_query_parsing(benchmark):
    """Parser throughput on the paper's most complex expression."""
    text = (
        '(((author "Ullman") and (title stem "databases")) or '
        '((body-of-text "distributed") prox[3,T] (body-of-text "systems")))'
    )
    node = benchmark(lambda: parse_expression(text))
    assert node is not None
