"""T1 — the Basic-1 field table: conformance matrix across vendors.

For every Basic-1 field, which federation sources support it; required
fields must be supported everywhere.  The benchmark measures the cost
of a fielded query at one source.
"""

from repro.starts import BASIC1, SQuery, parse_expression


def test_bench_field_conformance(benchmark, federation, write_table):
    metadata = {
        source_id: source.metadata()
        for source_id, source in federation.sources.items()
    }
    source_ids = sorted(metadata)

    lines = ["Basic-1 field support (+ = supported)", ""]
    lines.append(
        f"{'field':<26} req " + " ".join(f"{s[-2:]:>3}" for s in source_ids)
    )
    for name, spec in BASIC1.fields.items():
        cells = []
        for source_id in source_ids:
            supported = metadata[source_id].supports_field(name)
            if spec.required:
                assert supported, f"{source_id} must support required field {name}"
            cells.append("  +" if supported else "  -")
        required_text = "yes" if spec.required else "no "
        lines.append(f"{name:<26} {required_text:<3} " + " ".join(cells))
    write_table("T1_basic1_fields", lines)

    source = next(iter(federation.sources.values()))
    query = SQuery(filter_expression=parse_expression('(title "databases")'))
    benchmark(lambda: source.search(query))
