"""Metrics instrumentation overhead on the hot engine path.

The telemetry pitch is "always on": every ``SearchEngine.search`` call
times itself into the ``engine_query_eval_ms`` histogram and ticks the
postings/truncation counters.  This benchmark prices that claim — the
same ranking workload runs with a live :class:`MetricsRegistry` and
with the disabled registry (which hands out no-op instruments), taking
the best of several alternating rounds per mode so scheduler noise
cancels instead of accumulating on one side.

Acceptance: enabled-registry throughput within 5% of disabled.
Numbers land in ``BENCH_metrics_overhead.json``.
"""

import json
import pathlib
import random
import time

from repro.corpus import CollectionSpec, generate_collection
from repro.engine import fields as F
from repro.engine.query import ListQuery, TermQuery
from repro.engine.search import SearchEngine
from repro.observability import MetricsRegistry, get_registry, set_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_DOCS = 800
N_QUERIES = 24
ROUNDS = 3
MAX_OVERHEAD = 0.05


def _build_engine() -> SearchEngine:
    spec = CollectionSpec(
        name="bench-metrics-overhead",
        topics={"databases": 0.6, "retrieval": 0.4},
        size=N_DOCS,
        seed=17,
    )
    engine = SearchEngine()
    for document in generate_collection(spec):
        engine.add(document)
    return engine


def _build_queries(engine: SearchEngine) -> list[ListQuery]:
    rng = random.Random(23)
    vocabulary = engine.index.vocabulary(F.BODY_OF_TEXT)
    queries = []
    for _ in range(N_QUERIES):
        terms = tuple(
            TermQuery(F.BODY_OF_TEXT, text, weight=rng.choice((1.0, 0.8, 0.5)))
            for text in rng.sample(vocabulary, rng.randint(2, 4))
        )
        queries.append(ListQuery(terms))
    return queries


def _qps(engine: SearchEngine, queries: list[ListQuery]) -> float:
    started = time.perf_counter()
    for query in queries:
        engine.search(ranking_query=query, top_k=20)
    return len(queries) / (time.perf_counter() - started)


def test_bench_metrics_overhead(write_table):
    engine = _build_engine()
    queries = _build_queries(engine)

    previous = get_registry()
    enabled_runs: list[float] = []
    disabled_runs: list[float] = []
    try:
        _qps(engine, queries)  # warm caches before either mode is timed
        for _ in range(ROUNDS):
            set_registry(MetricsRegistry.disabled())
            disabled_runs.append(_qps(engine, queries))
            set_registry(MetricsRegistry())
            enabled_runs.append(_qps(engine, queries))
    finally:
        set_registry(previous)

    enabled_qps = max(enabled_runs)
    disabled_qps = max(disabled_runs)
    overhead = 1.0 - enabled_qps / disabled_qps

    payload = {
        "benchmark": "metrics_overhead",
        "n_docs": N_DOCS,
        "n_queries": N_QUERIES,
        "rounds": ROUNDS,
        "disabled_qps": round(disabled_qps, 1),
        "enabled_qps": round(enabled_qps, 1),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_metrics_overhead.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    write_table(
        "METRICS_overhead",
        [
            f"{N_QUERIES} ranking queries, best of {ROUNDS} alternating rounds",
            "",
            f"registry disabled  qps={disabled_qps:.0f}",
            f"registry enabled   qps={enabled_qps:.0f}",
            f"overhead           {overhead * 100.0:+.2f}% "
            f"(budget {MAX_OVERHEAD * 100.0:.0f}%)",
        ],
    )

    assert overhead < MAX_OVERHEAD, (
        f"metrics instrumentation costs {overhead * 100.0:.2f}% "
        f"of engine throughput (budget {MAX_OVERHEAD * 100.0:.0f}%)"
    )
