"""Observability overhead on the hot paths: metrics, tracing, querylog.

The telemetry pitch is "always on": every ``SearchEngine.search`` call
times itself into the ``engine_query_eval_ms`` histogram and ticks the
postings/truncation counters; every wire request checks the ambient
trace context and every traced endpoint checks for a ``traceparent``
header; every ``Metasearcher.search`` emits one wide event into the
process query log.  This benchmark prices those claims — each
subsystem's hot path runs with the feature on and off in strictly
interleaved pairs, comparing per-operation medians so load drift and
GC spikes land on both sides instead of biasing one:

* metrics — the ranking workload under a live :class:`MetricsRegistry`
  vs the disabled registry (no-op instruments);
* trace machinery — *untraced* broker selections against endpoints
  published with a trace sink (header check per request) vs without;
* querylog — cache-off metasearch rounds with the process log enabled
  vs :meth:`QueryLog.disabled`.

Acceptance: each feature's throughput within 5% of its off switch.
(Opting a request *into* tracing prices the spans themselves; that
cost is reported as an informational column, not gated.)  Numbers land
in ``BENCH_metrics_overhead.json``; one stitched trace and the query
log from the timed rounds land beside it as NDJSON artifacts.
"""

import json
import pathlib
import random
import statistics
import time

from repro import Metasearcher, SQuery, parse_expression, quick_federation
from repro.broker import LeafBroker, NetworkLeafHandle, RootBroker
from repro.cache import CachePolicy
from repro.corpus import (
    CollectionSpec,
    SummaryPopulationSpec,
    generate_collection,
    generate_source_summaries,
)
from repro.engine import fields as F
from repro.engine.query import ListQuery, TermQuery
from repro.engine.search import SearchEngine
from repro.metasearch.selection import Cori
from repro.observability import (
    MetricsRegistry,
    QueryLog,
    TraceCollector,
    Tracer,
    get_query_log,
    get_registry,
    render_stitched_ndjson,
    set_query_log,
    set_registry,
)
from repro.transport import SimulatedInternet, publish_broker_leaf

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_DOCS = 800
N_QUERIES = 24
MAX_OVERHEAD = 0.05
N_PAIRS = 120


def _build_engine() -> SearchEngine:
    spec = CollectionSpec(
        name="bench-metrics-overhead",
        topics={"databases": 0.6, "retrieval": 0.4},
        size=N_DOCS,
        seed=17,
    )
    engine = SearchEngine()
    for document in generate_collection(spec):
        engine.add(document)
    return engine


def _build_queries(engine: SearchEngine) -> list[ListQuery]:
    rng = random.Random(23)
    vocabulary = engine.index.vocabulary(F.BODY_OF_TEXT)
    queries = []
    for _ in range(N_QUERIES):
        terms = tuple(
            TermQuery(F.BODY_OF_TEXT, text, weight=rng.choice((1.0, 0.8, 0.5)))
            for text in rng.sample(vocabulary, rng.randint(2, 4))
        )
        queries.append(ListQuery(terms))
    return queries


def _metrics_overhead() -> dict:
    """Live registry vs disabled registry on the ranking hot path.

    Each pair times the *same* ranking query under both registries
    back to back, so the comparison is per-query identical work.
    """
    engine = _build_engine()
    queries = _build_queries(engine)
    live = MetricsRegistry()
    off = MetricsRegistry.disabled()

    def search(registry, index):
        set_registry(registry)
        engine.search(ranking_query=queries[index % len(queries)], top_k=20)

    for index in range(10):  # warm caches before either mode is timed
        search(off, index)
    off_s, on_s, overhead = _paired_medians(
        lambda index: search(off, index), lambda index: search(live, index)
    )
    return {
        "disabled_qps": round(1.0 / off_s, 1),
        "enabled_qps": round(1.0 / on_s, 1),
        "overhead_fraction": round(overhead, 4),
    }


def _network_root(trace_sink):
    """A three-leaf broker hierarchy behind (simulated) wire endpoints."""
    internet = SimulatedInternet(seed=3)
    handles = []
    for index in range(3):
        leaf = LeafBroker(f"bench-leaf-{index}")
        base = f"http://bench-{index}.example.org/broker"
        publish_broker_leaf(internet, leaf, base, trace_sink=trace_sink)
        handles.append(NetworkLeafHandle(internet, base, leaf.leaf_id))
    root = RootBroker(handles)
    summaries = generate_source_summaries(
        SummaryPopulationSpec(n_sources=48, topics_per_source=2, seed=31)
    )
    for source_id in sorted(summaries):
        root.apply_delta(source_id, summaries[source_id])
    return root


def _timed(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started


def _paired_medians(run_off, run_on) -> tuple[float, float, float]:
    """Strictly interleaved A/B: per-mode medians plus the overhead.

    One off-sample then one on-sample per pair — the same operation on
    both sides — so load drift, thermal throttling and GC spikes land
    on both modes instead of biasing whichever block ran second.  The
    overhead is the median of the per-pair on/off time ratios, which
    cancels per-operation variation the way block averages cannot; the
    per-mode median times feed the qps columns.
    """
    off_times: list[float] = []
    on_times: list[float] = []
    for index in range(N_PAIRS):
        off_times.append(_timed(lambda: run_off(index)))
        on_times.append(_timed(lambda: run_on(index)))
    overhead = statistics.median(
        on / off for off, on in zip(off_times, on_times)
    ) - 1.0
    return statistics.median(off_times), statistics.median(on_times), overhead


def _tracing_overheads() -> dict:
    """Header-check machinery on untraced requests, plus the opt-in cost.

    The gated number compares untraced selections against endpoints
    published with vs without a trace sink — what every request pays so
    that a traced one *could* stitch.  The informational number prices
    actually opting in (client spans + server fragments).
    """
    collector = TraceCollector()
    bare_root = _network_root(trace_sink=None)
    sink_root = _network_root(trace_sink=collector)

    def select(root, tracer=None):
        root.select(Cori(), ["database", "medicine"], 3, tracer=tracer)

    for _ in range(10):  # warm both hierarchies before timing
        select(bare_root)
        select(sink_root)
    bare_s, sink_s, overhead = _paired_medians(
        lambda index: select(bare_root), lambda index: select(sink_root)
    )
    _, traced_s, opt_in = _paired_medians(
        lambda index: select(bare_root),
        lambda index: select(sink_root, tracer=Tracer()),
    )
    return {
        "untraced_no_sink_qps": round(1.0 / bare_s, 1),
        "untraced_sink_qps": round(1.0 / sink_s, 1),
        "overhead_fraction": round(overhead, 4),
        "opt_in_traced_qps": round(1.0 / traced_s, 1),
        "opt_in_overhead_fraction": round(opt_in, 4),
    }


def _write_trace_artifact() -> None:
    """One stitched cross-process trace, as the CI NDJSON artifact."""
    collector = TraceCollector()
    root = _network_root(trace_sink=collector)
    tracer = Tracer()
    root.select(Cori(), ["database", "medicine"], 3, tracer=tracer)
    (RESULTS_DIR / "BENCH_trace.ndjson").write_text(
        render_stitched_ndjson(tracer.trace(), collector.traces())
    )


def _search_queries() -> list[SQuery]:
    terms = ["database", "index", "retrieval", "network", "medicine", "query"]
    return [
        SQuery(
            ranking_expression=parse_expression(f'(body-of-text "{term}")'),
            max_number_documents=5,
        )
        for term in terms
    ]


def _querylog_overhead() -> dict:
    """Enabled vs disabled process query log on cache-off searches.

    Caching is off so every request prices the full wire round — the
    path whose per-search record is the log's steady-state cost.  The
    log accumulated over the enabled samples becomes the CI NDJSON
    artifact.
    """
    internet, resource_url = quick_federation(seed=31, docs_per_source=40)
    searcher = Metasearcher(
        internet, [resource_url], cache_policy=CachePolicy.disabled()
    )
    searcher.refresh()
    queries = _search_queries()
    off_log = QueryLog.disabled()
    on_log = QueryLog(slow_ms=50.0)

    def search(log, index):
        set_query_log(log)
        searcher.search(queries[index % len(queries)], k_sources=2)

    for index in range(10):
        search(off_log, index)
    off_s, on_s, overhead = _paired_medians(
        lambda index: search(off_log, index),
        lambda index: search(on_log, index),
    )
    on_log.write_ndjson(str(RESULTS_DIR / "BENCH_querylog.ndjson"))
    return {
        "disabled_qps": round(1.0 / off_s, 1),
        "enabled_qps": round(1.0 / on_s, 1),
        "overhead_fraction": round(overhead, 4),
    }


def test_bench_metrics_overhead(write_table):
    previous_registry = get_registry()
    previous_log = get_query_log()
    RESULTS_DIR.mkdir(exist_ok=True)
    try:
        metrics = _metrics_overhead()
        # Tracing and querylog A/Bs hold the registry constant (live,
        # the always-on configuration) so one variable moves at a time.
        set_registry(MetricsRegistry())
        tracing = _tracing_overheads()
        querylog = _querylog_overhead()
        _write_trace_artifact()
    finally:
        set_registry(previous_registry)
        set_query_log(previous_log)

    payload = {
        "benchmark": "metrics_overhead",
        "n_docs": N_DOCS,
        "n_queries": N_QUERIES,
        "n_pairs": N_PAIRS,
        "disabled_qps": metrics["disabled_qps"],
        "enabled_qps": metrics["enabled_qps"],
        "overhead_fraction": metrics["overhead_fraction"],
        "budget_fraction": MAX_OVERHEAD,
        "trace_machinery": tracing,
        "querylog": querylog,
    }
    path = RESULTS_DIR / "BENCH_metrics_overhead.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    gated = {
        "metrics": metrics["overhead_fraction"],
        "trace machinery": tracing["overhead_fraction"],
        "querylog": querylog["overhead_fraction"],
    }
    write_table(
        "METRICS_overhead",
        [
            f"{N_PAIRS} interleaved on/off pairs per subsystem "
            "(per-operation medians)",
            "",
            f"metrics registry   off qps={metrics['disabled_qps']:.0f} "
            f"on qps={metrics['enabled_qps']:.0f} "
            f"overhead {metrics['overhead_fraction'] * 100.0:+.2f}%",
            f"trace machinery    off qps={tracing['untraced_no_sink_qps']:.0f} "
            f"on qps={tracing['untraced_sink_qps']:.0f} "
            f"overhead {tracing['overhead_fraction'] * 100.0:+.2f}%",
            f"querylog           off qps={querylog['disabled_qps']:.0f} "
            f"on qps={querylog['enabled_qps']:.0f} "
            f"overhead {querylog['overhead_fraction'] * 100.0:+.2f}%",
            f"(informational) opting a select into tracing costs "
            f"{tracing['opt_in_overhead_fraction'] * 100.0:+.1f}%",
            f"budget per gated row: {MAX_OVERHEAD * 100.0:.0f}%",
        ],
    )

    for name, overhead in gated.items():
        assert overhead < MAX_OVERHEAD, (
            f"{name} instrumentation costs {overhead * 100.0:.2f}% "
            f"of throughput (budget {MAX_OVERHEAD * 100.0:.0f}%)"
        )
