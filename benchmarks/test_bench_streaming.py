"""Streaming federation at scale: first results early, thousands in flight.

The asyncio executor's two headline claims, measured:

* **Time to first result.**  Over 64 sources with heterogeneous
  latencies (5–145 ms simulated), a streamed search must surface its
  first merged documents in well under half the batch search's median
  wall time — the fast sources answer while the stragglers are still
  on the wire.
* **In-flight scale.**  One process must hold hundreds of concurrent
  source queries: 512 requests dispatched through a single
  ``AsyncExecutor`` peak at >= 256 simultaneously in flight (each wait
  is a suspended coroutine, not a blocked thread).

Figures land in ``benchmarks/results/BENCH_streaming.json``.
"""

import json
import pathlib
import statistics
import time

from repro.cache import CachePolicy
from repro.corpus import source1_documents
from repro.federation import (
    AsyncExecutor,
    QueryDispatcher,
    QueryPolicy,
    SourceRequest,
)
from repro.metasearch import Metasearcher, SelectAll
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import (
    HostProfile,
    SimulatedInternet,
    StartsClient,
    publish_resource,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_SOURCES = 64
N_ROUNDS = 5


def ranking_query() -> SQuery:
    return SQuery(
        ranking_expression=parse_expression('(body-of-text "databases")'),
        max_number_documents=10,
    )


def _publish_fleet(internet, latency_for, tag):
    sources = [
        StartsSource(
            f"{tag}-{index:02d}",
            source1_documents(),
            base_url=f"http://{tag.lower()}{index:02d}.org/s",
        )
        for index in range(N_SOURCES)
    ]
    resource = Resource(tag, sources)
    publish_resource(
        internet,
        resource,
        f"http://{tag.lower()}.org",
        source_profiles={
            source.source_id: HostProfile(
                latency_ms=latency_for(index), jitter_ms=0.0
            )
            for index, source in enumerate(sources)
        },
    )
    return sources


def _heterogeneous_searcher() -> Metasearcher:
    """64 sources spread over 5–145 ms simulated latency, realtime 1/4 speed."""
    internet = SimulatedInternet(seed=6)
    _publish_fleet(internet, lambda index: 5.0 + 2.2 * index, "Fleet")
    searcher = Metasearcher(
        internet,
        ["http://fleet.org/resource"],
        selector=SelectAll(),
        cache_policy=CachePolicy.disabled(),
        query_policy=QueryPolicy(timeout_ms=2_000.0),
    )
    searcher.refresh()
    internet.realtime = True
    internet.time_scale = 0.25
    return searcher


def test_bench_streaming_first_result(write_table):
    """ttfr must beat half the batch p50 over 64 concurrent sources."""
    searcher = _heterogeneous_searcher()
    query = ranking_query()

    batch_walls: list[float] = []
    for _ in range(N_ROUNDS):
        executor = AsyncExecutor(max_concurrency=N_SOURCES)
        started = time.perf_counter()
        result = searcher.search(query, k_sources=N_SOURCES, executor=executor)
        batch_walls.append((time.perf_counter() - started) * 1000.0)
        assert len(result.ok_sources()) == N_SOURCES

    first_result_walls: list[float] = []
    stream_walls: list[float] = []
    for _ in range(N_ROUNDS):
        executor = AsyncExecutor(max_concurrency=N_SOURCES)
        started = time.perf_counter()
        first_ms = None
        for emission in searcher.search_stream(
            query,
            k_sources=N_SOURCES,
            executor=executor,
            early_stop=False,
        ):
            if first_ms is None and emission.documents:
                first_ms = (time.perf_counter() - started) * 1000.0
        stream_walls.append((time.perf_counter() - started) * 1000.0)
        assert first_ms is not None
        first_result_walls.append(first_ms)

    batch_p50 = statistics.median(batch_walls)
    ttfr_p50 = statistics.median(first_result_walls)

    payload = {
        "benchmark": "streaming",
        "n_sources": N_SOURCES,
        "rounds": N_ROUNDS,
        "batch_p50_ms": round(batch_p50, 3),
        "time_to_first_result_p50_ms": round(ttfr_p50, 3),
        "ttfr_over_batch_p50": round(ttfr_p50 / batch_p50, 4),
        "stream_total_p50_ms": round(statistics.median(stream_walls), 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    existing = {}
    path = RESULTS_DIR / "BENCH_streaming.json"
    if path.exists():
        existing = json.loads(path.read_text())
    existing.update(payload)
    path.write_text(json.dumps(existing, indent=2) + "\n")

    write_table(
        "BENCH_streaming_first_result",
        [
            f"streaming over {N_SOURCES} sources (5-145 ms simulated, 1/4 realtime)",
            "",
            f"batch p50:           {batch_p50:8.1f} ms",
            f"first result p50:    {ttfr_p50:8.1f} ms "
            f"({payload['ttfr_over_batch_p50']:.2f}x of batch)",
        ],
    )

    # Acceptance: first merged results in under half the batch median.
    assert ttfr_p50 < 0.5 * batch_p50


def test_bench_streaming_inflight_scale(write_table):
    """512 source queries through one executor peak >= 256 in flight."""
    internet = SimulatedInternet(seed=8)
    sources = _publish_fleet(internet, lambda index: 400.0, "Deep")
    internet.realtime = True
    internet.time_scale = 0.25  # every request sleeps ~100 ms of wall clock

    executor = AsyncExecutor(max_concurrency=512)
    dispatcher = QueryDispatcher(
        StartsClient(internet),
        executor=executor,
        policy=QueryPolicy(timeout_ms=2_000.0),
    )
    # Eight interleaved waves over the 64 hosts: 512 concurrent requests.
    requests = [
        SourceRequest(
            source.source_id,
            f"{source.base_url}/query",
            ranking_query(),
        )
        for _ in range(8)
        for source in sources
    ]
    started = time.perf_counter()
    outcomes = dispatcher.dispatch(requests)
    wall_ms = (time.perf_counter() - started) * 1000.0

    assert all(outcome.ok for outcome in outcomes)
    peak = executor.peak_inflight

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_streaming.json"
    existing = json.loads(path.read_text()) if path.exists() else {}
    existing.update(
        {
            "inflight_requests": len(requests),
            "peak_inflight": peak,
            "inflight_wall_ms": round(wall_ms, 3),
        }
    )
    path.write_text(json.dumps(existing, indent=2) + "\n")

    write_table(
        "BENCH_streaming_inflight",
        [
            f"{len(requests)} source queries, one asyncio executor",
            "",
            f"peak in flight:  {peak}",
            f"wall:            {wall_ms:8.1f} ms "
            f"(vs ~{len(requests) * 100:.0f} ms if serial)",
        ],
    )

    assert peak >= 256
