"""A3 — predicate rewriting (refs [3, 4]): recall recovered at
capability-poor sources.

For sources stripped of the expansion modifiers, a stem query loses
its morphological variants when the modifier is dropped (STARTS default)
but keeps them when the metasearcher rewrites the predicate over the
source's summary vocabulary.
"""

from repro.corpus.generator import CollectionSpec, generate_collection
from repro.experiments.metrics import mean
from repro.metasearch.rewriting import PredicateRewriter
from repro.metasearch.translation import ClientTranslator
from repro.source import SourceCapabilities, StartsSource
from repro.starts import SQuery, parse_expression

_STEM_QUERIES = [
    '(body-of-text stem "databases")',
    '(body-of-text stem "queries")',
    '(body-of-text stem "indexes")',
    '(body-of-text stem "transactions")',
    '(body-of-text stem "systems")',
]


def test_bench_predicate_rewriting(benchmark, write_table):
    documents = generate_collection(
        CollectionSpec(name="Poor", topics={"databases": 1.0}, size=80, seed=17)
    )
    poor = StartsSource(
        "Poor",
        documents,
        capabilities=SourceCapabilities.full_basic1().without_modifiers(
            "stem", "phonetic", "right-truncation", "left-truncation"
        ),
    )
    rich = StartsSource("Rich", documents)  # full Basic-1: the reference

    plain = ClientTranslator()
    rewriting = ClientTranslator(rewriter=PredicateRewriter())
    summary = poor.content_summary()

    plain_fraction, rewritten_fraction = [], []
    for text in _STEM_QUERIES:
        query = SQuery(filter_expression=parse_expression(text))
        reference = {d.linkage for d in rich.search(query).documents}
        if not reference:
            continue

        translated_plain, _ = plain.translate(query, poor.metadata())
        got_plain = {d.linkage for d in poor.search(translated_plain).documents}

        translated_rw, _ = rewriting.translate(
            query, poor.metadata(), summary=summary
        )
        got_rw = {d.linkage for d in poor.search(translated_rw).documents}

        plain_fraction.append(len(got_plain & reference) / len(reference))
        rewritten_fraction.append(len(got_rw & reference) / len(reference))

    lines = [
        "A3: stem-query recall at a no-stem source (vs full-Basic-1 reference)",
        "",
        f"modifier dropped (STARTS default): {mean(plain_fraction):.3f}",
        f"predicate rewritten over summary:  {mean(rewritten_fraction):.3f}",
    ]
    write_table("A3_predicate_rewriting", lines)

    assert mean(rewritten_fraction) > mean(plain_fraction)
    assert mean(rewritten_fraction) > 0.9  # near-exact emulation

    query = SQuery(filter_expression=parse_expression(_STEM_QUERIES[0]))
    benchmark(
        lambda: rewriting.translate(query, poor.metadata(), summary=summary)
    )
