"""E5 — the full STARTS pipeline vs. the query-all/raw-merge baseline.

Reproduces the paper's bottom line (§6): STARTS "can significantly
streamline the implementation of metasearchers, as well as enhance the
functionality they can offer" — here: equal-or-better result quality at
a fraction of the requests, latency and monetary cost.  The benchmark
times one full metasearch (select → translate → query → merge).
"""

import json
import pathlib
import threading
import time
from collections import Counter

from repro.cache import CachePolicy
from repro.experiments import FederationSpec, build_federation, run_end_to_end_experiment
from repro.metasearch import Metasearcher, ParallelExecutor, SerialExecutor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_bench_end_to_end_pipeline(benchmark, federation, write_table):
    results = run_end_to_end_experiment(federation, n_queries=15, k_sources=3)

    lines = ["E5: STARTS pipeline vs pre-STARTS baseline (15 queries)", ""]
    lines.extend(row.row() for row in results)
    write_table("E5_end_to_end", lines)

    starts = next(row for row in results if row.name.startswith("starts"))
    baseline = next(row for row in results if row.name.startswith("baseline"))
    # Headline shape: selection halves the traffic without losing quality.
    assert starts.requests_per_query < baseline.requests_per_query
    assert starts.cost_per_query <= baseline.cost_per_query
    assert starts.precision_at_10 >= baseline.precision_at_10 - 0.05

    # The benchmark times the *uncached* pipeline: pytest-benchmark
    # repeats one query, and a result-cache hit would be all it measures
    # (test_bench_cache_hit_rate covers the cached path).
    searcher = Metasearcher(
        federation.internet,
        [federation.resource_url],
        cache_policy=CachePolicy.disabled(),
    )
    searcher.refresh()
    query = federation.workload.queries[0].to_squery(max_documents=10)
    benchmark(lambda: searcher.search(query, k_sources=3))


def test_bench_e2e_latency_json(write_table):
    """Serial vs. parallel fan-out wall-clock, written as JSON.

    Builds a fresh 8-source world, refreshes with instantaneous
    simulated time, then flips the internet into realtime mode so each
    ~20 ms host latency is actually slept — making the executor choice
    visible on the wall clock.  Also measures the streaming path:
    time-to-first-result through ``search_stream`` and the p99 stream
    latency under concurrent load.  The figures land in
    ``BENCH_e2e_latency.json`` so future runs have a perf trajectory.
    """
    spec = FederationSpec(
        n_sources=8,
        docs_per_source=30,
        n_queries=5,
        seed=2,
        slow_source_index=None,
        charging_source_index=None,
    )
    world = build_federation(spec)
    searcher = Metasearcher(world.internet, [world.resource_url])
    searcher.refresh()
    query = world.workload.queries[0].to_squery(max_documents=10)

    world.internet.realtime = True
    outcome_counts: Counter[str] = Counter()
    walls: dict[str, float] = {}
    simulated: dict[str, float] = {}
    for executor in (SerialExecutor(), ParallelExecutor()):
        started = time.perf_counter()
        result = searcher.search(query, k_sources=8, executor=executor)
        walls[executor.name] = (time.perf_counter() - started) * 1000.0
        simulated[executor.name] = (
            result.query_latency_serial_ms
            if executor.name == "serial"
            else result.query_latency_parallel_ms
        )
        outcome_counts.update(result.outcome_counts())

    # Streaming columns: the first merged emission lands long before the
    # whole round does, and concurrent streams stay bounded at p99.
    def streaming_searcher() -> Metasearcher:
        fresh = Metasearcher(
            world.internet,
            [world.resource_url],
            cache_policy=CachePolicy.disabled(),
        )
        world.internet.realtime = False
        fresh.refresh()
        world.internet.realtime = True
        return fresh

    def stream_once(searcher: Metasearcher) -> tuple[float, float]:
        """(time to first merged documents, total stream wall) in ms."""
        started = time.perf_counter()
        first_ms = None
        for emission in searcher.search_stream(
            query, k_sources=8, executor=ParallelExecutor()
        ):
            if first_ms is None and emission.documents:
                first_ms = (time.perf_counter() - started) * 1000.0
        total_ms = (time.perf_counter() - started) * 1000.0
        return first_ms if first_ms is not None else total_ms, total_ms

    time_to_first_ms, _ = stream_once(streaming_searcher())

    stream_walls: list[float] = []
    lock = threading.Lock()

    def worker() -> None:
        searcher = streaming_searcher()
        for _ in range(4):
            _, total_ms = stream_once(searcher)
            with lock:
                stream_walls.append(total_ms)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stream_walls.sort()
    p99_index = min(len(stream_walls) - 1, int(len(stream_walls) * 0.99))
    p99_under_concurrency_ms = stream_walls[p99_index]
    world.internet.realtime = False

    payload = {
        "benchmark": "e2e_latency",
        "n_sources": spec.n_sources,
        "k_sources": 8,
        "serial_wall_ms": round(walls["serial"], 3),
        "parallel_wall_ms": round(walls["parallel"], 3),
        "simulated_serial_ms": round(simulated["serial"], 3),
        "simulated_parallel_ms": round(simulated["parallel"], 3),
        "time_to_first_result_ms": round(time_to_first_ms, 3),
        "p99_under_concurrency_ms": round(p99_under_concurrency_ms, 3),
        "outcome_counts": dict(sorted(outcome_counts.items())),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_e2e_latency.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    write_table(
        "E5_latency_wallclock",
        [
            "E5: serial vs parallel fan-out over 8 realtime sources",
            "",
            f"serial    wall={payload['serial_wall_ms']:.1f}ms "
            f"simulated={payload['simulated_serial_ms']:.1f}ms",
            f"parallel  wall={payload['parallel_wall_ms']:.1f}ms "
            f"simulated={payload['simulated_parallel_ms']:.1f}ms",
            f"stream    first-result={payload['time_to_first_result_ms']:.1f}ms "
            f"p99-under-concurrency={payload['p99_under_concurrency_ms']:.1f}ms",
        ],
    )

    assert payload["parallel_wall_ms"] < payload["serial_wall_ms"]
    assert payload["time_to_first_result_ms"] < payload["serial_wall_ms"]
    assert not set(payload["outcome_counts"]) - {"ok", "skipped"}
