"""E5 — the full STARTS pipeline vs. the query-all/raw-merge baseline.

Reproduces the paper's bottom line (§6): STARTS "can significantly
streamline the implementation of metasearchers, as well as enhance the
functionality they can offer" — here: equal-or-better result quality at
a fraction of the requests, latency and monetary cost.  The benchmark
times one full metasearch (select → translate → query → merge).
"""

from repro.experiments import run_end_to_end_experiment
from repro.metasearch import Metasearcher


def test_bench_end_to_end_pipeline(benchmark, federation, write_table):
    results = run_end_to_end_experiment(federation, n_queries=15, k_sources=3)

    lines = ["E5: STARTS pipeline vs pre-STARTS baseline (15 queries)", ""]
    lines.extend(row.row() for row in results)
    write_table("E5_end_to_end", lines)

    starts = next(row for row in results if row.name.startswith("starts"))
    baseline = next(row for row in results if row.name.startswith("baseline"))
    # Headline shape: selection halves the traffic without losing quality.
    assert starts.requests_per_query < baseline.requests_per_query
    assert starts.cost_per_query <= baseline.cost_per_query
    assert starts.precision_at_10 >= baseline.precision_at_10 - 0.05

    searcher = Metasearcher(federation.internet, [federation.resource_url])
    searcher.refresh()
    query = federation.workload.queries[0].to_squery(max_documents=10)
    benchmark(lambda: searcher.search(query, k_sources=3))
