"""Persistence benchmark: warm starts vs. cold rebuilds at 100k docs.

The point of the segment store is that a restart should *not* replay
indexing.  This benchmark builds a 100k-document segmented index once
(the cold path: generate nothing, just tokenize/index/flush every
document), checkpoints it, and then times how long a "new process"
takes to serve queries from the same directory (the warm path: read
the manifest, mmap the segments).  It also replays a mixed query
workload over the segmented engine and the ``storage="memory"``
oracle, asserting the answers are bit-identical and the segment QPS
stays within 10 % of the in-memory QPS.

Everything lands in ``BENCH_persistence.json``.  Acceptance: warm
startup at least 10× faster than the cold rebuild, segment QPS within
10 % of memory QPS, identical results.

The store lives under a ``tempfile`` directory and is removed on the
way out — a benchmark run must not leave 100k documents of segments
in the tree (CI checks).
"""

import json
import pathlib
import shutil
import tempfile
import time

from repro.corpus import CollectionSpec, generate_collection
from repro.engine import fields as F
from repro.engine.query import BooleanQuery, ListQuery, ProxQuery, TermQuery
from repro.engine.search import SearchEngine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_DOCS = 100_000
FLUSH_EVERY = 5_000
QUERY_PASSES = 3


def t(text, field=F.BODY_OF_TEXT, **kwargs):
    return TermQuery(field, text, **kwargs)


def _workload(documents):
    """A mixed query stream over words that actually occur."""
    from collections import Counter

    counts = Counter()
    for document in documents[:500]:
        counts.update(document.fields.get(F.BODY_OF_TEXT, "").lower().split())
    common = [word for word, _ in counts.most_common(12)]
    rare = [word for word, count in counts.items() if count <= 2][:8]
    queries = []
    for word in common:
        queries.append((None, ListQuery((t(word),))))
    for head, tail in zip(common, common[4:]):
        queries.append((BooleanQuery("and", (t(head), t(tail))), None))
        queries.append((None, ListQuery((t(head, weight=2.0), t(tail)))))
    for word in rare:
        queries.append((t(word), None))
    queries.append((ProxQuery(t(common[0]), t(common[1]), 3, False), None))
    queries.append((t(common[0][:4], modifiers=frozenset({"right-truncation"})), None))
    return queries


def _replay(engine, queries):
    """Total wall-clock seconds for one pass over the workload."""
    started = time.perf_counter()
    for filter_query, ranking_query in queries:
        engine.search(filter_query, ranking_query, top_k=10)
    return time.perf_counter() - started


def test_bench_persistence(write_table):
    documents = generate_collection(
        CollectionSpec(
            name="persist",
            topics={"databases": 1.0, "networking": 0.5, "retrieval": 0.25},
            size=N_DOCS,
            body_words=(12, 24),
            seed=17,
        )
    )
    queries = _workload(documents)
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-persist-"))
    try:
        store_dir = scratch / "store"

        # -- cold: index every document into segments, checkpoint ------
        started = time.perf_counter()
        segmented = SearchEngine(storage="segments", storage_dir=store_dir)
        for index, document in enumerate(documents):
            segmented.add(document)
            if (index + 1) % FLUSH_EVERY == 0:
                segmented.flush()
        segmented.checkpoint()
        cold_rebuild_s = time.perf_counter() - started
        segment_count = segmented.segment_store.segment_count
        store_bytes = segmented.segment_store.manifest.total_bytes()
        segmented.close()

        # -- warm: a "new process" opens the same directory ------------
        started = time.perf_counter()
        warm = SearchEngine(storage="segments", storage_dir=store_dir)
        assert warm.document_count == N_DOCS
        warm_startup_s = time.perf_counter() - started

        # -- the in-memory oracle --------------------------------------
        oracle = SearchEngine()
        oracle.add_all(documents)

        # bit-identical answers before any timing
        for filter_query, ranking_query in queries:
            assert oracle.search(filter_query, ranking_query, top_k=10) == warm.search(
                filter_query, ranking_query, top_k=10
            ), (filter_query, ranking_query)

        # -- throughput: repeated passes over warmed engines -----------
        memory_s = min(_replay(oracle, queries) for _ in range(QUERY_PASSES))
        segment_s = min(_replay(warm, queries) for _ in range(QUERY_PASSES))
        memory_qps = len(queries) / memory_s
        segment_qps = len(queries) / segment_s
        warm.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    payload = {
        "benchmark": "persistence",
        "n_docs": N_DOCS,
        "flush_every": FLUSH_EVERY,
        "segments_after_checkpoint": segment_count,
        "store_bytes": store_bytes,
        "n_queries": len(queries),
        "query_passes": QUERY_PASSES,
        "cold_rebuild_s": round(cold_rebuild_s, 3),
        "warm_startup_s": round(warm_startup_s, 4),
        "startup_speedup": round(cold_rebuild_s / max(warm_startup_s, 1e-9), 1),
        "memory_qps": round(memory_qps, 1),
        "segment_qps": round(segment_qps, 1),
        "qps_ratio": round(segment_qps / memory_qps, 4),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_persistence.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    write_table(
        "PERSIST_warm_start",
        [
            f"{N_DOCS:,} documents, flush every {FLUSH_EVERY:,}, "
            f"{segment_count} segments, {store_bytes:,} bytes on disk",
            "",
            f"cold rebuild  {payload['cold_rebuild_s']:8.2f} s",
            f"warm startup  {payload['warm_startup_s']:8.4f} s "
            f"({payload['startup_speedup']:.0f}x faster)",
            f"query rate    memory {payload['memory_qps']:.0f} q/s, "
            f"segments {payload['segment_qps']:.0f} q/s "
            f"(ratio {payload['qps_ratio']:.2f})",
        ],
    )

    # The acceptance bars from the issue: a warm start must beat a cold
    # rebuild by 10x, and mmap-backed serving must stay within 10 % of
    # the in-memory engine.
    assert warm_startup_s * 10 <= cold_rebuild_s
    assert segment_qps >= 0.9 * memory_qps
