"""Substrate throughput: indexing, SOIF codec, parsing, analysis.

Library-level numbers a downstream adopter cares about, recorded
alongside the experiment tables.
"""

from repro.corpus.generator import CollectionSpec, generate_collection
from repro.engine.search import SearchEngine
from repro.starts.parser import parse_expression
from repro.starts.soif import parse_soif_stream
from repro.text.analysis import Analyzer


def _documents(n=100, seed=33):
    return generate_collection(
        CollectionSpec(
            name="Bench", topics={"databases": 0.5, "retrieval": 0.5}, size=n, seed=seed
        )
    )


def test_bench_indexing_throughput(benchmark, write_table):
    documents = _documents(100)

    def index_all():
        engine = SearchEngine()
        engine.add_all(documents)
        return engine

    engine = benchmark(index_all)
    tokens = sum(engine.store.token_count(i) for i in engine.store.ids())
    write_table(
        "S1_substrate_indexing",
        [
            "Substrate: indexing 100 synthetic documents",
            "",
            f"documents: {engine.document_count}",
            f"tokens:    {tokens}",
            f"vocabulary (body): {len(engine.index.vocabulary('body-of-text'))}",
        ],
    )


def test_bench_soif_codec(benchmark):
    from repro.source import StartsSource

    source = StartsSource("Codec", _documents(60))
    blob = source.content_summary().to_soif().dump()

    parsed = benchmark(lambda: parse_soif_stream(blob))
    assert parsed[0].template == "SContentSummary"


def test_bench_analysis_pipeline(benchmark):
    analyzer = Analyzer()
    text = " ".join(doc.body for doc in _documents(5))
    tokens = benchmark(lambda: analyzer.analyze(text))
    assert tokens


def test_bench_expression_parser(benchmark):
    text = (
        'list((body-of-text "distributed" 0.7) (body-of-text "databases" 0.3) '
        '((title stem "systems") and (author phonetic "Ullman")))'
    )
    node = benchmark(lambda: parse_expression(text))
    assert node is not None
