"""Broker-hierarchy scale benchmark: selection QPS across leaf fan-outs.

A zipf-skewed query workload runs brokered CORI selection over
generated summary populations of 1k/5k/10k sources, sharded across
1/2/4/8 leaf brokers.  Because leaf consultations are independent, the
root records per-leaf wall times for every selection and exposes the
two deployment costs directly: ``last_serial_ms`` (the sum — one
worker) and ``last_parallel_ms`` (the max — one worker per leaf).  The
modeled parallel QPS charges each query its measured root overhead
plus the *slowest leaf's* measured time, the same max-over-groups
accounting the federation layer uses for parallel query latency.

Results land in ``BENCH_broker_scale.json``.  Acceptance: at 10k
sources the hierarchy scales near-linearly from 1 to 4 leaf workers
(modeled QPS ratio >= 2.0, leaf fan-out speedup >= 2.5), the brokered
top-k stays bit-identical to the flat oracle, and a cold failover at
10k sources recovers by replaying the delta log.
"""

import json
import pathlib
import random
import time

from repro.broker import build_hierarchy
from repro.corpus import SummaryPopulationSpec, generate_source_summaries
from repro.corpus import vocabulary as V
from repro.corpus.generator import zipf_weights
from repro.metasearch.selection import Cori
from repro.metasearch.summary_index import SummaryIndex

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SOURCE_TIERS = (1000, 5000, 10000)
LEAF_TIERS = (1, 2, 4, 8)
N_QUERIES = 40
TOP_K = 5


def _build_queries() -> list[list[str]]:
    """Zipf-skewed topical queries of 1-3 terms (as in BENCH_selection_qps)."""
    rng = random.Random(5)
    topic_names = sorted(V.TOPICS)
    queries = []
    for _ in range(N_QUERIES):
        topic_pool = sorted(V.TOPICS[rng.choice(topic_names)])
        weights = zipf_weights(len(topic_pool))
        queries.append(
            rng.choices(topic_pool, weights=weights, k=rng.randint(1, 3))
        )
    return queries


def _populate(n_leaves, summaries):
    root = build_hierarchy(n_leaves)
    for source_id in sorted(summaries):
        root.apply_delta(source_id, summaries[source_id])
    return root


def _run(root, queries) -> dict:
    """One configuration's QPS under both deployment models."""
    selector = Cori()
    wall_ms = serial_ms = parallel_ms = modeled_ms = 0.0
    for terms in queries:
        started = time.perf_counter()
        root.top_candidates(selector, terms, TOP_K)
        elapsed = (time.perf_counter() - started) * 1000.0
        wall_ms += elapsed
        serial_ms += root.last_serial_ms
        parallel_ms += root.last_parallel_ms
        # Root overhead (elapsed minus leaf time) stays serial; leaf
        # work collapses to the slowest leaf when one worker per leaf.
        modeled_ms += elapsed - root.last_serial_ms + root.last_parallel_ms
    return {
        "wall_qps": round(len(queries) / (wall_ms / 1000.0), 1),
        "modeled_parallel_qps": round(len(queries) / (modeled_ms / 1000.0), 1),
        "leaf_fanout_speedup": round(serial_ms / max(parallel_ms, 1e-9), 2),
        "leaf_serial_ms_per_query": round(serial_ms / len(queries), 3),
        "leaf_parallel_ms_per_query": round(parallel_ms / len(queries), 3),
    }


def _failover_recovery(summaries) -> dict:
    """Cold vs. warm standby promotion time on the biggest shard."""
    root = _populate(4, summaries)
    leaves = sorted(root.handles(), key=lambda leaf: -len(leaf.index))
    cold = leaves[0]
    lag = cold.replication_lag
    cold.fail()
    started = time.perf_counter()
    cold.fail_over()
    cold_ms = (time.perf_counter() - started) * 1000.0

    warm = leaves[1]
    warm.replicate()
    warm.fail()
    started = time.perf_counter()
    warm.fail_over()
    warm_ms = (time.perf_counter() - started) * 1000.0
    return {
        "shard_sources": len(cold.index),
        "cold_lag_deltas": lag,
        "cold_recovery_ms": round(cold_ms, 3),
        "warm_recovery_ms": round(warm_ms, 3),
    }


def test_bench_broker_scale(write_table):
    queries = _build_queries()
    populations = {
        n: generate_source_summaries(
            SummaryPopulationSpec(n_sources=n, topics_per_source=2, seed=31)
        )
        for n in SOURCE_TIERS
    }

    # Exactness first: the hierarchy's top-k is the flat oracle's, bit
    # for bit, at the smallest tier across every fan-out.
    oracle_summaries = populations[SOURCE_TIERS[0]]
    index = SummaryIndex.from_summaries(oracle_summaries)
    for n_leaves in LEAF_TIERS:
        root = _populate(n_leaves, oracle_summaries)
        for terms in queries:
            assert root.select(Cori(), terms, TOP_K) == Cori().select(
                terms, index, TOP_K
            ), (n_leaves, terms)

    payload = {
        "benchmark": "broker_scale",
        "n_queries": N_QUERIES,
        "top_k": TOP_K,
        "tiers": {},
    }
    for n_sources, summaries in populations.items():
        tier = {}
        for n_leaves in LEAF_TIERS:
            tier[str(n_leaves)] = _run(_populate(n_leaves, summaries), queries)
        payload["tiers"][str(n_sources)] = tier

    ten_k = payload["tiers"]["10000"]
    payload["scaling_10k_1_to_4"] = round(
        ten_k["4"]["modeled_parallel_qps"] / ten_k["1"]["modeled_parallel_qps"], 2
    )
    payload["failover"] = _failover_recovery(populations[10000])

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_broker_scale.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{N_QUERIES} zipf queries, top-{TOP_K}, brokered CORI selection",
        "modeled parallel = measured root overhead + slowest leaf per query",
        "",
        f"{'sources':>8} {'leaves':>7} {'wall qps':>9} {'parallel qps':>13} "
        f"{'fan-out speedup':>16}",
    ]
    for n_sources, tier in payload["tiers"].items():
        for n_leaves, row in tier.items():
            lines.append(
                f"{n_sources:>8} {n_leaves:>7} {row['wall_qps']:>9.1f} "
                f"{row['modeled_parallel_qps']:>13.1f} "
                f"{row['leaf_fanout_speedup']:>15.2f}x"
            )
    failover = payload["failover"]
    lines.append("")
    lines.append(
        f"failover @ {failover['shard_sources']}-source shard: "
        f"cold {failover['cold_recovery_ms']:.1f} ms "
        f"({failover['cold_lag_deltas']} deltas replayed), "
        f"warm {failover['warm_recovery_ms']:.1f} ms"
    )
    lines.append(f"1 -> 4 leaf workers @ 10k: {payload['scaling_10k_1_to_4']:.2f}x")
    write_table("BROKER_scale", lines)

    # Near-linear 1 -> 4 worker scaling at 10k sources.  The fan-out
    # speedup (sum over max of per-leaf measured times) is the noise-
    # robust bound; the modeled QPS ratio additionally charges root
    # overhead and gets a looser bar.
    assert ten_k["4"]["leaf_fanout_speedup"] >= 2.5
    assert payload["scaling_10k_1_to_4"] >= 2.0
    # A warm standby promotes without replaying the log; cold recovery
    # is bounded by one replay of the shard's whole delta history.
    assert failover["warm_recovery_ms"] <= failover["cold_recovery_ms"] * 1.5
