"""T2 — the Basic-1 modifier table: conformance matrix + modifier costs.

Records which federation sources support each modifier, and benchmarks
the most expensive modifier path (stem expansion over the vocabulary).
"""

from repro.starts import BASIC1, SQuery, parse_expression


def test_bench_modifier_conformance(benchmark, federation, write_table):
    metadata = {
        source_id: source.metadata()
        for source_id, source in federation.sources.items()
    }
    source_ids = sorted(metadata)

    lines = ["Basic-1 modifier support (+ = supported)", ""]
    lines.append(f"{'modifier':<18} " + " ".join(f"{s[-2:]:>3}" for s in source_ids))
    for name, spec in BASIC1.modifiers.items():
        cells = [
            "  +" if metadata[source_id].supports_modifier(name) else "  -"
            for source_id in source_ids
        ]
        lines.append(f"{name:<18} " + " ".join(cells))
        assert spec.default  # every row documents its default behaviour
    write_table("T2_basic1_modifiers", lines)

    source = next(iter(federation.sources.values()))
    query = SQuery(filter_expression=parse_expression('(body-of-text stem "databases")'))
    benchmark(lambda: source.search(query))


def test_bench_modifier_query_costs(benchmark, federation, write_table):
    """Per-modifier query latency at one source (mean over the suite)."""
    import time

    source = federation.sources["Exp-00"]
    variants = {
        "exact": '(body-of-text "databases")',
        "stem": '(body-of-text stem "databases")',
        "phonetic": '(author phonetic "Rivera")',
        "right-truncation": '(body-of-text right-truncation "data")',
        "thesaurus": '(body-of-text thesaurus "database")',
    }
    lines = ["Modifier evaluation cost at Exp-00 (ms, 20 reps)", ""]
    for name, text in variants.items():
        query = SQuery(filter_expression=parse_expression(text))
        start = time.perf_counter()
        for _ in range(20):
            source.search(query)
        elapsed = (time.perf_counter() - start) * 1000 / 20
        lines.append(f"{name:<18} {elapsed:8.3f} ms")
    write_table("T2_modifier_costs", lines)

    query = SQuery(filter_expression=parse_expression(variants["phonetic"]))
    benchmark(lambda: source.search(query))
