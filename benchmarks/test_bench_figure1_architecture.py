"""F1 — Figure 1: client → Source-1 with Sources=[Source-2], resource-side
duplicate elimination.

Benchmarks the full wire round trip of the paper's architecture diagram
and records the merged result table.
"""

from repro.corpus import source1_documents, source2_documents, ullman_dood_document
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import SimulatedInternet, StartsClient, publish_resource


def _paper_world():
    internet = SimulatedInternet(seed=1)
    # Source-2 also carries the Ullman document so duplicate
    # elimination has something to eliminate.
    resource = Resource(
        "Stanford",
        [
            StartsSource("Source-1", source1_documents()),
            StartsSource(
                "Source-2", [ullman_dood_document(), *source2_documents()]
            ),
        ],
    )
    publish_resource(internet, resource, "http://stanford.example.org")
    return internet, resource


def _figure1_query():
    return SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        )
    ).with_sources("Source-2")


def test_bench_figure1_round_trip(benchmark, write_table):
    internet, resource = _paper_world()
    client = StartsClient(internet)
    query = _figure1_query()
    url = resource.source("Source-1").base_url + "/query"

    results = benchmark(lambda: client.query(url, query))

    assert set(results.sources) == {"Source-1", "Source-2"}
    ullman = [d for d in results.documents if "ullman" in d.linkage]
    assert len(ullman) == 1  # duplicate eliminated
    assert set(ullman[0].sources) == {"Source-1", "Source-2"}

    lines = ["Figure 1: query at Source-1, Sources=[Source-2]", ""]
    for doc in results.documents:
        lines.append(
            f"score={doc.raw_score:.4f} sources={','.join(doc.sources):<19} "
            f"{doc.linkage}"
        )
    write_table("F1_figure1_architecture", lines)
