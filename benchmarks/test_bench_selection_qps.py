"""Selection QPS benchmark: term-sharded index vs. the dense oracle scan.

A zipf-skewed query workload over a ~1k-source federation of generated
content summaries, timed on both selection paths.  The indexed path
scores only the sources a query term actually touches and reads CORI's
corpus statistics off incrementally maintained counters; the dense
oracle rescans every summary (and, for CORI, the whole corpus) per
query.  Results land in ``BENCH_selection_qps.json``.

Acceptance: CORI ``select(k=5)`` through the index must clear 5x the
dense scan's QPS, the two paths must agree score for score on every
distinct query, and running under a disabled metrics registry must not
be slower — the instrumentation has to be overhead-neutral when off.
"""

import json
import pathlib
import random
import time

from repro.corpus import SummaryPopulationSpec, generate_source_summaries
from repro.corpus.generator import zipf_weights
from repro.corpus import vocabulary as V
from repro.metasearch.selection import BGloss, Cori, VGlossMax, VGlossSum
from repro.metasearch.summary_index import SummaryIndex
from repro.observability.metrics import MetricsRegistry, get_registry, set_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_SOURCES = 1000
N_QUERIES = 60
TOP_K = 5

SELECTORS = {
    "bgloss": BGloss,
    "vgloss_sum": VGlossSum,
    "vgloss_max": VGlossMax,
    "cori": Cori,
}


def _build_queries() -> list[list[str]]:
    """Zipf-skewed topical queries of 1-3 terms.

    Terms come from the topic pools the summary generator samples, with
    zipf weights over each pool — frequent words recur across queries
    exactly as production query logs repeat their head terms.
    """
    rng = random.Random(5)
    topic_names = sorted(V.TOPICS)
    queries = []
    for _ in range(N_QUERIES):
        topic_pool = sorted(V.TOPICS[rng.choice(topic_names)])
        weights = zipf_weights(len(topic_pool))
        n_terms = rng.randint(1, 3)
        queries.append(rng.choices(topic_pool, weights=weights, k=n_terms))
    return queries


def _run(selector, corpus, queries) -> tuple[float, float]:
    """(qps, p50_ms) for select(k=TOP_K) over the workload."""
    walls = []
    started_batch = time.perf_counter()
    for terms in queries:
        started = time.perf_counter()
        selector.select(terms, corpus, TOP_K)
        walls.append((time.perf_counter() - started) * 1000.0)
    elapsed = time.perf_counter() - started_batch
    ordered = sorted(walls)
    return len(queries) / elapsed, ordered[round(0.50 * (len(ordered) - 1))]


def test_bench_selection_qps(write_table):
    summaries = generate_source_summaries(
        SummaryPopulationSpec(n_sources=N_SOURCES, topics_per_source=2, seed=31)
    )
    index = SummaryIndex.from_summaries(summaries)
    queries = _build_queries()

    # Equivalence first: on every distinct query, the indexed path and
    # the dense oracle return the same floats in the same order.
    distinct = {tuple(terms) for terms in queries}
    for terms in sorted(distinct):
        for name, factory in SELECTORS.items():
            indexed = factory().rank(list(terms), index)
            dense = factory(backend="dense").rank(list(terms), summaries)
            assert indexed == dense, (name, terms)

    payload = {
        "benchmark": "selection_qps",
        "n_sources": N_SOURCES,
        "n_queries": N_QUERIES,
        "top_k": TOP_K,
        "index_terms": index.term_count,
        "selectors": {},
    }
    for name, factory in SELECTORS.items():
        indexed_qps, indexed_p50 = _run(factory(), index, queries)
        # The dense baseline gets the plain dict — no index in sight —
        # so it pays exactly what the pre-index code paid, nothing more.
        dense_qps, dense_p50 = _run(factory(backend="dense"), summaries, queries)
        payload["selectors"][name] = {
            "indexed_qps": round(indexed_qps, 1),
            "indexed_p50_ms": round(indexed_p50, 3),
            "dense_qps": round(dense_qps, 1),
            "dense_p50_ms": round(dense_p50, 3),
            "speedup": round(indexed_qps / max(dense_qps, 1e-9), 1),
        }

    # Overhead neutrality: the same indexed CORI workload under a
    # disabled registry must not run measurably slower than under the
    # live one (the no-op instrument is the whole point).
    live_qps, _ = _run(Cori(), index, queries)
    previous = get_registry()
    set_registry(MetricsRegistry.disabled())
    try:
        disabled_qps, _ = _run(Cori(), index, queries)
    finally:
        set_registry(previous)
    payload["metrics_overhead"] = {
        "enabled_qps": round(live_qps, 1),
        "disabled_qps": round(disabled_qps, 1),
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_selection_qps.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{N_QUERIES} zipf queries, top-{TOP_K} of {N_SOURCES} sources "
        f"({index.term_count} indexed terms)",
        "",
    ]
    for name, row in payload["selectors"].items():
        lines.append(
            f"{name:<11} dense qps={row['dense_qps']:>7.1f}  "
            f"indexed qps={row['indexed_qps']:>8.1f}  "
            f"speedup={row['speedup']:.1f}x"
        )
    overhead = payload["metrics_overhead"]
    lines.append(
        f"cori w/ metrics disabled: qps={overhead['disabled_qps']:.1f} "
        f"(enabled: {overhead['enabled_qps']:.1f})"
    )
    write_table("SELECTION_qps", lines)

    # The acceptance bar: sparse CORI selection beats the dense corpus
    # rescan by 5x at a thousand sources.
    cori = payload["selectors"]["cori"]
    assert cori["indexed_qps"] >= 5 * cori["dense_qps"]
    # Disabled metrics must be at least ~as fast as enabled (loose bound
    # to keep the benchmark robust on noisy machines).
    assert disabled_qps >= 0.7 * live_qps
